//! Umbrella crate for the STBPU reproduction suite.
//!
//! Re-exports the individual crates so examples and integration tests can use
//! one import root. See the workspace README for the architecture overview.

pub use stbpu_analyze as analyze;
pub use stbpu_attacks as attacks;
pub use stbpu_bpu as bpu;
pub use stbpu_core as stcore;
pub use stbpu_engine as engine;
pub use stbpu_phases as phases;
pub use stbpu_pipeline as pipeline;
pub use stbpu_predictors as predictors;
pub use stbpu_remap as remap;
pub use stbpu_serve as serve;
pub use stbpu_sim as sim;
pub use stbpu_trace as trace;

//! Spectre-v2 demonstration: branch target injection succeeds against the
//! baseline BPU and is stalled by STBPU's keyed remapping + φ-encryption.
//!
//! The executed attack surface these cells belong to runs via `stbpu attack`.
//!
//! ```bash
//! cargo run --release --example spectre_v2
//! ```

use stbpu_suite::attacks::harness::AttackBpu;
use stbpu_suite::attacks::inject::{spectre_rsb, spectre_v2};
use stbpu_suite::stcore::StConfig;

fn main() {
    println!("== Spectre v2: branch target injection ==\n");

    let mut baseline = AttackBpu::baseline();
    let rb = spectre_v2(&mut baseline, 64);
    println!(
        "baseline: victim speculated into the gadget {}/{} times",
        rb.hits, rb.attempts
    );

    let mut protected = AttackBpu::stbpu(StConfig::default(), 7);
    let rs = spectre_v2(&mut protected, 512);
    println!(
        "STBPU   : victim speculated into the gadget {}/{} times ({} re-randomizations)",
        rs.hits, rs.attempts, rs.rerandomizations
    );
    println!(
        "          (per-attempt success probability is 1/2^32: the stored target\n\
         \x20          decrypts to φa ⊕ τA ⊕ φv — a random address; Section VI-A1)\n"
    );

    println!("== SpectreRSB: return stack poisoning ==\n");
    let mut baseline = AttackBpu::baseline();
    let rb = spectre_rsb(&mut baseline, 64);
    println!(
        "baseline: victim returned into the gadget {}/{} times",
        rb.hits, rb.attempts
    );
    let mut protected = AttackBpu::stbpu(StConfig::default(), 9);
    let rs = spectre_rsb(&mut protected, 512);
    println!(
        "STBPU   : victim returned into the gadget {}/{} times (reused ciphertext {} times)",
        rs.hits, rs.attempts, rs.reuses
    );

    assert!(rb.hits > 0, "the baseline must be exploitable");
    assert_eq!(rs.hits, 0, "STBPU must stall the injection");
    println!("\nverdict: baseline exploitable, STBPU blocks both injections.");
}

//! The paper's motivating scenario: a consolidated server (apache prefork
//! workers + kernel) where flushing-based protections destroy branch
//! history on every one of the thousands of context/mode switches, while
//! STBPU lets each worker keep its own history via per-entity tokens —
//! including *selective sharing* of one token across identical workers
//! (Section IV-A).
//!
//! The shell-level entry point to the same comparison is
//! `stbpu simulate --model st_skl --workload apache2_prefork_c256` vs `--protection ucode1`.
//!
//! ```bash
//! cargo run --release --example server_consolidation
//! ```

use stbpu_suite::engine::{run_scenarios, ModelRegistry, Scenario};
use stbpu_suite::sim::{simulate, Protection};
use stbpu_suite::stcore::{st_skl, StConfig};
use stbpu_suite::trace::{profiles, TraceGenerator};

fn main() {
    let profile = profiles::by_name("apache2_prefork_c256").expect("profile");
    let trace = TraceGenerator::new(profile, 7).generate(80_000);
    println!(
        "apache2 prefork (c256): {} branches, {} context switches, {} kernel entries\n",
        trace.branch_count(),
        trace.context_switches(),
        trace.kernel_entries()
    );

    // All five Figure 3 schemes over the captured trace, by name.
    println!(
        "{:<22} {:>8} {:>10} {:>9} {:>8}",
        "scheme", "OAE", "flushes", "rerand", "vs base"
    );
    let registry = ModelRegistry::standard();
    let suite =
        run_scenarios(&registry, &trace, &Scenario::fig3(), 7, 0.1).expect("fig3 schemes valid");
    let base = suite[0].oae;
    for r in &suite {
        println!(
            "{:<22} {:>8.4} {:>10} {:>9} {:>7.1}%",
            r.protection,
            r.oae,
            r.flushes,
            r.rerandomizations,
            100.0 * r.oae / base
        );
    }

    // Selective history sharing: the OS gives all prefork workers one
    // token, so a newly spawned worker starts with a warm BPU (the server
    // scenario of Section IV-A). Workers share code, so sharing is safe
    // *within* the trust domain. Token-manager surgery needs the concrete
    // model type, so this part deliberately bypasses the registry.
    println!("\nselective token sharing across prefork workers:");
    let mut shared = st_skl(StConfig::default(), 7);
    {
        use stbpu_suite::bpu::EntityId;
        let mgr = shared.mapper_mut().manager_mut();
        for w in 1..16 {
            mgr.share_token(EntityId::user(w), EntityId::user(0));
        }
    }
    let rs = simulate(&mut shared, Protection::Stbpu, &trace, 0.1);
    println!(
        "  shared-token STBPU : OAE {:.4} ({:.1}% of baseline)",
        rs.oae,
        100.0 * rs.oae / base
    );
    let mut private = st_skl(StConfig::default(), 7);
    let rp = simulate(&mut private, Protection::Stbpu, &trace, 0.1);
    println!(
        "  private-token STBPU: OAE {:.4} ({:.1}% of baseline)",
        rp.oae,
        100.0 * rp.oae / base
    );
    println!("\n(shared tokens recover cross-worker history reuse — the OS chooses the trade)");
}

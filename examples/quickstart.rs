//! Quickstart: build an STBPU-protected predictor, run a workload through
//! it, and compare against the unprotected baseline.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use stbpu_suite::sim::{build_model, simulate, ModelKind, Protection};
use stbpu_suite::stcore::{st_skl, StConfig};
use stbpu_suite::trace::{profiles, TraceGenerator};

fn main() {
    // 1. Pick a workload profile and synthesize a branch trace (the
    //    Intel-PT substitute; see DESIGN.md §2).
    let profile = profiles::by_name("525.x264").expect("known workload");
    let trace = TraceGenerator::new(profile, 42).generate(60_000);
    println!(
        "workload {}: {} branches, {} context switches, {} kernel entries",
        trace.name,
        trace.branch_count(),
        trace.context_switches(),
        trace.kernel_entries()
    );

    // 2. Run the unprotected Skylake-like baseline.
    let mut baseline = build_model(ModelKind::Baseline, 42);
    let rb = simulate(baseline.as_mut(), Protection::Unprotected, &trace, 0.1);
    println!("baseline : OAE {:.4}  (dir {:.4}, tgt {:.4})", rb.oae, rb.direction_rate, rb.target_rate);

    // 3. Run STBPU with the paper's default difficulty factor r = 0.05
    //    (Γ_misp = 41 900, Γ_ev = 26 500).
    let mut stbpu = st_skl(StConfig::default(), 42);
    let rs = simulate(&mut stbpu, Protection::Stbpu, &trace, 0.1);
    println!(
        "STBPU    : OAE {:.4}  (dir {:.4}, tgt {:.4}), re-randomizations {}",
        rs.oae, rs.direction_rate, rs.target_rate, rs.rerandomizations
    );

    // 4. Compare with microcode-style flushing (IBPB + IBRS).
    let mut ucode = build_model(ModelKind::Ucode, 42);
    let ru = simulate(ucode.as_mut(), Protection::Ucode1, &trace, 0.1);
    println!("ucode    : OAE {:.4}  ({} flushes)", ru.oae, ru.flushes);

    println!();
    println!(
        "STBPU keeps {:.2}% of baseline accuracy; flushing keeps {:.2}%",
        100.0 * rs.oae / rb.oae,
        100.0 * ru.oae / rb.oae
    );
}

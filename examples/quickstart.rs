//! Quickstart: declare an experiment against the engine API, run it, and
//! compare STBPU with the unprotected baseline and microcode flushing.
//!
//! CLI equivalent of the grid below:
//! `stbpu grid --workloads 525.x264 --scenarios skl:unprotected,st_skl@r=0.05:stbpu,skl:ucode1 --branches 60000`
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use stbpu_suite::engine::{Experiment, ModelRegistry, Scenario};
use stbpu_suite::sim::Protection;

fn main() {
    // 1. Declare the whole comparison as one scenario grid: one workload,
    //    three (model, protection) cells, one seed. The engine generates
    //    the trace (the Intel-PT substitute; see DESIGN.md §2), builds
    //    each model by registry name and runs everything in parallel.
    let set = Experiment::new("quickstart")
        .workload("525.x264")
        .scenario(Scenario::new("skl", Protection::Unprotected))
        .scenario(Scenario::new("st_skl@r=0.05", Protection::Stbpu))
        .scenario(Scenario::new("skl", Protection::Ucode1))
        .branches(60_000)
        .seed(42)
        .run()
        .expect("grid is valid");

    // 2. Reports come back in scenario order with structured fields.
    let [baseline, stbpu, ucode] = set.suite_reports(0)[..] else {
        unreachable!("three scenarios declared")
    };
    println!(
        "baseline : OAE {:.4}  (dir {:.4}, tgt {:.4})",
        baseline.oae, baseline.direction_rate, baseline.target_rate
    );
    println!(
        "STBPU    : OAE {:.4}  (dir {:.4}, tgt {:.4}), re-randomizations {}",
        stbpu.oae, stbpu.direction_rate, stbpu.target_rate, stbpu.rerandomizations
    );
    println!(
        "ucode    : OAE {:.4}  ({} flushes)",
        ucode.oae, ucode.flushes
    );
    println!();
    println!(
        "STBPU keeps {:.2}% of baseline accuracy; flushing keeps {:.2}%",
        100.0 * stbpu.oae / baseline.oae,
        100.0 * ucode.oae / baseline.oae
    );

    // 3. Every model is also directly constructible by name — including
    //    parameterized and ST variants the paper evaluates.
    println!();
    println!("registered models:");
    let registry = ModelRegistry::standard();
    for name in registry.names() {
        println!("  {name:<14} {}", registry.summary(name).unwrap_or(""));
    }

    // 4. Structured output for downstream tooling comes for free.
    println!();
    println!("CSV:\n{}", set.to_csv());
}

//! OS policy knobs: protecting a sensitive process with an aggressive
//! re-randomization threshold (small `r`) while ordinary processes keep
//! full performance — and what a BranchScope attacker sees in each case
//! (Sections IV-A and VII-A).
//!
//! Per-process `r` policies are reachable from the shell as model params:
//! `stbpu simulate --model st_skl@r=0.001 --workload 505.mcf` (see `stbpu attack --json`).
//!
//! ```bash
//! cargo run --release --example sensitive_process
//! ```

use stbpu_suite::attacks::harness::AttackBpu;
use stbpu_suite::attacks::reuse::branchscope;
use stbpu_suite::stcore::StConfig;

fn main() {
    let secret: Vec<bool> = (0..256).map(|i| (i * 37) % 5 < 2).collect();

    println!("BranchScope against three configurations (256 secret bits):\n");
    println!(
        "{:<34} {:>10} {:>12} {:>10}",
        "configuration", "accuracy", "Γ_misp", "rerand"
    );

    // 1. Unprotected baseline: full recovery.
    let mut b = AttackBpu::baseline();
    let r = branchscope(&mut b, &secret);
    println!(
        "{:<34} {:>9.1}% {:>12} {:>10}",
        "baseline (no protection)",
        100.0 * r.accuracy(),
        "-",
        0
    );

    // 2. STBPU with the default threshold (r = 0.05).
    let cfg = StConfig::default();
    let gamma = cfg.misp_threshold();
    let mut s = AttackBpu::stbpu(cfg, 11);
    let r = branchscope(&mut s, &secret);
    println!(
        "{:<34} {:>9.1}% {:>12} {:>10}",
        "STBPU r=0.05 (default)",
        100.0 * r.accuracy(),
        gamma,
        r.rerandomizations
    );

    // 3. Sensitive process: the OS sets the threshold to 1 — the token is
    //    re-randomized after every misprediction, effectively disabling
    //    history for this process (the extreme case of Section IV-A).
    let cfg = StConfig {
        r: 1e-9,
        ..StConfig::default()
    };
    let gamma = cfg.misp_threshold();
    let mut s = AttackBpu::stbpu(cfg, 13);
    let r = branchscope(&mut s, &secret);
    println!(
        "{:<34} {:>9.1}% {:>12} {:>10}",
        "STBPU sensitive (Γ = 1)",
        100.0 * r.accuracy(),
        gamma,
        r.rerandomizations
    );

    println!(
        "\n~50% accuracy = chance (no leakage). The OS pays re-randomization\n\
         cost only for the process that needs it; everyone else keeps history."
    );
}

//! End-to-end security integration: the Table I surface, the §VI analysis
//! and the STBPU configuration must agree with each other.

use stbpu_suite::attacks::analysis::{self, BpuGeometry};
use stbpu_suite::attacks::harness::AttackBpu;
use stbpu_suite::attacks::surface::{evaluate_surface, Structure, Vector};
use stbpu_suite::attacks::{eviction, reuse, same_space};
use stbpu_suite::stcore::StConfig;

#[test]
fn stconfig_thresholds_agree_with_analysis_crate() {
    // The thresholds hard-wired into stbpu-core's StConfig must be exactly
    // what the security analysis derives (within rounding of the paper's
    // published constants).
    let g = BpuGeometry::skylake();
    let (m, e) = analysis::thresholds(&g, 0.05);
    let cfg = StConfig::default();
    assert!(
        (cfg.misp_threshold() as f64 / m as f64 - 1.0).abs() < 0.01,
        "config {} vs analysis {m}",
        cfg.misp_threshold()
    );
    assert!(
        (cfg.eviction_threshold() as f64 / e as f64 - 1.0).abs() < 0.01,
        "config {} vs analysis {e}",
        cfg.eviction_threshold()
    );
}

#[test]
fn full_surface_baseline_vs_stbpu() {
    let cells = evaluate_surface(7);
    assert_eq!(cells.len(), 12);
    for c in &cells {
        if let Some(v) = c.baseline_vulnerable {
            assert!(
                v,
                "baseline must be vulnerable to {:?}/{:?}",
                c.structure, c.vector
            );
        }
        if let Some(v) = c.stbpu_vulnerable {
            let occupancy_exception =
                c.structure == Structure::Rsb && c.vector == Vector::EvictionHome;
            assert_eq!(
                v, occupancy_exception,
                "STBPU verdict wrong for {:?}/{:?}",
                c.structure, c.vector
            );
        }
    }
}

#[test]
fn rerandomization_fires_before_scaled_attack_succeeds() {
    // Scale the geometry argument: with thresholds at C·r and an attack
    // needing C events, the defense interrupts at ~r of the attack's
    // progress. Use a scaled C so the test is fast.
    let cfg = StConfig {
        r: 0.05,
        misp_complexity: 20_000.0,
        eviction_complexity: 20_000.0,
        ..StConfig::default()
    };
    let mut bpu = AttackBpu::stbpu(cfg, 3);
    let r = reuse::grow_probe_set(&mut bpu, usize::MAX, 1 << 22);
    assert!(r.rerandomizations >= 1, "defense must fire");
    assert!(
        (r.mispredictions as f64) < 20_000.0 * 0.06 + 64.0,
        "attack stopped near Γ = r·C: {} events",
        r.mispredictions
    );
}

#[test]
fn gem_found_sets_do_not_survive_rerandomization() {
    let cfg = StConfig {
        r: 1.0,
        misp_complexity: 1e9,
        eviction_complexity: 300.0,
        ..StConfig::default()
    };
    let mut bpu = AttackBpu::stbpu(cfg, 5);
    let report = eviction::eviction_campaign(&mut bpu, 0x0040_3000, 4096);
    assert!(report.rerandomizations >= 1);
    assert!(!report.still_valid);
}

#[test]
fn same_space_trojans_blocked_only_by_stbpu() {
    let mut base = AttackBpu::baseline();
    assert!(same_space::trojan_scan(&mut base, 48).rate() > 0.9);
    let mut st = AttackBpu::stbpu(StConfig::default(), 11);
    assert!(same_space::trojan_scan(&mut st, 96).rate() < 0.05);
}

#[test]
fn complexity_table_matches_paper_constants() {
    let t = analysis::complexity_table(&BpuGeometry::skylake());
    for (got, want) in [
        (t.btb_reuse_misp, 6.9e8),
        (t.pht_reuse_misp, 8.38e5),
        (t.btb_eviction_ev, 5.3e5),
        (t.injection_misp, 2f64.powi(31)),
    ] {
        assert!((got / want - 1.0).abs() < 0.05, "{got} vs {want}");
    }
}

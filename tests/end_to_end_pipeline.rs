//! End-to-end pipeline integration: Figure 4/5/6-shaped mini-experiments,
//! with every model built through the engine registry.

use stbpu_suite::engine::ModelRegistry;
use stbpu_suite::pipeline::{run_single, run_smt, MemoryProfile, PipelineConfig};
use stbpu_suite::trace::{profiles, Trace, TraceGenerator, WorkloadProfile};

fn se_trace(name: &str, n: usize, seed: u64) -> (Trace, WorkloadProfile) {
    let p = profiles::se_profile(profiles::by_name(name).expect("profile"));
    (TraceGenerator::new(&p, seed).generate(n), p)
}

#[test]
fn fig4_shape_st_models_within_a_few_percent() {
    let registry = ModelRegistry::standard();
    let cfg = PipelineConfig::table4();
    for name in ["525.x264", "541.leela"] {
        let (trace, p) = se_trace(name, 25_000, 5);
        let mem = MemoryProfile::from(&p);

        let mut base = registry.build("skl", 5).unwrap();
        let rb = run_single(&mut base, &trace, &cfg, &mem);
        let mut st = registry.build("st_skl", 5).unwrap();
        let rs = run_single(&mut st, &trace, &cfg, &mem);

        let norm = rs.ipc / rb.ipc;
        assert!(norm > 0.92 && norm < 1.08, "{name}: normalized IPC {norm}");
        let dir_red = rb.direction_rate - rs.direction_rate;
        assert!(
            dir_red.abs() < 0.05,
            "{name}: direction reduction {dir_red}"
        );
    }
}

#[test]
fn fig5_shape_smt_throughput_held() {
    let registry = ModelRegistry::standard();
    let cfg = PipelineConfig::table4();
    let (ta, pa) = se_trace("503.bwaves", 20_000, 1);
    let (tb, pb) = se_trace("505.mcf", 20_000, 2);
    let (ma, mb) = (MemoryProfile::from(&pa), MemoryProfile::from(&pb));

    let mut base = registry.build("tage64", 3).unwrap();
    let rb = run_smt(&mut base, [&ta, &tb], &cfg, [&ma, &mb]);
    let mut st = registry.build("st_tage64", 3).unwrap();
    let rs = run_smt(&mut st, [&ta, &tb], &cfg, [&ma, &mb]);

    let norm = rs.hmean_ipc / rb.hmean_ipc;
    assert!(
        norm > 0.9,
        "SMT normalized Hmean IPC {norm} must stay above 0.9"
    );
}

#[test]
fn fig6_shape_aggressive_thresholds_degrade_gracefully_then_collapse() {
    let registry = ModelRegistry::standard();
    let cfg = PipelineConfig::table4();
    let (ta, pa) = se_trace("503.bwaves", 20_000, 7);
    let (tb, pb) = se_trace("541.leela", 20_000, 8);
    let (ma, mb) = (MemoryProfile::from(&pa), MemoryProfile::from(&pb));

    let mut ipcs = Vec::new();
    for r in [0.05, 1e-4, 2e-7] {
        let mut st = registry.build(&format!("st_tage64@r={r}"), 9).unwrap();
        let rep = run_smt(&mut st, [&ta, &tb], &cfg, [&ma, &mb]);
        ipcs.push(rep.hmean_ipc);
    }
    // Default and moderately aggressive settings are close; the extreme
    // setting (re-randomize every couple of events) collapses training.
    assert!(ipcs[1] > ipcs[2], "extreme r must be the worst: {ipcs:?}");
    assert!(
        ipcs[0] >= ipcs[1] * 0.98,
        "default r must be at least as good as aggressive r: {ipcs:?}"
    );
    assert!(
        ipcs[2] < ipcs[0] * 0.97,
        "collapse must be visible: {ipcs:?}"
    );
}

//! End-to-end integration: a miniature Figure 3 run across crates
//! (trace generation → protection policies → OAE ordering).

use stbpu_suite::engine::{Experiment, Scenario};
use stbpu_suite::sim::SimReport;

fn suite_for(name: &str, branches: usize) -> Vec<SimReport> {
    Experiment::new("e2e-fig3")
        .workload(name)
        .scenarios(Scenario::fig3())
        .branches(branches)
        .seed(2024)
        .warmup(0.1)
        .run()
        .expect("fig3 grid is valid")
        .records()
        .iter()
        .map(|r| r.report.clone())
        .collect()
}

#[test]
fn stbpu_tracks_baseline_within_two_percent_on_spec() {
    for name in ["525.x264", "503.bwaves", "548.exchange2"] {
        let s = suite_for(name, 25_000);
        let (base, stbpu) = (s[0].oae, s[1].oae);
        assert!(
            stbpu > base - 0.02,
            "{name}: STBPU {stbpu} must be within 2% of baseline {base}"
        );
    }
}

#[test]
fn microcode_flushing_loses_at_least_five_percent_on_servers() {
    for name in ["apache2_prefork_c512", "mysql_256con_50s"] {
        let s = suite_for(name, 25_000);
        let (base, ucode1) = (s[0].oae, s[2].oae);
        assert!(
            ucode1 < base * 0.95,
            "{name}: flushing must cost ≥5%: base {base}, ucode {ucode1}"
        );
    }
}

#[test]
fn scheme_ordering_matches_figure3() {
    // STBPU ≥ conservative ≥ ucode2 on switch-heavy workloads; STBPU beats
    // both microcode models everywhere we sample.
    for name in ["apache2_prefork_c128", "chrome-1speedometer"] {
        let s = suite_for(name, 25_000);
        let (stbpu, u1, u2) = (s[1].oae, s[2].oae, s[3].oae);
        assert!(stbpu > u1, "{name}: STBPU {stbpu} vs ucode1 {u1}");
        assert!(stbpu > u2, "{name}: STBPU {stbpu} vs ucode2 {u2}");
    }
}

#[test]
fn stbpu_never_flushes_and_baseline_never_rerandomizes() {
    let s = suite_for("520.omnetpp", 15_000);
    assert_eq!(s[0].rerandomizations, 0);
    assert_eq!(s[1].flushes, 0);
    assert_eq!(s[0].flushes, 0);
    assert!(s[2].flushes > 0, "microcode must flush on switches");
}

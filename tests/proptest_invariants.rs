//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs (keys, addresses, histories).

use proptest::prelude::*;
use stbpu_suite::bpu::{BaselineMapper, EntityId, Mapper, VirtAddr};
use stbpu_suite::engine::{
    build_phase_file, run_phases_vs_full, ModelRegistry, PhaseBuildOptions, Workload,
};
use stbpu_suite::phases::{cluster_slices, ClusterConfig, PhaseEntry, PhaseFile};
use stbpu_suite::remap::RemapSet;
use stbpu_suite::sim::Protection;
use stbpu_suite::stcore::{SecretToken, StConfig, StMapper, TokenManager};
use stbpu_suite::trace::{extract_bbv, profiles, TraceGenerator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// φ-encryption is an involution per token and never an identity map
    /// across different tokens for the tested values.
    #[test]
    fn token_encryption_roundtrip(raw in any::<u64>(), t in any::<u32>()) {
        let tok = SecretToken::from_raw(raw);
        prop_assert_eq!(tok.decrypt(tok.encrypt(t)), t);
    }

    /// The canonical remaps stay inside their output geometry for any key
    /// and address.
    #[test]
    fn remap_outputs_in_range(psi in any::<u32>(), pc in 0u64..(1 << 48)) {
        let r = RemapSet::standard();
        let (idx, tag, off) = r.r1(psi, pc);
        prop_assert!(idx < 512 && tag < 256 && off < 32);
        prop_assert!(r.r3(psi, pc) < (1 << 14));
        prop_assert!(r.rp(psi, pc) < 1024);
    }

    /// Remapping is a pure function of (key, address).
    #[test]
    fn remap_deterministic(psi in any::<u32>(), pc in 0u64..(1 << 48)) {
        let r = RemapSet::standard();
        prop_assert_eq!(r.r1(psi, pc), r.r1(psi, pc));
        prop_assert_eq!(r.rt(psi, pc, 7), r.rt(psi, pc, 7));
    }

    /// The baseline mapper ignores address bits ≥ 30 (the truncation that
    /// same-address-space attacks exploit) — for every address.
    #[test]
    fn baseline_truncation_invariant(pc in 0u64..(1 << 30), hi in 1u64..(1 << 18)) {
        let m = BaselineMapper::new();
        let aliased = pc | (hi << 30);
        prop_assert_eq!(m.btb1(0, pc), m.btb1(0, aliased));
        prop_assert_eq!(m.pht1(0, pc), m.pht1(0, aliased));
    }

    /// VirtAddr::extend is the inverse of truncation within a 4 GiB window.
    #[test]
    fn extend_roundtrip(hi in 0u64..(1 << 16), lo in any::<u32>()) {
        let base = VirtAddr::new((hi << 32) | 0x1234);
        let target = VirtAddr::new((hi << 32) | lo as u64);
        prop_assert_eq!(VirtAddr::extend(base, target.low32()), target);
    }

    /// Tokens of distinct entities are independent: re-randomizing one
    /// never changes the other.
    #[test]
    fn token_isolation(seed in any::<u64>(), a in 1u32..500, b in 501u32..1000) {
        let mut mgr = TokenManager::new(StConfig::default(), seed);
        let (ea, eb) = (EntityId::user(a), EntityId::user(b));
        let tb = mgr.token(eb);
        mgr.rerandomize(ea);
        prop_assert_eq!(mgr.token(eb), tb);
    }

    /// The ST mapper gives different mappings to different entities for
    /// almost all addresses (sampled): collisions exist but must be rare.
    #[test]
    fn st_mapper_entity_separation(seed in any::<u64>(), pc in 0u64..(1 << 40)) {
        let mut m = StMapper::new(StConfig::default(), seed);
        m.set_entity(0, EntityId::user(1));
        let a = m.pht1(0, pc);
        m.set_entity(0, EntityId::user(2));
        let b = m.pht1(0, pc);
        // A 14-bit space: equal values happen with p ≈ 2⁻¹⁴; allow them,
        // but the *pair* (pht1, btb1 index) matching is ≈ 2⁻²³ — reject.
        m.set_entity(0, EntityId::user(1));
        let a2 = (a, m.btb1(0, pc));
        m.set_entity(0, EntityId::user(2));
        let b2 = (b, m.btb1(0, pc));
        prop_assert_ne!(a2, b2);
    }
}

/// A small BBV profile for the clustering invariants: one generated
/// stream, sliced finely enough to give k-means real work.
fn small_bbv(seed: u64, branches: usize) -> stbpu_suite::trace::bbv::BbvProfile {
    let profile = profiles::by_name("541.leela").unwrap();
    let mut source = TraceGenerator::new(profile, seed).into_source(branches);
    extract_bbv(&mut source, 1_000).unwrap()
}

/// An arbitrary-but-valid phase entry for codec tests (the codec treats
/// every field as an opaque varint, so any u64s are fair game).
fn entry_strategy() -> impl Strategy<Value = PhaseEntry> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(rs, wb, wi, ws, sb, se, rb, ri, checkpoint)| PhaseEntry {
            rep_slice: rs,
            weight_branches: wb,
            weight_instructions: wi,
            weight_slices: ws,
            start_branch: sb,
            start_event: se,
            rep_branches: rb,
            rep_instructions: ri,
            checkpoint,
        })
}

fn phase_file_strategy() -> impl Strategy<Value = PhaseFile> {
    (
        proptest::collection::vec(any::<u8>(), 0..24),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        1u64..1_000_000,
        any::<u64>(),
        proptest::collection::vec(entry_strategy(), 0..5),
    )
        .prop_map(|(name, seed, tb, ti, te, slice, cseed, phases)| {
            // Arbitrary bytes folded into ASCII so the label is valid
            // UTF-8 (the codec enforces that on decode).
            let workload: String = name
                .into_iter()
                .map(|b| char::from(b'a' + b % 26))
                .collect();
            PhaseFile {
                workload,
                seed,
                total_branches: tb,
                total_instructions: ti,
                total_events: te,
                slice_branches: slice,
                cluster_seed: cseed,
                phases,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// k-means over BBVs is bit-identical across runs for a fixed seed:
    /// the clustering carries no hidden iteration-order or wall-clock
    /// dependence.
    #[test]
    fn clustering_bit_identical_for_fixed_seed(
        stream_seed in any::<u64>(),
        cluster_seed in any::<u64>(),
    ) {
        let bbv = small_bbv(stream_seed, 12_000);
        let cfg = ClusterConfig { seed: cluster_seed, ..ClusterConfig::default() };
        let a = cluster_slices(&bbv.slices, &cfg);
        let b = cluster_slices(&bbv.slices, &cfg);
        prop_assert_eq!(a, b);
    }

    /// Phase weights partition the stream exactly: branches, slices and
    /// instructions all sum to the profiled totals, so the weighted
    /// reconstruction has no gap and no double counting.
    #[test]
    fn phase_weights_partition_the_stream(
        stream_seed in any::<u64>(),
        branches in 3_000usize..24_000,
    ) {
        let reg = ModelRegistry::standard();
        let wl = Workload::Named("541.leela".to_string());
        let opts = PhaseBuildOptions {
            slice_branches: 1_000,
            ..PhaseBuildOptions::default()
        };
        let pf = build_phase_file(&reg, stream_seed, &wl, branches, &opts).unwrap();
        prop_assert_eq!(pf.total_branches, branches as u64);
        let wb: u64 = pf.phases.iter().map(|p| p.weight_branches).sum();
        let wi: u64 = pf.phases.iter().map(|p| p.weight_instructions).sum();
        let ws: u64 = pf.phases.iter().map(|p| p.weight_slices).sum();
        prop_assert_eq!(wb, pf.total_branches);
        prop_assert_eq!(wi, pf.total_instructions);
        prop_assert_eq!(ws, branches.div_ceil(1_000) as u64);
    }

    /// `.stbp` encoding round-trips byte-identically for arbitrary
    /// content, and every truncation decodes to a positioned error —
    /// never a panic, never a bogus success.
    #[test]
    fn stbp_roundtrip_and_truncation_totality(
        pf in phase_file_strategy(),
        cut in any::<u64>(),
    ) {
        let bytes = pf.to_bytes();
        let back = PhaseFile::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &pf);
        prop_assert_eq!(back.to_bytes(), bytes.clone());

        let n = (cut % bytes.len() as u64) as usize;
        let err = PhaseFile::from_bytes(&bytes[..n]).unwrap_err();
        prop_assert!(err.offset <= n, "offset {} past truncation {}", err.offset, n);
    }

    /// Any single-byte corruption of a `.stbp` file is rejected (the
    /// FNV-1a trailer covers the whole body, and the trailer itself is
    /// compared) — again a positioned error, never a panic.
    #[test]
    fn stbp_single_byte_corruption_is_rejected(
        pf in phase_file_strategy(),
        at in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = pf.to_bytes();
        let i = (at % bytes.len() as u64) as usize;
        bytes[i] ^= flip;
        prop_assert!(PhaseFile::from_bytes(&bytes).is_err());
    }
}

proptest! {
    // Full simulations per case: keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The degenerate clustering (k = slice count, warm checkpoints
    /// embedded) reproduces the full simulation's OAE bit-exactly for
    /// any stream seed: estimation error comes only from sampling, never
    /// from the reconstruction arithmetic.
    #[test]
    fn phases_k_equals_slices_reproduces_full_oae(stream_seed in any::<u64>()) {
        let reg = ModelRegistry::standard();
        let wl = Workload::Named("505.mcf".to_string());
        let n_slices = 6usize;
        let opts = PhaseBuildOptions {
            slice_branches: 1_000,
            cluster: ClusterConfig {
                forced_k: Some(n_slices),
                ..ClusterConfig::default()
            },
            embed: Some(("st_skl@r=0.05".to_string(), Protection::Stbpu)),
        };
        let pf = build_phase_file(&reg, stream_seed, &wl, 6_000, &opts).unwrap();
        prop_assert!(pf.fully_warm());
        let phased = Workload::phases(pf, None).unwrap();
        let (run, full, _) =
            run_phases_vs_full(&reg, "st_skl@r=0.05", Protection::Stbpu, &phased).unwrap();
        prop_assert_eq!(run.report.oae.to_bits(), full.oae.to_bits());
        prop_assert_eq!(run.report.mispredictions, full.mispredictions);
        prop_assert_eq!(run.report.rerandomizations, full.rerandomizations);
    }
}

//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs (keys, addresses, histories).

use proptest::prelude::*;
use stbpu_suite::bpu::{BaselineMapper, EntityId, Mapper, VirtAddr};
use stbpu_suite::remap::RemapSet;
use stbpu_suite::stcore::{SecretToken, StConfig, StMapper, TokenManager};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// φ-encryption is an involution per token and never an identity map
    /// across different tokens for the tested values.
    #[test]
    fn token_encryption_roundtrip(raw in any::<u64>(), t in any::<u32>()) {
        let tok = SecretToken::from_raw(raw);
        prop_assert_eq!(tok.decrypt(tok.encrypt(t)), t);
    }

    /// The canonical remaps stay inside their output geometry for any key
    /// and address.
    #[test]
    fn remap_outputs_in_range(psi in any::<u32>(), pc in 0u64..(1 << 48)) {
        let r = RemapSet::standard();
        let (idx, tag, off) = r.r1(psi, pc);
        prop_assert!(idx < 512 && tag < 256 && off < 32);
        prop_assert!(r.r3(psi, pc) < (1 << 14));
        prop_assert!(r.rp(psi, pc) < 1024);
    }

    /// Remapping is a pure function of (key, address).
    #[test]
    fn remap_deterministic(psi in any::<u32>(), pc in 0u64..(1 << 48)) {
        let r = RemapSet::standard();
        prop_assert_eq!(r.r1(psi, pc), r.r1(psi, pc));
        prop_assert_eq!(r.rt(psi, pc, 7), r.rt(psi, pc, 7));
    }

    /// The baseline mapper ignores address bits ≥ 30 (the truncation that
    /// same-address-space attacks exploit) — for every address.
    #[test]
    fn baseline_truncation_invariant(pc in 0u64..(1 << 30), hi in 1u64..(1 << 18)) {
        let m = BaselineMapper::new();
        let aliased = pc | (hi << 30);
        prop_assert_eq!(m.btb1(0, pc), m.btb1(0, aliased));
        prop_assert_eq!(m.pht1(0, pc), m.pht1(0, aliased));
    }

    /// VirtAddr::extend is the inverse of truncation within a 4 GiB window.
    #[test]
    fn extend_roundtrip(hi in 0u64..(1 << 16), lo in any::<u32>()) {
        let base = VirtAddr::new((hi << 32) | 0x1234);
        let target = VirtAddr::new((hi << 32) | lo as u64);
        prop_assert_eq!(VirtAddr::extend(base, target.low32()), target);
    }

    /// Tokens of distinct entities are independent: re-randomizing one
    /// never changes the other.
    #[test]
    fn token_isolation(seed in any::<u64>(), a in 1u32..500, b in 501u32..1000) {
        let mut mgr = TokenManager::new(StConfig::default(), seed);
        let (ea, eb) = (EntityId::user(a), EntityId::user(b));
        let tb = mgr.token(eb);
        mgr.rerandomize(ea);
        prop_assert_eq!(mgr.token(eb), tb);
    }

    /// The ST mapper gives different mappings to different entities for
    /// almost all addresses (sampled): collisions exist but must be rare.
    #[test]
    fn st_mapper_entity_separation(seed in any::<u64>(), pc in 0u64..(1 << 40)) {
        let mut m = StMapper::new(StConfig::default(), seed);
        m.set_entity(0, EntityId::user(1));
        let a = m.pht1(0, pc);
        m.set_entity(0, EntityId::user(2));
        let b = m.pht1(0, pc);
        // A 14-bit space: equal values happen with p ≈ 2⁻¹⁴; allow them,
        // but the *pair* (pht1, btb1 index) matching is ≈ 2⁻²³ — reject.
        m.set_entity(0, EntityId::user(1));
        let a2 = (a, m.btb1(0, pc));
        m.set_entity(0, EntityId::user(2));
        let b2 = (b, m.btb1(0, pc));
        prop_assert_ne!(a2, b2);
    }
}

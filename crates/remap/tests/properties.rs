//! Property tests for the remap circuits and generator.

use proptest::prelude::*;
use stbpu_remap::{Circuit, Generator, HwConstraints, Layer, RemapSet, SboxKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Canonical circuit outputs are pure functions of (key, input) and
    /// stay in range for arbitrary inputs.
    #[test]
    fn canonical_pure_and_in_range(psi in any::<u32>(), pc in any::<u64>(), aux in any::<u16>()) {
        let r = RemapSet::standard();
        let pc = pc & ((1 << 48) - 1);
        prop_assert_eq!(r.r2(psi, pc), r.r2(psi, pc));
        prop_assert!(r.r2(psi, pc) < 256);
        prop_assert!(r.r4(psi, aux, pc) < (1 << 14));
        let (i, t) = r.rt(psi, pc, aux);
        prop_assert!(i < (1 << 13) && t < (1 << 12));
    }

    /// Substitution and permutation layers are bijections: distinct inputs
    /// stay distinct through any S/P-only circuit.
    #[test]
    fn sp_layers_preserve_distinctness(a in any::<u16>(), b in any::<u16>()) {
        prop_assume!(a != b);
        let c = Circuit::new(
            16,
            vec![
                Layer::Substitute(vec![
                    (0, SboxKind::Present4),
                    (4, SboxKind::Spongent4),
                    (8, SboxKind::Present4),
                    (12, SboxKind::Spongent4),
                ]),
                Layer::Permute((0..16).rev().collect()),
            ],
        )
        .expect("valid circuit");
        prop_assert_ne!(c.eval(a as u128), c.eval(b as u128));
    }

    /// Compression layers only depend on the bits their masks select.
    #[test]
    fn compress_mask_locality(x in any::<u8>(), noise in any::<u8>()) {
        let c = Circuit::new(16, vec![Layer::Compress(vec![0x0f, 0xf0])]).expect("valid");
        // Bits 8..16 are selected by no mask: they must never matter.
        let base = c.eval(x as u128);
        let with_noise = c.eval(x as u128 | ((noise as u128) << 8));
        prop_assert_eq!(base, with_noise);
    }

    /// The generator always respects the critical-path constraint it was
    /// given, across random feasible geometries.
    #[test]
    fn generator_respects_budget(inb in 24u32..100, outb in 6u32..20, seed in any::<u64>()) {
        prop_assume!(outb < inb);
        let cs = HwConstraints::for_geometry(inb, outb);
        if let Ok(c) = Generator::new(cs, seed).generate(1, 30) {
            let cost = c.cost();
            prop_assert!(cost.critical_path <= cs.max_critical_path);
            prop_assert!(cost.total_transistors <= cs.max_total_transistors);
            prop_assert_eq!(c.input_bits(), inb);
            prop_assert_eq!(c.output_bits(), outb);
        }
    }
}

//! Hardware remapping functions for STBPU (Section V of the paper).
//!
//! STBPU replaces the baseline BPU mapping functions ①–④ with *keyed*
//! remapping functions R1..4 (plus Rt and Rp for TAGE and Perceptron
//! predictors). The functions are non-cryptographic hardware hashes built
//! from lightweight-cipher primitives — 4→4/3→3 S-boxes from PRESENT and
//! SPONGENT, permutation (P-) boxes and compressing XOR (C-S) boxes —
//! subject to three constraints:
//!
//! * **C1** — computable within one clock cycle: ≤ 45 series transistors on
//!   the critical path (the paper's budget for a modern pipeline stage).
//! * **C2** — uniformity: outputs uniformly distributed over the output
//!   space (validated with balls-and-bins coefficient of variation).
//! * **C3** — avalanche: one flipped input bit flips ~50 % of output bits,
//!   with low variance (strict avalanche criterion).
//!
//! The crate provides:
//!
//! * [`Circuit`] — a layered gate-level model with evaluation and a
//!   transistor cost model ([`CircuitCost`]),
//! * [`Generator`] — the automated remap-generation algorithm of
//!   Section V-A (randomized layer-by-layer construction with constraint
//!   checking and weight adaptation),
//! * [`analysis`] — the C2/C3 validators and the weighted scoring of
//!   Section V-B,
//! * [`RemapSet`] — canonical, deterministically generated instances of
//!   R1..4, Rt and Rp matching the I/O geometry of Table II,
//! * [`CompiledCircuit`] — circuits lowered once into flat byte-sliced
//!   lookup tables, evaluated allocation-free on the simulator hot path
//!   (bit-identical to the interpreted evaluation).
//!
//! # Example
//!
//! ```
//! use stbpu_remap::RemapSet;
//!
//! let remaps = RemapSet::standard();
//! let a = remaps.r1(0x1234_5678, 0x0000_7fff_dead_beef);
//! let b = remaps.r1(0x1234_5679, 0x0000_7fff_dead_beef);
//! // Changing one key bit re-maps the branch somewhere else.
//! assert_ne!((a.0, a.1, a.2), (b.0, b.1, b.2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod canonical;
mod circuit;
mod compiled;
mod generator;
mod primitive;

pub use canonical::RemapSet;
pub use circuit::{Circuit, CircuitCost, Layer};
pub use compiled::CompiledCircuit;
pub use generator::{GenError, Generator, HwConstraints};
pub use primitive::{SboxKind, PRESENT_SBOX, SPONGENT_SBOX};

/// Series-transistor depth of a 4→4 S-box (two-level logic).
pub const SBOX4_DEPTH: u32 = 8;
/// Total transistor count of a 4→4 S-box implemented as combinatorial
/// logic / transistor matrix.
pub const SBOX4_TRANSISTORS: u32 = 28;
/// Series-transistor depth of a 3→3 S-box.
pub const SBOX3_DEPTH: u32 = 6;
/// Total transistor count of a 3→3 S-box.
pub const SBOX3_TRANSISTORS: u32 = 20;
/// Series-transistor depth of a 2-input CMOS XOR gate.
pub const XOR2_DEPTH: u32 = 4;
/// Total transistor count of a 2-input CMOS XOR gate.
pub const XOR2_TRANSISTORS: u32 = 8;
/// The paper's absolute maximum series transistors per clock (C1).
pub const MAX_CRITICAL_PATH: u32 = 45;

//! Layered combinational circuit model for remapping functions.
//!
//! A [`Circuit`] is a sequence of layers, each either a substitution layer
//! (parallel S-boxes), a permutation layer (a P-box — pure wiring) or a
//! compression layer (parallel XOR trees, the non-invertible C-S boxes of
//! Figure 2). Inputs and intermediate states are carried in a `u128`
//! (functions consume at most 96 bits, Table II).
//!
//! The cost model follows Section V-A: the critical path is measured in
//! *series transistors* (S-box₄ = 8, S-box₃ = 6, XOR₂ = 4 per tree level,
//! wires = 0), the paper's single-cycle budget being 45.

use crate::primitive::SboxKind;
use crate::{XOR2_DEPTH, XOR2_TRANSISTORS};
use std::fmt;

/// One combinational layer of a remapping circuit.
#[derive(Clone, Debug)]
pub enum Layer {
    /// Parallel S-boxes. Each entry is `(bit_offset, kind)`; boxes must
    /// tile the current width without overlap.
    Substitute(Vec<(u32, SboxKind)>),
    /// A permutation (P-box): output bit `i` reads input bit `perm[i]`.
    /// Width-preserving, zero transistors, bounded wire crossings.
    Permute(Vec<u32>),
    /// A compression layer: output bit `i` is the XOR-parity of the input
    /// bits selected by `masks[i]`. Output width is `masks.len()`.
    Compress(Vec<u128>),
}

impl Layer {
    /// Output width of the layer given its input width.
    pub fn output_width(&self, input_width: u32) -> u32 {
        match self {
            Layer::Substitute(_) | Layer::Permute(_) => input_width,
            Layer::Compress(masks) => masks.len() as u32,
        }
    }

    /// Series-transistor depth contributed by this layer.
    pub fn depth(&self) -> u32 {
        match self {
            Layer::Substitute(boxes) => boxes.iter().map(|(_, k)| k.depth()).max().unwrap_or(0),
            Layer::Permute(_) => 0,
            Layer::Compress(masks) => {
                let fan_in = masks.iter().map(|m| m.count_ones()).max().unwrap_or(0);
                xor_tree_depth(fan_in) * XOR2_DEPTH
            }
        }
    }

    /// Total transistor count of this layer.
    pub fn transistors(&self) -> u32 {
        match self {
            Layer::Substitute(boxes) => boxes.iter().map(|(_, k)| k.transistors()).sum(),
            Layer::Permute(_) => 0,
            Layer::Compress(masks) => masks
                .iter()
                .map(|m| m.count_ones().saturating_sub(1) * XOR2_TRANSISTORS)
                .sum(),
        }
    }

    /// Maximum number of wires any single wire crosses (P-boxes only; other
    /// layers route straight through).
    pub fn max_wire_crossings(&self) -> u32 {
        match self {
            Layer::Permute(perm) => max_crossings(perm),
            _ => 0,
        }
    }
}

/// Depth (in XOR2 levels) of a balanced XOR tree over `fan_in` inputs.
fn xor_tree_depth(fan_in: u32) -> u32 {
    if fan_in <= 1 {
        0
    } else {
        32 - (fan_in - 1).leading_zeros()
    }
}

/// Counts, for each wire of a permutation, how many other wires it crosses
/// in a straight-line layout, and returns the maximum.
fn max_crossings(perm: &[u32]) -> u32 {
    let n = perm.len();
    let mut worst = 0u32;
    for i in 0..n {
        let mut c = 0u32;
        for j in 0..n {
            if i == j {
                continue;
            }
            // Wires (i -> perm[i]) and (j -> perm[j]) cross iff their
            // endpoints interleave.
            let (a0, a1) = (i as i64, perm[i] as i64);
            let (b0, b1) = (j as i64, perm[j] as i64);
            if (a0 - b0).signum() * (a1 - b1).signum() < 0 {
                c += 1;
            }
        }
        worst = worst.max(c);
    }
    worst
}

/// Aggregate hardware cost of a circuit (constraint C1 inputs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CircuitCost {
    /// Series transistors on the critical path.
    pub critical_path: u32,
    /// Total transistor count.
    pub total_transistors: u32,
    /// Widest layer's transistor count (parallel breadth).
    pub breadth: u32,
    /// Number of layers.
    pub layers: u32,
    /// Worst per-wire crossing count across all P-boxes.
    pub max_wire_crossings: u32,
}

/// A layered remapping circuit with fixed input/output widths.
///
/// ```
/// use stbpu_remap::{Circuit, Layer, SboxKind};
/// let c = Circuit::new(8, vec![
///     Layer::Substitute(vec![(0, SboxKind::Present4), (4, SboxKind::Present4)]),
///     Layer::Compress(vec![0b0000_0011, 0b0000_1100, 0b0011_0000, 0b1100_0000]),
/// ]).unwrap();
/// assert_eq!(c.output_bits(), 4);
/// assert!(c.eval(0xA5) < 16);
/// ```
#[derive(Clone, Debug)]
pub struct Circuit {
    input_bits: u32,
    output_bits: u32,
    layers: Vec<Layer>,
}

/// Error building a malformed circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CircuitError(String);

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid circuit: {}", self.0)
    }
}

impl std::error::Error for CircuitError {}

impl Circuit {
    /// Builds a circuit, validating layer geometry.
    ///
    /// # Errors
    ///
    /// Returns an error if the input width exceeds 128 bits, a substitution
    /// layer does not tile the current width, a permutation is not a
    /// bijection of the current width, a compression mask selects bits
    /// outside the current width, or the final width exceeds 64 bits.
    pub fn new(input_bits: u32, layers: Vec<Layer>) -> Result<Self, CircuitError> {
        if input_bits == 0 || input_bits > 128 {
            return Err(CircuitError(format!(
                "input width {input_bits} out of range"
            )));
        }
        let mut width = input_bits;
        for (li, layer) in layers.iter().enumerate() {
            match layer {
                Layer::Substitute(boxes) => {
                    let mut covered = 0u128;
                    for &(off, kind) in boxes {
                        let w = kind.width();
                        if off + w > width {
                            return Err(CircuitError(format!(
                                "layer {li}: S-box at {off} exceeds width {width}"
                            )));
                        }
                        let m = ((1u128 << w) - 1) << off;
                        if covered & m != 0 {
                            return Err(CircuitError(format!("layer {li}: overlapping S-boxes")));
                        }
                        covered |= m;
                    }
                    let full = if width == 128 {
                        u128::MAX
                    } else {
                        (1u128 << width) - 1
                    };
                    if covered != full {
                        return Err(CircuitError(format!(
                            "layer {li}: S-boxes do not tile the {width}-bit state"
                        )));
                    }
                }
                Layer::Permute(perm) => {
                    if perm.len() as u32 != width {
                        return Err(CircuitError(format!(
                            "layer {li}: permutation width {} != state width {width}",
                            perm.len()
                        )));
                    }
                    let mut seen = vec![false; width as usize];
                    for &p in perm {
                        if p >= width || seen[p as usize] {
                            return Err(CircuitError(format!("layer {li}: not a permutation")));
                        }
                        seen[p as usize] = true;
                    }
                }
                Layer::Compress(masks) => {
                    if masks.is_empty() || masks.len() as u32 > width {
                        return Err(CircuitError(format!(
                            "layer {li}: compression must strictly reduce width"
                        )));
                    }
                    let full = if width == 128 {
                        u128::MAX
                    } else {
                        (1u128 << width) - 1
                    };
                    for (i, &m) in masks.iter().enumerate() {
                        if m == 0 {
                            return Err(CircuitError(format!(
                                "layer {li}: output bit {i} reads no inputs"
                            )));
                        }
                        if m & !full != 0 {
                            return Err(CircuitError(format!(
                                "layer {li}: mask {i} selects bits outside width {width}"
                            )));
                        }
                    }
                    width = masks.len() as u32;
                }
            }
        }
        if width > 64 {
            return Err(CircuitError(format!("final width {width} exceeds 64 bits")));
        }
        Ok(Circuit {
            input_bits,
            output_bits: width,
            layers,
        })
    }

    /// Input width in bits.
    pub fn input_bits(&self) -> u32 {
        self.input_bits
    }

    /// Output width in bits.
    pub fn output_bits(&self) -> u32 {
        self.output_bits
    }

    /// The layers of the circuit.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Evaluates the circuit on `input` (low `input_bits` bits are used).
    pub fn eval(&self, input: u128) -> u64 {
        let mut x = if self.input_bits == 128 {
            input
        } else {
            input & ((1u128 << self.input_bits) - 1)
        };
        let mut width = self.input_bits;
        for layer in &self.layers {
            match layer {
                Layer::Substitute(boxes) => {
                    let mut y = 0u128;
                    for &(off, kind) in boxes {
                        let w = kind.width();
                        let v = ((x >> off) as u8) & ((1u16 << w) - 1) as u8;
                        y |= (kind.apply(v) as u128) << off;
                    }
                    x = y;
                }
                Layer::Permute(perm) => {
                    let mut y = 0u128;
                    for (i, &src) in perm.iter().enumerate() {
                        y |= ((x >> src) & 1) << i;
                    }
                    x = y;
                }
                Layer::Compress(masks) => {
                    let mut y = 0u128;
                    for (i, &m) in masks.iter().enumerate() {
                        y |= (((x & m).count_ones() & 1) as u128) << i;
                    }
                    x = y;
                    width = masks.len() as u32;
                }
            }
        }
        debug_assert_eq!(width, self.output_bits);
        x as u64
    }

    /// Computes the hardware cost of the circuit.
    pub fn cost(&self) -> CircuitCost {
        CircuitCost {
            critical_path: self.layers.iter().map(Layer::depth).sum(),
            total_transistors: self.layers.iter().map(Layer::transistors).sum(),
            breadth: self
                .layers
                .iter()
                .map(Layer::transistors)
                .max()
                .unwrap_or(0),
            layers: self.layers.len() as u32,
            max_wire_crossings: self
                .layers
                .iter()
                .map(Layer::max_wire_crossings)
                .max()
                .unwrap_or(0),
        }
    }

    /// A human-readable structural summary (used by the Figure 2 harness).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let mut width = self.input_bits;
        let _ = writeln!(s, "input: {} bits", width);
        for (i, layer) in self.layers.iter().enumerate() {
            match layer {
                Layer::Substitute(boxes) => {
                    let p4 = boxes
                        .iter()
                        .filter(|(_, k)| *k == SboxKind::Present4)
                        .count();
                    let s4 = boxes
                        .iter()
                        .filter(|(_, k)| *k == SboxKind::Spongent4)
                        .count();
                    let t3 = boxes.iter().filter(|(_, k)| *k == SboxKind::Tail3).count();
                    let _ = writeln!(
                        s,
                        "stage {}: substitution  [{} PRESENT 4x4, {} SPONGENT 4x4, {} 3x3] depth {}T",
                        i + 1, p4, s4, t3, layer.depth()
                    );
                }
                Layer::Permute(_) => {
                    let _ = writeln!(
                        s,
                        "stage {}: P-box         [{width} -> {width} wires, max crossings {}]",
                        i + 1,
                        layer.max_wire_crossings()
                    );
                }
                Layer::Compress(masks) => {
                    let fan: u32 = masks.iter().map(|m| m.count_ones()).max().unwrap_or(0);
                    let _ = writeln!(
                        s,
                        "stage {}: C-S box       [{} -> {} bits, max fan-in {}, depth {}T]",
                        i + 1,
                        width,
                        masks.len(),
                        fan,
                        layer.depth()
                    );
                    width = masks.len() as u32;
                }
            }
        }
        let c = self.cost();
        let _ = writeln!(
            s,
            "output: {} bits; critical path {}T, total {}T, {} layers",
            self.output_bits, c.critical_path, c.total_transistors, c.layers
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub8() -> Layer {
        Layer::Substitute(vec![(0, SboxKind::Present4), (4, SboxKind::Spongent4)])
    }

    #[test]
    fn substitution_applies_boxes_in_place() {
        let c = Circuit::new(8, vec![sub8()]).unwrap();
        let v = c.eval(0x00);
        assert_eq!(v & 0xf, crate::PRESENT_SBOX[0] as u64);
        assert_eq!(v >> 4, crate::SPONGENT_SBOX[0] as u64);
    }

    #[test]
    fn permutation_reorders_bits() {
        // Reverse 4 bits.
        let c = Circuit::new(4, vec![Layer::Permute(vec![3, 2, 1, 0])]).unwrap();
        assert_eq!(c.eval(0b0001), 0b1000);
        assert_eq!(c.eval(0b1010), 0b0101);
    }

    #[test]
    fn compression_is_parity() {
        let c = Circuit::new(4, vec![Layer::Compress(vec![0b0011, 0b1100])]).unwrap();
        assert_eq!(c.eval(0b0001), 0b01);
        assert_eq!(c.eval(0b0011), 0b00);
        assert_eq!(c.eval(0b0111), 0b10);
    }

    #[test]
    fn cost_model_accumulates_depth() {
        let c = Circuit::new(
            8,
            vec![
                sub8(),
                Layer::Permute((0..8).rev().collect()),
                Layer::Compress(vec![0x0f, 0xf0]),
            ],
        )
        .unwrap();
        let cost = c.cost();
        // S-box depth 8 + P-box 0 + XOR tree over 4 inputs (2 levels * 4).
        assert_eq!(cost.critical_path, 8 + 8);
        assert_eq!(cost.layers, 3);
        assert!(cost.total_transistors > 0);
        assert!(cost.breadth <= cost.total_transistors);
    }

    #[test]
    fn xor_tree_depth_is_log2() {
        assert_eq!(xor_tree_depth(1), 0);
        assert_eq!(xor_tree_depth(2), 1);
        assert_eq!(xor_tree_depth(3), 2);
        assert_eq!(xor_tree_depth(4), 2);
        assert_eq!(xor_tree_depth(5), 3);
        assert_eq!(xor_tree_depth(8), 3);
        assert_eq!(xor_tree_depth(9), 4);
    }

    #[test]
    fn identity_permutation_has_no_crossings() {
        assert_eq!(max_crossings(&[0, 1, 2, 3]), 0);
        // A full reversal: every wire crosses every other.
        assert_eq!(max_crossings(&[3, 2, 1, 0]), 3);
    }

    #[test]
    fn rejects_overlapping_sboxes() {
        let bad = Circuit::new(
            8,
            vec![Layer::Substitute(vec![
                (0, SboxKind::Present4),
                (2, SboxKind::Present4),
            ])],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn rejects_non_tiling_sboxes() {
        let bad = Circuit::new(8, vec![Layer::Substitute(vec![(0, SboxKind::Present4)])]);
        assert!(bad.is_err());
    }

    #[test]
    fn rejects_bad_permutation() {
        assert!(Circuit::new(4, vec![Layer::Permute(vec![0, 0, 1, 2])]).is_err());
        assert!(Circuit::new(4, vec![Layer::Permute(vec![0, 1, 2])]).is_err());
    }

    #[test]
    fn rejects_empty_or_oob_masks() {
        assert!(Circuit::new(4, vec![Layer::Compress(vec![0])]).is_err());
        assert!(Circuit::new(4, vec![Layer::Compress(vec![0b1_0000])]).is_err());
    }

    #[test]
    fn describe_mentions_structure() {
        let c = Circuit::new(8, vec![sub8(), Layer::Compress(vec![0x0f, 0xf0])]).unwrap();
        let d = c.describe();
        assert!(d.contains("substitution"));
        assert!(d.contains("C-S box"));
        assert!(d.contains("critical path"));
    }

    #[test]
    fn eval_masks_extraneous_input_bits() {
        let c = Circuit::new(4, vec![Layer::Compress(vec![0b1111])]).unwrap();
        assert_eq!(c.eval(0b1_0001), c.eval(0b0_0001));
    }
}

//! Hash-construction primitives: S-boxes from PRESENT and SPONGENT.
//!
//! Section V-A separates primitives into *mixing* primitives (S-boxes and
//! P-boxes, establishing non-linearity and diffusion) and *non-invertible
//! compression* primitives (XOR trees mapping |m| → |n|, |m| > |n|). The
//! S-boxes below are the published 4-bit boxes of the PRESENT block cipher
//! and the SPONGENT hash, plus a 3-bit box for odd-width tails.

/// The PRESENT cipher 4→4 S-box (Bogdanov et al., CHES 2007).
pub const PRESENT_SBOX: [u8; 16] = [
    0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
];

/// The SPONGENT hash 4→4 S-box (Bogdanov et al., CHES 2011).
pub const SPONGENT_SBOX: [u8; 16] = [
    0xE, 0xD, 0xB, 0x0, 0x2, 0x1, 0x4, 0xF, 0x7, 0xA, 0x8, 0x5, 0x9, 0xC, 0x3, 0x6,
];

/// A 3→3 S-box used to cover widths not divisible by four. Chosen as a
/// permutation of 0..8 with no fixed points and full diffusion.
pub const SBOX3: [u8; 8] = [0x5, 0x6, 0x3, 0x1, 0x7, 0x2, 0x0, 0x4];

/// Which substitution box a [`crate::Layer::Substitute`] position uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SboxKind {
    /// PRESENT 4→4 box.
    Present4,
    /// SPONGENT 4→4 box.
    Spongent4,
    /// 3→3 tail box.
    Tail3,
}

impl SboxKind {
    /// Input/output width in bits.
    pub fn width(self) -> u32 {
        match self {
            SboxKind::Present4 | SboxKind::Spongent4 => 4,
            SboxKind::Tail3 => 3,
        }
    }

    /// Applies the box to a value already masked to its width.
    pub fn apply(self, v: u8) -> u8 {
        match self {
            SboxKind::Present4 => PRESENT_SBOX[v as usize],
            SboxKind::Spongent4 => SPONGENT_SBOX[v as usize],
            SboxKind::Tail3 => SBOX3[v as usize],
        }
    }

    /// Series-transistor depth of the box (cost model, C1).
    pub fn depth(self) -> u32 {
        match self {
            SboxKind::Present4 | SboxKind::Spongent4 => crate::SBOX4_DEPTH,
            SboxKind::Tail3 => crate::SBOX3_DEPTH,
        }
    }

    /// Total transistor count of the box (cost model, C1).
    pub fn transistors(self) -> u32 {
        match self {
            SboxKind::Present4 | SboxKind::Spongent4 => crate::SBOX4_TRANSISTORS,
            SboxKind::Tail3 => crate::SBOX3_TRANSISTORS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bijection(f: impl Fn(u8) -> u8, n: u8) {
        let mut seen = vec![false; n as usize];
        for v in 0..n {
            let o = f(v);
            assert!(o < n, "output out of range");
            assert!(!seen[o as usize], "not a bijection");
            seen[o as usize] = true;
        }
    }

    #[test]
    fn sboxes_are_bijections() {
        assert_bijection(|v| SboxKind::Present4.apply(v), 16);
        assert_bijection(|v| SboxKind::Spongent4.apply(v), 16);
        assert_bijection(|v| SboxKind::Tail3.apply(v), 8);
    }

    #[test]
    fn present_sbox_matches_published_values() {
        // Spot checks from the CHES 2007 paper.
        assert_eq!(PRESENT_SBOX[0x0], 0xC);
        assert_eq!(PRESENT_SBOX[0xF], 0x2);
        assert_eq!(PRESENT_SBOX[0x7], 0xD);
    }

    #[test]
    fn spongent_sbox_matches_published_values() {
        assert_eq!(SPONGENT_SBOX[0x0], 0xE);
        assert_eq!(SPONGENT_SBOX[0xF], 0x6);
    }

    #[test]
    fn sboxes_have_no_linear_structure_over_single_bits() {
        // Flipping any single input bit must change the output for every
        // base value (a weak but necessary non-linearity property).
        for kind in [SboxKind::Present4, SboxKind::Spongent4] {
            for v in 0u8..16 {
                for b in 0..4 {
                    assert_ne!(kind.apply(v), kind.apply(v ^ (1 << b)));
                }
            }
        }
    }

    #[test]
    fn cost_model_sane() {
        assert!(SboxKind::Tail3.depth() < SboxKind::Present4.depth());
        assert!(SboxKind::Tail3.transistors() < SboxKind::Present4.transistors());
        assert_eq!(SboxKind::Present4.width(), 4);
        assert_eq!(SboxKind::Tail3.width(), 3);
    }
}

//! Precompiled circuit evaluation: flat lookup tables for the hot path.
//!
//! [`crate::Circuit::eval`] walks the layer list interpreting it bit by
//! bit — a permutation layer alone costs one shift/mask/or per wire (up to
//! 96 of them), and the simulator evaluates several circuits per branch.
//! A [`CompiledCircuit`] lowers every layer into flat byte-sliced lookup
//! tables once, at construction time:
//!
//! * substitution layers become pre-shifted S-box LUTs (`lut[v]` already
//!   carries the output at its bit offset),
//! * permutation layers become per-input-byte scatter tables OR-combined
//!   (8 wires per table lookup instead of 1 per shift),
//! * compression layers become per-input-byte parity tables XOR-combined
//!   (XOR is parity-additive across byte slices).
//!
//! Evaluation is a handful of table lookups with no per-call allocation
//! and no data-dependent branching, and is bit-identical to the
//! interpreted [`crate::Circuit::eval`] (property-tested below).

use crate::circuit::{Circuit, Layer};

/// One pre-shifted S-box: `lut[v]` is `apply(v) << off` for the box's bit
/// offset, so applying a whole substitution layer is an OR-reduction.
#[derive(Clone, Debug)]
struct SubBox {
    off: u32,
    mask: u8,
    lut: [u128; 16],
}

/// One compiled layer. Byte-sliced tables cover `ceil(width / 8)` input
/// bytes; out-of-width bits are zero in every table entry.
#[derive(Clone, Debug)]
enum CompiledLayer {
    /// Parallel pre-shifted S-box LUTs (OR-combined).
    Substitute(Vec<SubBox>),
    /// Permutation as per-byte scatter tables (OR-combined).
    Scatter(Vec<[u128; 256]>),
    /// XOR-compression as per-byte parity tables (XOR-combined).
    Parity(Vec<[u128; 256]>),
}

/// A [`Circuit`] lowered to flat lookup tables — same outputs, built once,
/// evaluated without interpretation overhead.
///
/// ```
/// use stbpu_remap::{Circuit, CompiledCircuit, Layer, SboxKind};
///
/// let c = Circuit::new(8, vec![
///     Layer::Substitute(vec![(0, SboxKind::Present4), (4, SboxKind::Present4)]),
///     Layer::Compress(vec![0b0000_0011, 0b0000_1100, 0b0011_0000, 0b1100_0000]),
/// ]).unwrap();
/// let fast = CompiledCircuit::new(&c);
/// for v in 0..=255u128 {
///     assert_eq!(fast.eval(v), c.eval(v));
/// }
/// ```
#[derive(Clone, Debug)]
pub struct CompiledCircuit {
    input_mask: u128,
    output_bits: u32,
    layers: Vec<CompiledLayer>,
}

/// Bytes needed to cover `width` bits.
fn byte_count(width: u32) -> usize {
    width.div_ceil(8) as usize
}

impl CompiledCircuit {
    /// Lowers `circuit` into lookup tables. The result evaluates
    /// bit-identically to [`Circuit::eval`].
    pub fn new(circuit: &Circuit) -> Self {
        let mut width = circuit.input_bits();
        let mut layers = Vec::with_capacity(circuit.layers().len());
        for layer in circuit.layers() {
            match layer {
                Layer::Substitute(boxes) => {
                    let compiled = boxes
                        .iter()
                        .map(|&(off, kind)| {
                            let w = kind.width();
                            let mask = ((1u16 << w) - 1) as u8;
                            let mut lut = [0u128; 16];
                            for (v, slot) in lut.iter_mut().enumerate().take(1 << w) {
                                *slot = (kind.apply(v as u8) as u128) << off;
                            }
                            SubBox { off, mask, lut }
                        })
                        .collect();
                    layers.push(CompiledLayer::Substitute(compiled));
                }
                Layer::Permute(perm) => {
                    // dest[s] = output position of input bit s (bijection).
                    let mut dest = vec![0u32; perm.len()];
                    for (out, &src) in perm.iter().enumerate() {
                        dest[src as usize] = out as u32;
                    }
                    let mut tables = vec![[0u128; 256]; byte_count(width)];
                    for (byte, table) in tables.iter_mut().enumerate() {
                        for (v, slot) in table.iter_mut().enumerate() {
                            let mut y = 0u128;
                            for b in 0..8u32 {
                                let s = byte as u32 * 8 + b;
                                if s < width && (v >> b) & 1 == 1 {
                                    y |= 1u128 << dest[s as usize];
                                }
                            }
                            *slot = y;
                        }
                    }
                    layers.push(CompiledLayer::Scatter(tables));
                }
                Layer::Compress(masks) => {
                    let mut tables = vec![[0u128; 256]; byte_count(width)];
                    for (byte, table) in tables.iter_mut().enumerate() {
                        for (v, slot) in table.iter_mut().enumerate() {
                            let mut y = 0u128;
                            for (i, &m) in masks.iter().enumerate() {
                                let mbyte = (m >> (byte * 8)) as u8;
                                y |= (((v as u8 & mbyte).count_ones() & 1) as u128) << i;
                            }
                            *slot = y;
                        }
                    }
                    layers.push(CompiledLayer::Parity(tables));
                    width = masks.len() as u32;
                }
            }
        }
        CompiledCircuit {
            input_mask: if circuit.input_bits() == 128 {
                u128::MAX
            } else {
                (1u128 << circuit.input_bits()) - 1
            },
            output_bits: circuit.output_bits(),
            layers,
        }
    }

    /// Output width in bits (matches the source circuit).
    pub fn output_bits(&self) -> u32 {
        self.output_bits
    }

    /// Evaluates the compiled circuit on `input` (low input bits used) —
    /// bit-identical to the source [`Circuit::eval`], allocation-free.
    #[inline]
    pub fn eval(&self, input: u128) -> u64 {
        let mut x = input & self.input_mask;
        for layer in &self.layers {
            x = match layer {
                CompiledLayer::Substitute(boxes) => {
                    let mut y = 0u128;
                    for b in boxes {
                        y |= b.lut[((x >> b.off) as u8 & b.mask) as usize];
                    }
                    y
                }
                CompiledLayer::Scatter(tables) => {
                    let mut y = 0u128;
                    for (i, table) in tables.iter().enumerate() {
                        y |= table[((x >> (i * 8)) & 0xff) as usize];
                    }
                    y
                }
                CompiledLayer::Parity(tables) => {
                    let mut y = 0u128;
                    for (i, table) in tables.iter().enumerate() {
                        y ^= table[((x >> (i * 8)) & 0xff) as usize];
                    }
                    y
                }
            };
        }
        x as u64
    }
}

impl From<&Circuit> for CompiledCircuit {
    fn from(c: &Circuit) -> Self {
        CompiledCircuit::new(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitive::SboxKind;

    fn agree_on_samples(c: &Circuit) {
        let fast = CompiledCircuit::new(c);
        assert_eq!(fast.output_bits(), c.output_bits());
        let mut x: u128 = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210;
        for i in 0..2_000u128 {
            x = x.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(i);
            assert_eq!(fast.eval(x), c.eval(x), "input {x:#x}");
        }
        // Edge inputs.
        for v in [0u128, 1, u128::MAX, 1 << 127, (1 << 96) - 1] {
            assert_eq!(fast.eval(v), c.eval(v));
        }
    }

    #[test]
    fn compiled_matches_interpreted_per_layer_kind() {
        let sub = Circuit::new(
            8,
            vec![Layer::Substitute(vec![
                (0, SboxKind::Present4),
                (4, SboxKind::Spongent4),
            ])],
        )
        .unwrap();
        agree_on_samples(&sub);

        let perm = Circuit::new(11, vec![Layer::Permute((0..11).rev().collect())]).unwrap();
        agree_on_samples(&perm);

        let comp = Circuit::new(12, vec![Layer::Compress(vec![0xf0f, 0x3c3, 0xaaa])]).unwrap();
        agree_on_samples(&comp);
    }

    #[test]
    fn compiled_matches_interpreted_on_canonical_circuits() {
        // The real Table II geometries: odd widths, 3-bit tail boxes,
        // multi-stage layering — the exact circuits the simulator runs.
        let set = crate::RemapSet::generate(991).unwrap();
        for (name, c) in set.circuits() {
            let fast = CompiledCircuit::new(c);
            let mut x: u128 = 0xdead_beef_cafe_f00d;
            for i in 0..4_000u128 {
                x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i);
                assert_eq!(fast.eval(x), c.eval(x), "{name} diverged on {x:#x}");
            }
        }
    }

    #[test]
    fn boundary_straddling_boxes_compile_correctly() {
        // A 3-bit S-box straddling the byte boundary at offset 6 exercises
        // the pre-shifted LUT path where (x >> off) spans two bytes.
        let c = Circuit::new(
            11,
            vec![Layer::Substitute(vec![
                (0, SboxKind::Tail3),
                (3, SboxKind::Tail3),
                (6, SboxKind::Tail3),
                // Remaining 2 bits cannot be tiled by 3/4-wide boxes, so
                // use a 9+2 split instead: rebuild with a compress layer.
            ])],
        );
        // 11 bits cannot tile with 3-bit boxes alone (9 < 11): expect the
        // builder to reject it — the compiler never sees invalid circuits.
        assert!(c.is_err());
        let c = Circuit::new(
            9,
            vec![
                Layer::Substitute(vec![
                    (0, SboxKind::Tail3),
                    (3, SboxKind::Tail3),
                    (6, SboxKind::Tail3),
                ]),
                Layer::Permute(vec![8, 6, 4, 2, 0, 1, 3, 5, 7]),
                Layer::Compress(vec![0b1_1100_0111, 0b0_0011_1100]),
            ],
        )
        .unwrap();
        agree_on_samples(&c);
    }
}

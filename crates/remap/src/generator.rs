//! Automated remap-function generation (Section V-A).
//!
//! Designing a remapping function is a multi-variable optimization problem:
//! the algorithm takes a list of hardware constraints and randomly composes
//! candidate circuits from the primitive pool, one layer at a time. After a
//! layer is added the partial design is tested against the constraints:
//! a violating design is discarded (and the primitive-selection weights are
//! adapted), a complete satisfying design is stored for scoring, and an
//! incomplete non-violating design keeps growing.
//!
//! Candidates follow the structure of the paper's Figure 2: alternating
//! substitution stages (4→4 PRESENT/SPONGENT and 3→3 S-boxes), P-boxes with
//! randomly generated pin mappings, and compressing C-S boxes, with
//! substitution stages at positions 1, 3, 5, … . Designs that satisfy the
//! hardware constraints (C1) are then validated statistically — uniformity
//! (C2) and avalanche (C3) — and the final selection minimizes the
//! unit-weighted score of Section V-B.

use crate::analysis;
use crate::circuit::{Circuit, Layer};
use crate::primitive::SboxKind;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Hardware constraints supplied to the generator (the C1 inputs of
/// Section V-A: critical-path and transistor budgets, pin counts, layer and
/// wire-crossing limits).
#[derive(Clone, Copy, Debug)]
pub struct HwConstraints {
    /// Input pins.
    pub input_bits: u32,
    /// Output pins.
    pub output_bits: u32,
    /// Maximum series transistors along the critical path (≤ 45).
    pub max_critical_path: u32,
    /// Maximum total transistor budget.
    pub max_total_transistors: u32,
    /// Maximum transistors in parallel (breadth) per layer.
    pub max_breadth: u32,
    /// Maximum number of functional layers.
    pub max_layers: u32,
    /// Maximum wires any single wire may cross.
    pub max_wire_crossings: u32,
}

impl HwConstraints {
    /// Sensible defaults for a Table II geometry: the paper's 45-transistor
    /// critical-path ceiling and generous area budgets.
    pub fn for_geometry(input_bits: u32, output_bits: u32) -> Self {
        HwConstraints {
            input_bits,
            output_bits,
            max_critical_path: crate::MAX_CRITICAL_PATH,
            max_total_transistors: 8000,
            max_breadth: 3000,
            max_layers: 12,
            max_wire_crossings: input_bits + 32,
        }
    }
}

/// Generation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenError {
    msg: String,
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "remap generation failed: {}", self.msg)
    }
}

impl std::error::Error for GenError {}

/// The randomized layer-by-layer remap generator.
///
/// ```
/// use stbpu_remap::{Generator, HwConstraints};
/// let mut g = Generator::new(HwConstraints::for_geometry(32, 8), 42);
/// let c = g.generate(2, 100).unwrap();
/// assert_eq!(c.input_bits(), 32);
/// assert_eq!(c.output_bits(), 8);
/// assert!(c.cost().critical_path <= 45);
/// ```
#[derive(Debug)]
pub struct Generator {
    constraints: HwConstraints,
    rng: rand::rngs::StdRng,
    /// Probability weights adapted across attempts: `[trailing_round,
    /// extra_permute, mask_overlap]`. When a partial design dies of budget
    /// exhaustion, the expensive extras are de-weighted (the paper's case
    /// iii: change primitive-selection weights for the next layer/attempt).
    weights: [f64; 3],
}

impl Generator {
    /// Creates a generator with deterministic randomness from `seed`.
    pub fn new(constraints: HwConstraints, seed: u64) -> Self {
        Generator {
            constraints,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            weights: [0.7, 0.4, 0.5],
        }
    }

    /// Builds up to `candidates` constraint-satisfying circuits, scores each
    /// with `samples` statistical samples, and returns the best.
    ///
    /// # Errors
    ///
    /// Returns [`GenError`] when no candidate satisfying all constraints is
    /// found within the attempt budget — e.g. an infeasibly small critical
    /// path for the requested geometry.
    pub fn generate(&mut self, candidates: usize, samples: usize) -> Result<Circuit, GenError> {
        let mut found = Vec::new();
        let max_attempts = candidates.max(1) * 64;
        for _ in 0..max_attempts {
            if found.len() >= candidates {
                break;
            }
            match self.try_build() {
                Some(c) => found.push(c),
                None => {
                    // Constraint violation: bias the next attempt toward a
                    // cheaper design.
                    self.weights[0] = (self.weights[0] * 0.7).max(0.05);
                    self.weights[1] = (self.weights[1] * 0.7).max(0.05);
                    self.weights[2] = (self.weights[2] * 0.7).max(0.05);
                }
            }
        }
        if found.is_empty() {
            return Err(GenError {
                msg: format!(
                    "no circuit satisfied constraints {:?} after {} attempts",
                    self.constraints, max_attempts
                ),
            });
        }
        let seed = self.rng.gen::<u64>();
        found
            .into_iter()
            .map(|c| {
                let s = analysis::score(&c, samples, seed);
                (c, s)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(c, _)| c)
            .ok_or_else(|| GenError {
                msg: "scoring failed".into(),
            })
    }

    /// Attempts one randomized construction. Returns `None` when the design
    /// violates a constraint and must be discarded.
    fn try_build(&mut self) -> Option<Circuit> {
        let cs = self.constraints;
        let schedule = width_schedule(cs.input_bits, cs.output_bits)?;
        let mut layers: Vec<Layer> = Vec::new();
        let mut width = cs.input_bits;

        for &next in &schedule {
            layers.push(self.make_substitution(width)?);
            layers.push(self.make_permutation(width));
            if self.rng.gen::<f64>() < self.weights[1] && layers.len() + 2 < cs.max_layers as usize
            {
                // Occasional extra P-box (free in depth, adds diffusion).
                layers.push(self.make_permutation(width));
            }
            if next < width {
                layers.push(self.make_compression(width, next));
                width = next;
            }
        }
        // Trailing whitening rounds: keep mixing on the output width while
        // the substitution count is low or the dice say so.
        let mut subs = schedule.len();
        while (subs < 3 || self.rng.gen::<f64>() < self.weights[0] * 0.3)
            && tile(width).is_some()
            && layers.len() + 2 <= cs.max_layers as usize
            && subs < 5
        {
            layers.push(self.make_substitution(width)?);
            layers.push(self.make_permutation(width));
            subs += 1;
        }

        let circuit = Circuit::new(cs.input_bits, layers).ok()?;
        let cost = circuit.cost();
        if cost.critical_path > cs.max_critical_path
            || cost.total_transistors > cs.max_total_transistors
            || cost.breadth > cs.max_breadth
            || cost.layers > cs.max_layers
            || cost.max_wire_crossings > cs.max_wire_crossings
        {
            None
        } else {
            Some(circuit)
        }
    }

    fn make_substitution(&mut self, width: u32) -> Option<Layer> {
        let (fours, threes) = tile(width)?;
        let mut boxes = Vec::new();
        let mut off = 0;
        for _ in 0..fours {
            let kind = if self.rng.gen::<bool>() {
                SboxKind::Present4
            } else {
                SboxKind::Spongent4
            };
            boxes.push((off, kind));
            off += 4;
        }
        for _ in 0..threes {
            boxes.push((off, SboxKind::Tail3));
            off += 3;
        }
        Some(Layer::Substitute(boxes))
    }

    fn make_permutation(&mut self, width: u32) -> Layer {
        let mut perm: Vec<u32> = (0..width).collect();
        perm.shuffle(&mut self.rng);
        Layer::Permute(perm)
    }

    /// Builds a compressing C-S layer `width -> next`: input bits are dealt
    /// into `next` parity groups (covering every input), optionally with one
    /// extra overlap bit per group for additional diffusion.
    fn make_compression(&mut self, width: u32, next: u32) -> Layer {
        let mut order: Vec<u32> = (0..width).collect();
        order.shuffle(&mut self.rng);
        let mut masks = vec![0u128; next as usize];
        for (i, bit) in order.iter().enumerate() {
            masks[i % next as usize] |= 1u128 << bit;
        }
        if self.rng.gen::<f64>() < self.weights[2] {
            for m in &mut masks {
                let extra = self.rng.gen_range(0..width);
                *m |= 1u128 << extra;
            }
        }
        Layer::Compress(masks)
    }
}

/// Plans the sequence of post-compression widths. At most two compression
/// steps are used (geometric interpolation between input and output) so the
/// XOR-tree depths plus three substitution stages stay inside the paper's
/// 45-transistor critical-path ceiling; the intermediate width is bumped to
/// a tileable value so a substitution stage can follow it.
fn width_schedule(input: u32, output: u32) -> Option<Vec<u32>> {
    if output == 0 || output > input || input > 128 {
        return None;
    }
    if input == output {
        return Some(Vec::new());
    }
    let ratio = input as f64 / output as f64;
    if ratio <= 2.5 {
        return Some(vec![output]);
    }
    let mid_raw = (input as f64 / ratio.sqrt()).round() as u32;
    let mid = tileable_ceil(mid_raw.clamp(output + 1, input - 1))?;
    if mid <= output || mid >= input {
        return Some(vec![output]);
    }
    Some(vec![mid, output])
}

/// Smallest tileable width ≥ `w` (every width ≥ 3 except 5 is expressible
/// as 4a + 3b).
fn tileable_ceil(w: u32) -> Option<u32> {
    (w..=w + 3).find(|&x| tile(x).is_some())
}

/// Expresses `width = 4a + 3b` with minimal `b`, if possible.
fn tile(width: u32) -> Option<(u32, u32)> {
    for b in 0..=(width / 3) {
        let rest = width - 3 * b;
        if rest.is_multiple_of(4) {
            return Some((rest / 4, b));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_covers_all_widths_except_one_two_five() {
        for w in 3..=128u32 {
            if w == 5 {
                assert_eq!(tile(5), None, "5 = 4a+3b has no solution");
                continue;
            }
            let (a, b) = tile(w).unwrap_or_else(|| panic!("width {w} untileable"));
            assert_eq!(4 * a + 3 * b, w);
        }
        assert_eq!(tile(1), None);
        assert_eq!(tile(2), None);
    }

    #[test]
    fn width_schedule_descends_to_output() {
        for (i, o) in [
            (80u32, 22u32),
            (90, 8),
            (96, 14),
            (96, 25),
            (80, 10),
            (32, 8),
        ] {
            let s = width_schedule(i, o).unwrap();
            assert_eq!(*s.last().unwrap(), o, "{i}->{o}: {s:?}");
            assert!(s.len() <= 2, "{i}->{o}: too many compression steps {s:?}");
            let mut prev = i;
            for &w in &s {
                assert!(w < prev, "{i}->{o}: {s:?}");
                assert!(
                    w == o || tile(w).is_some(),
                    "{i}->{o}: untileable mid in {s:?}"
                );
                prev = w;
            }
        }
        assert!(width_schedule(22, 22).unwrap().is_empty());
    }

    #[test]
    fn generates_r1_geometry_within_budget() {
        let mut g = Generator::new(HwConstraints::for_geometry(80, 22), 7);
        let c = g.generate(2, 60).expect("generation must succeed");
        assert_eq!(c.input_bits(), 80);
        assert_eq!(c.output_bits(), 22);
        let cost = c.cost();
        assert!(
            cost.critical_path <= 45,
            "critical path {}",
            cost.critical_path
        );
        assert!(cost.layers <= 12);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cs = HwConstraints::for_geometry(40, 10);
        let a = Generator::new(cs, 99).generate(2, 40).unwrap();
        let b = Generator::new(cs, 99).generate(2, 40).unwrap();
        for x in [0u128, 1, 0xdead_beef, (1 << 40) - 1] {
            assert_eq!(a.eval(x), b.eval(x));
        }
        let c = Generator::new(cs, 100).generate(2, 40).unwrap();
        let differs = (0..200u128).any(|x| a.eval(x * 997) != c.eval(x * 997));
        assert!(
            differs,
            "different seeds should generally give different circuits"
        );
    }

    #[test]
    fn infeasible_budget_reported() {
        let cs = HwConstraints {
            input_bits: 96,
            output_bits: 8,
            max_critical_path: 4, // cannot even fit one S-box
            max_total_transistors: 100,
            max_breadth: 50,
            max_layers: 3,
            max_wire_crossings: 8,
        };
        let err = Generator::new(cs, 1).generate(1, 20).unwrap_err();
        assert!(err.to_string().contains("no circuit"));
    }

    #[test]
    fn generated_circuit_has_avalanche() {
        let mut g = Generator::new(HwConstraints::for_geometry(48, 14), 3);
        let c = g.generate(3, 100).unwrap();
        let av = crate::analysis::avalanche(&c, 150, 5);
        assert!(
            (av.mean_hd - 0.5).abs() < 0.12,
            "mean avalanche {} too far from 0.5",
            av.mean_hd
        );
    }

    #[test]
    fn generated_circuit_has_at_least_three_substitution_stages() {
        let mut g = Generator::new(HwConstraints::for_geometry(80, 22), 21);
        let c = g.generate(1, 40).unwrap();
        let subs = c
            .layers()
            .iter()
            .filter(|l| matches!(l, Layer::Substitute(_)))
            .count();
        assert!(subs >= 3, "only {subs} substitution stages");
    }
}

//! Statistical validation of remapping functions: uniformity (C2),
//! avalanche effect (C3) and the weighted scoring of Section V-B.

use crate::circuit::Circuit;
use rand::{Rng, SeedableRng};

/// Result of a balls-and-bins uniformity test (constraint C2).
#[derive(Clone, Copy, Debug)]
pub struct UniformityReport {
    /// Number of bins (size of the output space tested).
    pub bins: usize,
    /// Number of balls thrown (random inputs).
    pub balls: usize,
    /// Coefficient of variation of bin loads.
    pub cv: f64,
    /// Expected CV for an ideal uniform thrower (Poisson): `1/sqrt(λ)`.
    pub expected_cv: f64,
}

impl UniformityReport {
    /// Excess CV relative to the ideal uniform thrower, clamped at zero —
    /// the normalized metric fed to the optimizer (0 is optimal).
    pub fn excess(&self) -> f64 {
        (self.cv - self.expected_cv).max(0.0)
    }
}

/// Result of a strict-avalanche-criterion test (constraint C3).
#[derive(Clone, Copy, Debug)]
pub struct AvalancheReport {
    /// Mean Hamming distance between `F(x)` and `F(x ^ e_i)`, normalized by
    /// the output width. Ideal: 0.5.
    pub mean_hd: f64,
    /// Coefficient of variation of per-input average Hamming distances.
    /// Ideal: 0.
    pub cv: f64,
    /// Max − min per-*input-bit* flip rate across all input bit positions.
    /// Ideal: 0 (every input bit perturbs the output equally).
    pub input_bit_spread: f64,
    /// Max − min per-*output-bit* flip rate across all output bit
    /// positions. Ideal: 0.
    pub output_bit_spread: f64,
    /// Inputs sampled.
    pub samples: usize,
}

/// Tests uniformity of a single output *field* (bits `[lo, lo+width)`)
/// using balls and bins with `lambda` expected balls per bin.
///
/// # Panics
///
/// Panics if the field exceeds the circuit's output width or `width > 20`
/// (tables would not fit in memory for a quick check).
pub fn uniformity(c: &Circuit, lo: u32, width: u32, lambda: usize, seed: u64) -> UniformityReport {
    assert!(lo + width <= c.output_bits(), "field outside output");
    assert!(width <= 20, "field too wide for balls-and-bins");
    let bins = 1usize << width;
    let balls = bins * lambda;
    let mut counts = vec![0u32; bins];
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let in_mask = if c.input_bits() == 128 {
        u128::MAX
    } else {
        (1u128 << c.input_bits()) - 1
    };
    for _ in 0..balls {
        let x: u128 = rng.gen::<u128>() & in_mask;
        let y = (c.eval(x) >> lo) & ((1u64 << width) - 1);
        counts[y as usize] += 1;
    }
    let mean = balls as f64 / bins as f64;
    let var = counts
        .iter()
        .map(|&n| {
            let d = n as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / bins as f64;
    UniformityReport {
        bins,
        balls,
        cv: var.sqrt() / mean,
        expected_cv: 1.0 / mean.sqrt(),
    }
}

/// Runs the strict-avalanche test of Section V-A over `samples` random
/// inputs: for each input, every single-bit flip is applied and the output
/// Hamming distances are aggregated.
pub fn avalanche(c: &Circuit, samples: usize, seed: u64) -> AvalancheReport {
    let n_in = c.input_bits();
    let n_out = c.output_bits();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let in_mask = if n_in == 128 {
        u128::MAX
    } else {
        (1u128 << n_in) - 1
    };

    let mut per_input_means = Vec::with_capacity(samples);
    let mut input_bit_hd = vec![0u64; n_in as usize];
    let mut output_bit_flips = vec![0u64; n_out as usize];
    let mut total_hd = 0u64;

    for _ in 0..samples {
        let x: u128 = rng.gen::<u128>() & in_mask;
        let y = c.eval(x);
        let mut sum = 0u64;
        for b in 0..n_in {
            let y2 = c.eval(x ^ (1u128 << b));
            let diff = y ^ y2;
            let hd = diff.count_ones() as u64;
            sum += hd;
            input_bit_hd[b as usize] += hd;
            let mut d = diff;
            while d != 0 {
                let o = d.trailing_zeros();
                output_bit_flips[o as usize] += 1;
                d &= d - 1;
            }
        }
        total_hd += sum;
        per_input_means.push(sum as f64 / (n_in as f64 * n_out as f64));
    }

    let flips_total = samples as u64 * n_in as u64;
    let mean_hd = total_hd as f64 / (flips_total as f64 * n_out as f64);
    let m = per_input_means.iter().sum::<f64>() / samples as f64;
    let var = per_input_means
        .iter()
        .map(|v| (v - m) * (v - m))
        .sum::<f64>()
        / samples as f64;
    let cv = if m > 0.0 {
        var.sqrt() / m
    } else {
        f64::INFINITY
    };

    let in_rates: Vec<f64> = input_bit_hd
        .iter()
        .map(|&h| h as f64 / (samples as f64 * n_out as f64))
        .collect();
    let out_rates: Vec<f64> = output_bit_flips
        .iter()
        .map(|&f| f as f64 / flips_total as f64)
        .collect();
    let spread = |v: &[f64]| {
        let mx = v.iter().cloned().fold(f64::MIN, f64::max);
        let mn = v.iter().cloned().fold(f64::MAX, f64::min);
        mx - mn
    };

    AvalancheReport {
        mean_hd,
        cv,
        input_bit_spread: spread(&in_rates),
        output_bit_spread: spread(&out_rates),
        samples,
    }
}

/// The weighted multi-objective score of Section V-B: all metrics are
/// normalized so 0 is optimal and summed with unit weights. Lower is
/// better; used by the generator to select among candidates.
pub fn score(c: &Circuit, samples: usize, seed: u64) -> f64 {
    let av = avalanche(c, samples, seed);
    // Uniformity over the low min(output,14) bits (index fields).
    let w = c.output_bits().min(10);
    let un = uniformity(c, 0, w, 16, seed ^ 0x5eed);
    let cost = c.cost();
    (av.mean_hd - 0.5).abs() * 2.0
        + av.cv
        + av.input_bit_spread
        + av.output_bit_spread
        + un.excess()
        + cost.critical_path as f64 / crate::MAX_CRITICAL_PATH as f64 * 0.25
}

/// A reference keyed hash (multiply–xorshift) used by the ablation bench to
/// compare the generated hardware circuits against an "ideal" software
/// mixer. Not implementable in one cycle — that is the point of the
/// comparison.
pub fn reference_hash(key: u64, x: u64, bits: u32) -> u64 {
    let mut v = x ^ key.rotate_left(17);
    v = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    v ^= v >> 32;
    v = v.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    v ^= v >> 29;
    v & ((1u64 << bits) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Layer;
    use crate::primitive::SboxKind;

    /// A deliberately bad "hash": straight wires (identity permutation).
    fn bad_circuit() -> Circuit {
        Circuit::new(8, vec![Layer::Permute((0..8).collect())]).unwrap()
    }

    /// A decent small mixer: two S/P rounds then compress 8 -> 4.
    fn good_circuit() -> Circuit {
        Circuit::new(
            8,
            vec![
                Layer::Substitute(vec![(0, SboxKind::Present4), (4, SboxKind::Spongent4)]),
                Layer::Permute(vec![0, 4, 1, 5, 2, 6, 3, 7]),
                Layer::Substitute(vec![(0, SboxKind::Spongent4), (4, SboxKind::Present4)]),
                Layer::Compress(vec![0b0001_0011, 0b0010_0110, 0b0100_1100, 0b1010_1001]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn avalanche_separates_good_from_bad() {
        let good = avalanche(&good_circuit(), 400, 1);
        let bad = avalanche(&bad_circuit(), 400, 1);
        assert!(
            (good.mean_hd - 0.5).abs() < 0.15,
            "good circuit mean HD {} far from 0.5",
            good.mean_hd
        );
        // Identity: one input flip flips exactly one output bit -> HD = 1/8.
        assert!((bad.mean_hd - 1.0 / 8.0).abs() < 1e-9);
        assert!(good.mean_hd > bad.mean_hd);
    }

    #[test]
    fn uniformity_of_good_circuit_close_to_poisson() {
        let r = uniformity(&good_circuit(), 0, 4, 64, 7);
        assert!(r.excess() < 0.25, "excess CV too large: {}", r.excess());
        assert_eq!(r.bins, 16);
    }

    #[test]
    fn uniformity_detects_constant_function() {
        // Compress everything into parity bits of a single wire: output is
        // highly non-uniform over 2 bits (bit 1 constant 0 is impossible
        // here, so instead use duplicated masks — both bits always equal).
        let c = Circuit::new(8, vec![Layer::Compress(vec![0b1, 0b1])]).unwrap();
        let r = uniformity(&c, 0, 2, 64, 3);
        assert!(
            r.excess() > 0.5,
            "should flag non-uniform output, cv={}",
            r.cv
        );
    }

    #[test]
    fn score_prefers_good_circuit() {
        let sg = score(&good_circuit(), 200, 11);
        let sb = score(&bad_circuit(), 200, 11);
        assert!(sg < sb, "good {sg} should beat bad {sb}");
    }

    #[test]
    fn reference_hash_stays_in_range_and_mixes() {
        let a = reference_hash(1, 2, 14);
        let b = reference_hash(1, 3, 14);
        let c = reference_hash(2, 2, 14);
        assert!(a < (1 << 14) && b < (1 << 14));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "field outside output")]
    fn uniformity_rejects_oob_field() {
        let _ = uniformity(&good_circuit(), 2, 4, 4, 0);
    }
}

//! Canonical R1..4, Rt and Rp instances with the Table II geometry.
//!
//! The circuits are generated deterministically (fixed seeds) by the
//! Section V-A generator at first use and cached for the process lifetime,
//! mirroring a hardware vendor freezing one concrete design per function.
//!
//! Input packing conventions (LSB first):
//!
//! | Fn | Input (low → high)              | Bits | Output               |
//! |----|---------------------------------|------|----------------------|
//! | R1 | ψ(32) ‖ s(48)                   | 80   | 9 ind ‖ 8 tag ‖ 5 off|
//! | R2 | ψ(32) ‖ BHB(58)                 | 90   | 8 tag                |
//! | R3 | ψ(32) ‖ s(48)                   | 80   | 14 ind               |
//! | R4 | ψ(32) ‖ GHR(16) ‖ s(48)         | 96   | 14 ind               |
//! | Rt | ψ(32) ‖ s(48) ‖ fold(16)        | 96   | 13 ind ‖ 12 tag      |
//! | Rp | ψ(32) ‖ s(48)                   | 80   | 10 ind               |

use crate::circuit::Circuit;
use crate::compiled::CompiledCircuit;
use crate::generator::{GenError, Generator, HwConstraints};
use std::sync::OnceLock;

/// The six canonical STBPU remapping circuits.
///
/// Each function keeps two representations: the structural [`Circuit`]
/// (cost model, `describe()`, the Figure 2 harness) and a
/// [`CompiledCircuit`] lowered to flat lookup tables at construction —
/// the representation the per-branch `r1`..`rp` calls evaluate, so the
/// simulator hot path never interprets layer lists.
///
/// ```
/// use stbpu_remap::RemapSet;
/// let r = RemapSet::standard();
/// let (idx, tag, off) = r.r1(0xdead_beef, 0x7fff_1234_5678);
/// assert!(idx < 512 && tag < 256 && off < 32);
/// ```
#[derive(Debug)]
pub struct RemapSet {
    circuits: [Circuit; 6],
    r1: CompiledCircuit,
    r2: CompiledCircuit,
    r3: CompiledCircuit,
    r4: CompiledCircuit,
    rt: CompiledCircuit,
    rp: CompiledCircuit,
}

static STANDARD: OnceLock<RemapSet> = OnceLock::new();

impl RemapSet {
    /// The process-wide canonical instance (deterministic across runs).
    pub fn standard() -> &'static RemapSet {
        STANDARD.get_or_init(|| {
            RemapSet::generate(0x5742_5055 /* "STBPU" */)
                .expect("canonical remap generation must succeed")
        })
    }

    /// Generates a fresh set of remapping circuits from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`GenError`] if any geometry cannot be satisfied within the
    /// hardware constraints (does not happen for the Table II geometries
    /// with the default budgets).
    pub fn generate(seed: u64) -> Result<RemapSet, GenError> {
        let gen = |io: (u32, u32), s: u64| -> Result<Circuit, GenError> {
            Generator::new(HwConstraints::for_geometry(io.0, io.1), seed ^ s).generate(3, 120)
        };
        let circuits = [
            gen((80, 22), 0x01)?,
            gen((90, 8), 0x02)?,
            gen((80, 14), 0x03)?,
            gen((96, 14), 0x04)?,
            gen((96, 25), 0x05)?,
            gen((80, 10), 0x06)?,
        ];
        Ok(RemapSet {
            r1: CompiledCircuit::new(&circuits[0]),
            r2: CompiledCircuit::new(&circuits[1]),
            r3: CompiledCircuit::new(&circuits[2]),
            r4: CompiledCircuit::new(&circuits[3]),
            rt: CompiledCircuit::new(&circuits[4]),
            rp: CompiledCircuit::new(&circuits[5]),
            circuits,
        })
    }

    /// R1: BTB mode-one mapping → `(set index, tag, offset)`.
    pub fn r1(&self, psi: u32, pc48: u64) -> (usize, u64, u8) {
        let x = (psi as u128) | (((pc48 & ((1 << 48) - 1)) as u128) << 32);
        let y = self.r1.eval(x);
        (
            (y & 0x1ff) as usize,
            (y >> 9) & 0xff,
            ((y >> 17) & 0x1f) as u8,
        )
    }

    /// R2: BTB mode-two tag from the BHB.
    pub fn r2(&self, psi: u32, bhb58: u64) -> u64 {
        let x = (psi as u128) | (((bhb58 & ((1 << 58) - 1)) as u128) << 32);
        self.r2.eval(x) & 0xff
    }

    /// R3: PHT one-level index.
    pub fn r3(&self, psi: u32, pc48: u64) -> usize {
        let x = (psi as u128) | (((pc48 & ((1 << 48) - 1)) as u128) << 32);
        (self.r3.eval(x) & 0x3fff) as usize
    }

    /// R4: PHT two-level index (16 GHR bits per Table II).
    pub fn r4(&self, psi: u32, ghr16: u16, pc48: u64) -> usize {
        let x =
            (psi as u128) | ((ghr16 as u128) << 32) | (((pc48 & ((1 << 48) - 1)) as u128) << 48);
        (self.r4.eval(x) & 0x3fff) as usize
    }

    /// Rt: TAGE tagged-table mapping → `(13-bit index, 12-bit tag)`; the
    /// caller truncates to the table's actual index/tag widths. `fold16`
    /// carries the folded global history of the table (plus a table
    /// constant) so each bank maps differently.
    pub fn rt(&self, psi: u32, pc48: u64, fold16: u16) -> (u64, u64) {
        let x =
            (psi as u128) | (((pc48 & ((1 << 48) - 1)) as u128) << 32) | ((fold16 as u128) << 80);
        let y = self.rt.eval(x);
        (y & 0x1fff, (y >> 13) & 0xfff)
    }

    /// Rp: perceptron table index (10 bits).
    pub fn rp(&self, psi: u32, pc48: u64) -> usize {
        let x = (psi as u128) | (((pc48 & ((1 << 48) - 1)) as u128) << 32);
        (self.rp.eval(x) & 0x3ff) as usize
    }

    /// The underlying circuits, in Table II order (R1, R2, R3, R4, Rt, Rp)
    /// — exposed for cost/statistics reporting.
    pub fn circuits(&self) -> [(&'static str, &Circuit); 6] {
        [
            ("R1", &self.circuits[0]),
            ("R2", &self.circuits[1]),
            ("R3", &self.circuits[2]),
            ("R4", &self.circuits[3]),
            ("Rt", &self.circuits[4]),
            ("Rp", &self.circuits[5]),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_set_geometry_matches_table2() {
        let r = RemapSet::standard();
        let expect = [(80, 22), (90, 8), (80, 14), (96, 14), (96, 25), (80, 10)];
        for ((_, c), (i, o)) in r.circuits().iter().zip(expect) {
            assert_eq!(c.input_bits(), i);
            assert_eq!(c.output_bits(), o);
        }
    }

    #[test]
    fn all_circuits_respect_c1() {
        let r = RemapSet::standard();
        for (name, c) in r.circuits() {
            let cost = c.cost();
            assert!(
                cost.critical_path <= crate::MAX_CRITICAL_PATH,
                "{name}: critical path {} exceeds 45",
                cost.critical_path
            );
        }
    }

    #[test]
    fn outputs_stay_in_range() {
        let r = RemapSet::standard();
        for i in 0..200u64 {
            let psi = (i as u32).wrapping_mul(0x9e37_79b9);
            let pc = i.wrapping_mul(0x1234_5677) & ((1 << 48) - 1);
            let (idx, tag, off) = r.r1(psi, pc);
            assert!(idx < 512 && tag < 256 && off < 32);
            assert!(r.r2(psi, pc) < 256);
            assert!(r.r3(psi, pc) < (1 << 14));
            assert!(r.r4(psi, i as u16, pc) < (1 << 14));
            let (ti, tt) = r.rt(psi, pc, i as u16);
            assert!(ti < (1 << 13) && tt < (1 << 12));
            assert!(r.rp(psi, pc) < 1024);
        }
    }

    #[test]
    fn key_changes_remap_everything() {
        // The core STBPU property: a re-randomized ψ must give a different
        // mapping for (nearly) any branch — stored history becomes garbage.
        let r = RemapSet::standard();
        let mut moved = 0;
        let n = 256;
        for i in 0..n {
            let pc = 0x4000_0000u64 + i * 4096;
            if r.r1(0xaaaa_5555, pc) != r.r1(0xaaaa_5556, pc) {
                moved += 1;
            }
        }
        assert!(
            moved as f64 / n as f64 > 0.95,
            "only {moved}/{n} branches moved"
        );
    }

    #[test]
    fn full_48_bit_address_is_consumed() {
        // Unlike the baseline's 30-bit truncation, R1/R3 must distinguish
        // addresses differing only in bit 47 — defeating the same-address-
        // space collision primitive.
        let r = RemapSet::standard();
        let mut distinct = 0;
        let n = 64;
        for i in 0..n {
            let pc = 0x1234_5678u64 + i * 64;
            let hi = pc | (1 << 47);
            if r.r1(1, pc) != r.r1(1, hi) || r.r3(1, pc) != r.r3(1, hi) {
                distinct += 1;
            }
        }
        assert!(distinct as f64 / n as f64 > 0.9);
    }

    #[test]
    fn deterministic_regeneration() {
        let a = RemapSet::generate(777).unwrap();
        let b = RemapSet::generate(777).unwrap();
        for i in 0..64u64 {
            let pc = i * 0x9999 + 3;
            assert_eq!(a.r3(5, pc), b.r3(5, pc));
            assert_eq!(a.rt(5, pc, i as u16), b.rt(5, pc, i as u16));
        }
    }
}

//! The versioned `.stbp` phase-file container: a clustering result
//! (representative slices, weights, stream coordinates, optional
//! embedded warm checkpoints) that a later run can estimate from without
//! re-profiling.
//!
//! # File format (version 1)
//!
//! All multi-byte scalars are little-endian; `varint` is the same LEB128
//! encoding the `.stbt` trace and `.stck` checkpoint formats use
//! ([`stbpu_trace::binfmt`]).
//!
//! | field              | encoding                                   |
//! |--------------------|--------------------------------------------|
//! | magic              | 4 bytes `"STBP"`                           |
//! | version            | u16 LE (currently 1)                       |
//! | flags              | u16 LE (must be 0)                         |
//! | workload           | varint length + UTF-8 bytes                |
//! | seed               | varint (stream seed the profile was cut on)|
//! | total branches     | varint                                     |
//! | total instructions | varint                                     |
//! | total events       | varint                                     |
//! | slice size         | varint (branches per slice)                |
//! | cluster seed       | varint (k-means / projection seed)         |
//! | phase count        | varint                                     |
//! | per phase          | see below                                  |
//! | checksum           | u64 LE, FNV-1a 64 of all preceding bytes   |
//!
//! Each phase record is eight varints — representative slice index,
//! weight in branches, weight in instructions, weight in slices, start
//! branch, start event, representative branches, representative
//! instructions — followed by a varint-framed blob holding the raw bytes
//! of an embedded `.stck` warm checkpoint cut at the phase's start
//! branch. A zero-length blob means "no embedded checkpoint" (cold
//! start); a real checkpoint is never empty, so the encoding is
//! unambiguous.
//!
//! Decoding is total: any truncated, corrupt or alien input produces a
//! positioned [`PhaseError`], never a panic (this module is in the
//! `stbpu analyze` panic-freedom lint scope).

use stbpu_trace::binfmt::{decode_varint, push_varint};
use std::path::Path;

/// Magic bytes opening every phase file.
pub const STBP_MAGIC: [u8; 4] = *b"STBP";
/// Current format version.
pub const STBP_VERSION: u16 = 1;

/// A decode/validation failure with the byte offset where it was
/// detected (I/O failures report offset 0).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseError {
    /// Byte offset into the phase-file stream where the problem was
    /// detected.
    pub offset: usize,
    /// Human-readable description.
    pub msg: String,
}

impl PhaseError {
    /// An error at `offset`.
    pub fn new(offset: usize, msg: impl Into<String>) -> Self {
        PhaseError {
            offset,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for PhaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "phase file error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for PhaseError {}

/// One phase: a representative slice, the weight of the cluster it
/// stands for, and where it lives in the stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseEntry {
    /// 0-based index of the representative slice.
    pub rep_slice: u64,
    /// Branch events across every slice of this phase's cluster.
    pub weight_branches: u64,
    /// Instructions across every slice of this phase's cluster.
    pub weight_instructions: u64,
    /// Number of slices in this phase's cluster.
    pub weight_slices: u64,
    /// Branch events before the representative slice starts.
    pub start_branch: u64,
    /// Trace events (all kinds) before the representative slice starts —
    /// the cold-start `skip_events` count.
    pub start_event: u64,
    /// Branch events inside the representative slice.
    pub rep_branches: u64,
    /// Instructions inside the representative slice.
    pub rep_instructions: u64,
    /// Raw bytes of an embedded `.stck` checkpoint cut at
    /// [`PhaseEntry::start_branch`]; empty = no embedded checkpoint
    /// (cold start).
    pub checkpoint: Vec<u8>,
}

impl PhaseEntry {
    /// Whether a warm checkpoint is embedded.
    pub fn has_checkpoint(&self) -> bool {
        !self.checkpoint.is_empty()
    }
}

/// A complete phase file, decoded from (or ready to encode into) a
/// `.stbp` file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseFile {
    /// Workload label the profile was extracted from.
    pub workload: String,
    /// Stream seed the profile was cut on (generator workloads replay
    /// bit-identically from this).
    pub seed: u64,
    /// Total branch events in the profiled stream. Phase weights sum to
    /// exactly this.
    pub total_branches: u64,
    /// Total instructions in the profiled stream.
    pub total_instructions: u64,
    /// Total trace events of all kinds.
    pub total_events: u64,
    /// Slice size in branch events.
    pub slice_branches: u64,
    /// Seed the projection/k-means ran under.
    pub cluster_seed: u64,
    /// The phases, sorted by representative slice index.
    pub phases: Vec<PhaseEntry>,
}

/// Bounds-checked cursor over an encoded phase file.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn err(&self, msg: impl Into<String>) -> PhaseError {
        PhaseError::new(self.pos, msg)
    }

    fn rest(&self) -> &'a [u8] {
        self.buf.get(self.pos..).unwrap_or(&[])
    }

    fn varint(&mut self, what: &str) -> Result<u64, PhaseError> {
        match decode_varint(self.rest()) {
            Ok(Some((v, n))) => {
                self.pos += n;
                Ok(v)
            }
            Ok(None) => Err(self.err(format!("truncated varint reading {what}"))),
            Err(_) => Err(self.err(format!("varint overflow reading {what}"))),
        }
    }

    fn bytes(&mut self, what: &str) -> Result<&'a [u8], PhaseError> {
        let len = self.varint(what)?;
        let len = usize::try_from(len)
            .map_err(|_| self.err(format!("{what} length {len} exceeds address space")))?;
        let end = self
            .pos
            .checked_add(len)
            .ok_or_else(|| self.err(format!("{what} length overflows")))?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| self.err(format!("truncated {what}: {len} bytes declared")))?;
        self.pos = end;
        Ok(slice)
    }

    fn str(&mut self, what: &str) -> Result<&'a str, PhaseError> {
        let start = self.pos;
        let raw = self.bytes(what)?;
        std::str::from_utf8(raw)
            .map_err(|_| PhaseError::new(start, format!("{what} is not valid UTF-8")))
    }
}

impl PhaseFile {
    /// Encodes the phase file into the `.stbp` byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&STBP_MAGIC);
        out.extend_from_slice(&STBP_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // flags
        push_varint(&mut out, self.workload.len() as u64);
        out.extend_from_slice(self.workload.as_bytes());
        push_varint(&mut out, self.seed);
        push_varint(&mut out, self.total_branches);
        push_varint(&mut out, self.total_instructions);
        push_varint(&mut out, self.total_events);
        push_varint(&mut out, self.slice_branches);
        push_varint(&mut out, self.cluster_seed);
        push_varint(&mut out, self.phases.len() as u64);
        for p in &self.phases {
            push_varint(&mut out, p.rep_slice);
            push_varint(&mut out, p.weight_branches);
            push_varint(&mut out, p.weight_instructions);
            push_varint(&mut out, p.weight_slices);
            push_varint(&mut out, p.start_branch);
            push_varint(&mut out, p.start_event);
            push_varint(&mut out, p.rep_branches);
            push_varint(&mut out, p.rep_instructions);
            push_varint(&mut out, p.checkpoint.len() as u64);
            out.extend_from_slice(&p.checkpoint);
        }
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes a phase file, validating magic, version, flags, framing
    /// and the trailer checksum.
    ///
    /// # Errors
    ///
    /// A positioned [`PhaseError`] on any malformed input; decoding
    /// never panics.
    pub fn from_bytes(data: &[u8]) -> Result<PhaseFile, PhaseError> {
        const HEAD: usize = 8;
        const TAIL: usize = 8;
        if data.len() < HEAD + TAIL {
            return Err(PhaseError::new(
                data.len(),
                format!(
                    "file too short for a phase file: {} bytes (need at least {})",
                    data.len(),
                    HEAD + TAIL
                ),
            ));
        }
        let magic = data.get(0..4).unwrap_or(&[]);
        if magic != STBP_MAGIC {
            return Err(PhaseError::new(
                0,
                format!("bad magic {magic:02x?}, expected \"STBP\""),
            ));
        }
        let word = |at: usize| -> u16 {
            let lo = data.get(at).copied().unwrap_or(0);
            let hi = data.get(at + 1).copied().unwrap_or(0);
            u16::from_le_bytes([lo, hi])
        };
        let version = word(4);
        if version != STBP_VERSION {
            return Err(PhaseError::new(
                4,
                format!(
                    "unsupported phase-file version {version} (this build reads {STBP_VERSION})"
                ),
            ));
        }
        let flags = word(6);
        if flags != 0 {
            return Err(PhaseError::new(
                6,
                format!("unsupported flags {flags:#06x} (no flags are defined in version 1)"),
            ));
        }
        let body_end = data.len() - TAIL;
        let stored = {
            let mut raw = [0u8; 8];
            for (i, slot) in raw.iter_mut().enumerate() {
                *slot = data.get(body_end + i).copied().unwrap_or(0);
            }
            u64::from_le_bytes(raw)
        };
        let actual = fnv1a64(data.get(..body_end).unwrap_or(&[]));
        if stored != actual {
            return Err(PhaseError::new(
                body_end,
                format!("checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"),
            ));
        }
        let mut cur = Cur {
            buf: data.get(..body_end).unwrap_or(&[]),
            pos: HEAD,
        };
        let workload = cur.str("workload")?.to_string();
        let seed = cur.varint("seed")?;
        let total_branches = cur.varint("total branches")?;
        let total_instructions = cur.varint("total instructions")?;
        let total_events = cur.varint("total events")?;
        let slice_branches = cur.varint("slice size")?;
        let cluster_seed = cur.varint("cluster seed")?;
        let count = cur.varint("phase count")?;
        // Growth by push keeps a forged count from allocating anything
        // before the (bounded) body runs out.
        let mut phases = Vec::new();
        for i in 0..count {
            let what = |field: &str| format!("phase {i} {field}");
            let rep_slice = cur.varint(&what("representative slice"))?;
            let weight_branches = cur.varint(&what("weight (branches)"))?;
            let weight_instructions = cur.varint(&what("weight (instructions)"))?;
            let weight_slices = cur.varint(&what("weight (slices)"))?;
            let start_branch = cur.varint(&what("start branch"))?;
            let start_event = cur.varint(&what("start event"))?;
            let rep_branches = cur.varint(&what("representative branches"))?;
            let rep_instructions = cur.varint(&what("representative instructions"))?;
            let checkpoint = cur.bytes(&what("embedded checkpoint"))?.to_vec();
            phases.push(PhaseEntry {
                rep_slice,
                weight_branches,
                weight_instructions,
                weight_slices,
                start_branch,
                start_event,
                rep_branches,
                rep_instructions,
                checkpoint,
            });
        }
        if cur.pos != body_end {
            return Err(PhaseError::new(
                cur.pos,
                format!("{} trailing bytes after the last phase", body_end - cur.pos),
            ));
        }
        Ok(PhaseFile {
            workload,
            seed,
            total_branches,
            total_instructions,
            total_events,
            slice_branches,
            cluster_seed,
            phases,
        })
    }

    /// Writes the phase file to `path` atomically (temp file in the same
    /// directory, then rename), so a crash mid-write never leaves a
    /// half-written `.stbp` behind.
    ///
    /// # Errors
    ///
    /// I/O failures, reported with offset 0.
    pub fn save(&self, path: &Path) -> Result<(), PhaseError> {
        let tmp = path.with_extension("stbp.tmp");
        let io = |e: std::io::Error| PhaseError::new(0, format!("{}: {e}", path.display()));
        std::fs::write(&tmp, self.to_bytes()).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Reads and decodes a phase file from `path`.
    ///
    /// # Errors
    ///
    /// I/O failures (offset 0) and everything [`PhaseFile::from_bytes`]
    /// can return.
    pub fn load(path: &Path) -> Result<PhaseFile, PhaseError> {
        let data = std::fs::read(path)
            .map_err(|e| PhaseError::new(0, format!("{}: {e}", path.display())))?;
        PhaseFile::from_bytes(&data)
    }

    /// Branch events that estimation actually simulates (the sum of the
    /// representative slices).
    pub fn simulated_branches(&self) -> u64 {
        self.phases.iter().map(|p| p.rep_branches).sum()
    }

    /// Whether every phase carries an embedded warm checkpoint.
    pub fn fully_warm(&self) -> bool {
        self.phases.iter().all(PhaseEntry::has_checkpoint)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over `data` — the phase-file trailer checksum (the same
/// function `.stck` checkpoints use).
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PhaseFile {
        PhaseFile {
            workload: "541.leela".to_string(),
            seed: 42,
            total_branches: 1_000_000,
            total_instructions: 5_431_002,
            total_events: 1_020_408,
            slice_branches: 100_000,
            cluster_seed: 7,
            phases: vec![
                PhaseEntry {
                    rep_slice: 0,
                    weight_branches: 300_000,
                    weight_instructions: 1_630_000,
                    weight_slices: 3,
                    start_branch: 0,
                    start_event: 0,
                    rep_branches: 100_000,
                    rep_instructions: 542_113,
                    checkpoint: Vec::new(),
                },
                PhaseEntry {
                    rep_slice: 4,
                    weight_branches: 700_000,
                    weight_instructions: 3_801_002,
                    weight_slices: 7,
                    start_branch: 400_000,
                    start_event: 408_163,
                    rep_branches: 100_000,
                    rep_instructions: 544_201,
                    checkpoint: b"not-a-real-checkpoint-but-opaque-here".to_vec(),
                },
            ],
        }
    }

    #[test]
    fn roundtrips_bit_exactly() {
        let pf = sample();
        let bytes = pf.to_bytes();
        let back = PhaseFile::from_bytes(&bytes).unwrap();
        assert_eq!(back, pf);
        assert_eq!(back.to_bytes(), bytes, "re-encode is byte-identical");
        assert_eq!(back.simulated_branches(), 200_000);
        assert!(!back.fully_warm());
        assert!(back.phases[1].has_checkpoint());
    }

    #[test]
    fn every_truncation_is_a_positioned_error() {
        let bytes = sample().to_bytes();
        for n in 0..bytes.len() {
            let err = PhaseFile::from_bytes(&bytes[..n])
                .expect_err("truncated phase file must not decode");
            assert!(err.offset <= n, "offset {} past truncation {n}", err.offset);
        }
    }

    #[test]
    fn corruption_is_caught_by_the_checksum() {
        let mut bytes = sample().to_bytes();
        // Flip one bit in the middle of the body.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = PhaseFile::from_bytes(&bytes).unwrap_err();
        assert!(err.msg.contains("checksum mismatch"), "{}", err.msg);
    }

    #[test]
    fn alien_headers_are_rejected_up_front() {
        let pf = sample();
        let mut bad_magic = pf.to_bytes();
        bad_magic[0] = b'X';
        assert_eq!(PhaseFile::from_bytes(&bad_magic).unwrap_err().offset, 0);

        let mut v2 = pf.to_bytes();
        v2[4] = 2;
        let body_end = v2.len() - 8;
        let sum = fnv1a64(&v2[..body_end]);
        v2[body_end..].copy_from_slice(&sum.to_le_bytes());
        let err = PhaseFile::from_bytes(&v2).unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.msg.contains("version 2"), "{}", err.msg);

        let mut flagged = pf.to_bytes();
        flagged[6] = 1;
        let sum = fnv1a64(&flagged[..body_end]);
        flagged[body_end..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(PhaseFile::from_bytes(&flagged).unwrap_err().offset, 6);
    }

    #[test]
    fn forged_phase_count_fails_without_allocating() {
        // A body that declares u64::MAX phases but carries none must die
        // on the first missing field, positioned inside the real bytes.
        let mut pf = sample();
        pf.phases.clear();
        let mut bytes = pf.to_bytes();
        let body_end = bytes.len() - 8;
        // The phase count is the last varint before the checksum; a
        // zero-phase file ends ...count(0). Rewrite it to a huge count.
        bytes.truncate(body_end - 1);
        bytes.extend_from_slice(&[0xff; 10]);
        bytes.push(0x01);
        let sum = fnv1a64(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        let err = PhaseFile::from_bytes(&bytes).unwrap_err();
        assert!(
            err.msg.contains("phase 0") || err.msg.contains("overflow"),
            "{}",
            err.msg
        );
    }

    #[test]
    fn save_load_via_disk() {
        let dir = std::env::temp_dir().join("stbp-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.stbp");
        let pf = sample();
        pf.save(&path).unwrap();
        assert_eq!(PhaseFile::load(&path).unwrap(), pf);
        std::fs::remove_file(&path).unwrap();
    }
}

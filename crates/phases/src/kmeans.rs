//! Seeded, dependency-free k-means over randomly-projected BBV slices.
//!
//! The SimPoint recipe: project each slice's sparse basic-block vector
//! down to a small dense space (random signed projection, ~16 dims —
//! distances are approximately preserved, Achlioptas-style), normalize
//! by slice length so phases are about *shape* not *size*, run Lloyd's
//! k-means for every candidate `k`, and keep the `k` with the best
//! BIC-style score. One representative slice (the member closest to its
//! centroid) is then chosen per cluster, weighted by the branches of the
//! whole cluster.
//!
//! Everything is deterministic for a fixed [`ClusterConfig::seed`]:
//! the projection signs are a pure hash of `(pc, dim, seed)`, centroid
//! seeding uses the workspace's seeded [`rand::rngs::StdRng`]
//! (compat shim), points are visited in slice order, ties break toward
//! the lowest index, and no hash-ordered container is ever iterated —
//! this module sits in the `stbpu analyze` determinism and wall-clock
//! lint scopes.

use crate::file::PhaseEntry;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use stbpu_trace::bbv::{BbvProfile, SliceProfile};

/// How to cluster a BBV profile.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Largest `k` the BIC-style scan considers (clamped to the slice
    /// count).
    pub k_max: usize,
    /// Random-projection target dimensionality.
    pub dims: usize,
    /// Seed for projection signs and centroid initialization.
    pub seed: u64,
    /// Lloyd-iteration cap per candidate `k`.
    pub max_iters: usize,
    /// Force exactly this many clusters, skipping the BIC scan. A value
    /// of at least the slice count makes every slice its own phase —
    /// the degenerate clustering that reproduces full simulation
    /// exactly.
    pub forced_k: Option<usize>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            k_max: 8,
            dims: 16,
            seed: 42,
            max_iters: 64,
            forced_k: None,
        }
    }
}

/// The result of clustering a slice sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clustering {
    /// Number of clusters actually used.
    pub k: usize,
    /// Cluster id of each slice, in slice order.
    pub assignment: Vec<usize>,
    /// Representative slice index per cluster (the member closest to the
    /// cluster centroid; ties go to the lowest slice index).
    pub representatives: Vec<usize>,
}

/// SplitMix64 finalizer — the deterministic bit mixer behind the
/// projection signs.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The ±1 projection sign for basic block `pc` on dimension `dim`.
fn sign(pc: u64, dim: usize, seed: u64) -> f64 {
    let h = mix(pc ^ mix(seed ^ (dim as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)));
    if h & 1 == 0 {
        1.0
    } else {
        -1.0
    }
}

/// Projects each slice's sparse BBV into `dims` dense dimensions,
/// frequency-normalized by the slice's instruction count.
fn project(slices: &[SliceProfile], dims: usize, seed: u64) -> Vec<Vec<f64>> {
    slices
        .iter()
        .map(|s| {
            let mut v = vec![0.0f64; dims];
            let norm = if s.instructions == 0 {
                1.0
            } else {
                s.instructions as f64
            };
            for (&pc, &weight) in &s.vector {
                let w = weight as f64 / norm;
                for (d, slot) in v.iter_mut().enumerate() {
                    *slot += w * sign(pc, d, seed);
                }
            }
            v
        })
        .collect()
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// The cluster whose centroid is nearest to `p` (ties → lowest id).
fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = dist2(p, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// One full Lloyd run for a fixed `k`: seeded centroid choice (a shuffle
/// of the point indices), then assign/update until stable or the
/// iteration cap. Returns the assignment and the total within-cluster
/// squared distance (inertia).
fn lloyd(points: &[Vec<f64>], k: usize, seed: u64, max_iters: usize) -> (Vec<usize>, f64) {
    let n = points.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ (k as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    order.shuffle(&mut rng);
    let mut centroids: Vec<Vec<f64>> = order.iter().take(k).map(|&i| points[i].clone()).collect();

    let mut assignment = vec![0usize; n];
    let mut inertia = 0.0;
    for _ in 0..max_iters {
        inertia = 0.0;
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let (c, d) = nearest(p, &centroids);
            if assignment[i] != c {
                assignment[i] = c;
                changed = true;
            }
            inertia += d;
        }
        // Centroid update: the mean of each cluster's members; a cluster
        // that lost every member keeps its previous centroid (still
        // deterministic, and it can win points back next round).
        let dims = centroids.first().map(Vec::len).unwrap_or(0);
        let mut sums = vec![vec![0.0f64; dims]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            let c = assignment[i];
            counts[c] += 1;
            for (slot, x) in sums[c].iter_mut().zip(p) {
                *slot += x;
            }
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            if counts[c] > 0 {
                for (slot, sum) in centroid.iter_mut().zip(&sums[c]) {
                    *slot = sum / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }
    (assignment, inertia)
}

/// BIC-style model score for a clustering of `n` points in `dims`
/// dimensions with within-cluster variance `inertia`: a spherical
/// Gaussian log-likelihood minus the SimPoint parameter penalty. Higher
/// is better.
fn bic_score(n: usize, dims: usize, k: usize, inertia: f64) -> f64 {
    let nf = n as f64;
    let df = dims as f64;
    let sigma2 = (inertia / (nf * df)).max(1e-12);
    let log_likelihood = -0.5 * nf * df * sigma2.ln();
    let penalty = 0.5 * (k as f64) * (df + 1.0) * nf.ln();
    log_likelihood - penalty
}

/// The identity clustering: every slice is its own phase.
fn identity(n: usize) -> Clustering {
    Clustering {
        k: n,
        assignment: (0..n).collect(),
        representatives: (0..n).collect(),
    }
}

/// Clusters `slices` per `cfg`: random projection, a BIC-scored scan
/// over `k = 1..=k_max` (or the forced `k`), and one representative per
/// cluster. Bit-identical across runs for the same inputs and seed.
pub fn cluster_slices(slices: &[SliceProfile], cfg: &ClusterConfig) -> Clustering {
    let n = slices.len();
    if n == 0 {
        return Clustering {
            k: 0,
            assignment: Vec::new(),
            representatives: Vec::new(),
        };
    }
    if let Some(k) = cfg.forced_k {
        if k >= n {
            return identity(n);
        }
    }
    let dims = cfg.dims.max(1);
    let points = project(slices, dims, cfg.seed);

    let (k, assignment) = match cfg.forced_k {
        Some(k) => {
            let k = k.max(1);
            (k, lloyd(&points, k, cfg.seed, cfg.max_iters).0)
        }
        None => {
            let k_max = cfg.k_max.clamp(1, n);
            let mut best: Option<(f64, usize, Vec<usize>)> = None;
            for k in 1..=k_max {
                let (assignment, inertia) = lloyd(&points, k, cfg.seed, cfg.max_iters);
                let score = bic_score(n, dims, k, inertia);
                let better = match &best {
                    Some((s, _, _)) => score > *s,
                    None => true,
                };
                if better {
                    best = Some((score, k, assignment));
                }
            }
            match best {
                Some((_, k, assignment)) => (k, assignment),
                None => (1, vec![0; n]),
            }
        }
    };

    // Representatives: per cluster, the member nearest its centroid.
    // Clusters that ended empty are dropped (their id disappears), so
    // every phase has a representative and a nonzero weight.
    let mut sums = vec![vec![0.0f64; dims]; k];
    let mut counts = vec![0usize; k];
    for (i, p) in points.iter().enumerate() {
        let c = assignment[i];
        counts[c] += 1;
        for (slot, x) in sums[c].iter_mut().zip(p) {
            *slot += x;
        }
    }
    let mut remap = vec![usize::MAX; k];
    let mut representatives = Vec::new();
    let mut dense_assignment = vec![0usize; n];
    for c in 0..k {
        if counts[c] == 0 {
            continue;
        }
        let centroid: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
        let mut best_i = usize::MAX;
        let mut best_d = f64::INFINITY;
        for (i, p) in points.iter().enumerate() {
            if assignment[i] == c {
                let d = dist2(p, &centroid);
                if d < best_d {
                    best_d = d;
                    best_i = i;
                }
            }
        }
        remap[c] = representatives.len();
        representatives.push(best_i);
    }
    for (i, slot) in dense_assignment.iter_mut().enumerate() {
        *slot = remap[assignment[i]];
    }
    Clustering {
        k: representatives.len(),
        assignment: dense_assignment,
        representatives,
    }
}

/// Turns a clustering into per-phase records (no embedded checkpoints
/// yet), sorted by representative slice index so start coordinates are
/// strictly increasing. Phase weights partition the stream: summed
/// `weight_branches` equals the profile's total branch count
/// (test-enforced).
pub fn phase_entries(profile: &BbvProfile, clustering: &Clustering) -> Vec<PhaseEntry> {
    let mut entries: Vec<PhaseEntry> = clustering
        .representatives
        .iter()
        .enumerate()
        .map(|(c, &rep)| {
            let rep_slice = &profile.slices[rep];
            let mut weight_branches = 0u64;
            let mut weight_instructions = 0u64;
            let mut weight_slices = 0u64;
            for (i, s) in profile.slices.iter().enumerate() {
                if clustering.assignment[i] == c {
                    weight_branches += s.branches;
                    weight_instructions += s.instructions;
                    weight_slices += 1;
                }
            }
            PhaseEntry {
                rep_slice: rep as u64,
                weight_branches,
                weight_instructions,
                weight_slices,
                start_branch: rep_slice.start_branch,
                start_event: rep_slice.start_event,
                rep_branches: rep_slice.branches,
                rep_instructions: rep_slice.instructions,
                checkpoint: Vec::new(),
            }
        })
        .collect();
    entries.sort_by_key(|e| e.rep_slice);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_trace::bbv::extract_bbv;
    use stbpu_trace::{TraceGenerator, WorkloadProfile};

    fn profile(branches: usize, slice: u64) -> BbvProfile {
        let mut src =
            TraceGenerator::new(&WorkloadProfile::test_profile(), 11).into_source(branches);
        extract_bbv(&mut src, slice).unwrap()
    }

    #[test]
    fn clustering_is_bit_identical_across_runs() {
        let p = profile(4_000, 200);
        let cfg = ClusterConfig::default();
        let a = cluster_slices(&p.slices, &cfg);
        let b = cluster_slices(&p.slices, &cfg);
        assert_eq!(a, b);
        assert!(a.k >= 1 && a.k <= p.slices.len());
        // A different seed is allowed to differ; it must still be valid.
        let c = cluster_slices(&p.slices, &ClusterConfig { seed: 1234, ..cfg });
        assert_eq!(c.assignment.len(), p.slices.len());
    }

    #[test]
    fn weights_partition_the_stream() {
        let p = profile(5_000, 300);
        let clustering = cluster_slices(&p.slices, &ClusterConfig::default());
        let entries = phase_entries(&p, &clustering);
        assert_eq!(entries.len(), clustering.k);
        let b: u64 = entries.iter().map(|e| e.weight_branches).sum();
        let i: u64 = entries.iter().map(|e| e.weight_instructions).sum();
        let s: u64 = entries.iter().map(|e| e.weight_slices).sum();
        assert_eq!(b, p.total_branches);
        assert_eq!(i, p.total_instructions);
        assert_eq!(s, p.slices.len() as u64);
        // Entries are sorted with strictly increasing coordinates.
        for w in entries.windows(2) {
            assert!(w[0].rep_slice < w[1].rep_slice);
            assert!(w[0].start_branch < w[1].start_branch);
        }
    }

    #[test]
    fn forced_k_at_slice_count_is_the_identity() {
        let p = profile(2_000, 250);
        let n = p.slices.len();
        let clustering = cluster_slices(
            &p.slices,
            &ClusterConfig {
                forced_k: Some(n),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(clustering.k, n);
        assert_eq!(clustering.assignment, (0..n).collect::<Vec<_>>());
        assert_eq!(clustering.representatives, (0..n).collect::<Vec<_>>());
        let entries = phase_entries(&p, &clustering);
        for (e, s) in entries.iter().zip(&p.slices) {
            assert_eq!(e.weight_branches, s.branches);
            assert_eq!(e.rep_branches, s.branches);
        }
    }

    #[test]
    fn identical_slices_collapse_to_one_phase() {
        // Duplicate one slice profile many times: the BIC scan must pick
        // k = 1 (zero inertia at every k, so the penalty decides).
        let p = profile(600, 200);
        let one = p.slices[0].clone();
        let slices: Vec<_> = (0..6)
            .map(|i| {
                let mut s = one.clone();
                s.index = i as u64;
                s.start_branch = i as u64 * 200;
                s
            })
            .collect();
        let clustering = cluster_slices(&slices, &ClusterConfig::default());
        assert_eq!(clustering.k, 1);
        assert_eq!(clustering.representatives.len(), 1);
    }

    #[test]
    fn empty_input_yields_empty_clustering() {
        let clustering = cluster_slices(&[], &ClusterConfig::default());
        assert_eq!(clustering.k, 0);
        assert!(clustering.assignment.is_empty());
    }
}

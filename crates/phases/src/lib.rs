//! SimPoint-style phase clustering for the STBPU reproduction.
//!
//! Whole-trace simulation of SPEC-scale workloads is what keeps the full
//! paper figures out of per-PR CI. This crate implements the standard
//! remedy (Sherwood et al.'s SimPoint): split the stream into fixed-size
//! slices, fingerprint each slice with a basic-block vector
//! ([`stbpu_trace::bbv`]), cluster the fingerprints with k-means, and
//! simulate only one *representative* slice per cluster — whole-trace
//! metrics are then reconstructed as the branch-weighted sum of the
//! representatives' deltas.
//!
//! Two modules:
//!
//! * [`kmeans`] — a dependency-free, seeded k-means over
//!   randomly-projected BBVs (~16 dims), with a BIC-style score choosing
//!   `k`. Fully deterministic for a fixed seed: the only randomness is
//!   the `rand` (compat) [`rand::rngs::StdRng`] used for centroid
//!   seeding, and every data structure iterates in a fixed order.
//! * [`mod@file`] — the versioned binary `.stbp` phase-file format
//!   (magic + version + slice size + per-phase records with an optional
//!   embedded `.stck` warm checkpoint), following the workspace
//!   binfmt/checkpoint conventions: total decode, positioned errors,
//!   FNV-1a 64 trailer.
//!
//! The engine's `Workload::Phases` support and the `stbpu trace
//! simpoint` / `stbpu bench --suite simpoint` commands are built on this
//! crate; see the README "Phase clustering" section for the byte-level
//! spec and the measured speedup/error table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod file;
pub mod kmeans;

pub use file::{fnv1a64, PhaseEntry, PhaseError, PhaseFile, STBP_MAGIC, STBP_VERSION};
pub use kmeans::{cluster_slices, phase_entries, ClusterConfig, Clustering};

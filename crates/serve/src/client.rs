//! Client library for the serve protocol: one socket, many multiplexed
//! sessions, plus a [`ChunkEncoder`] that turns events into wire chunks.
//!
//! A background reader thread splits server frames and routes them to
//! the owning [`SessionHandle`] by session id, so handles can be driven
//! from different threads over the same connection. Backpressure is
//! honored transparently: [`SessionHandle::send_chunk`] blocks after the
//! server's `Backpressure` frame until the matching `Resume`.

use crate::protocol::{ClientMsg, ErrorCode, FrameReader, Hello, ServerMsg, WireReport};
use stbpu_sim::IntervalWindow;
use stbpu_trace::binfmt::BinTraceWriter;
use stbpu_trace::TraceEvent;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a handle waits for an expected server frame before giving
/// up — generous enough for a loaded CI runner, finite so a wedged peer
/// cannot hang a test forever.
const REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// A client-side failure.
#[derive(Debug)]
pub enum ServeError {
    /// The transport failed (or timed out waiting for a reply).
    Io(io::Error),
    /// The server sent something the protocol does not allow here.
    Protocol(String),
    /// The server answered with an [`ServerMsg::Error`] frame.
    Remote {
        /// The server's error code.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve transport error: {e}"),
            ServeError::Protocol(m) => write!(f, "serve protocol error: {m}"),
            ServeError::Remote { code, message } => {
                write!(f, "server error ({code}): {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// State shared between the client, its handles, and the reader thread.
/// `routes` is a `BTreeMap` because the reader broadcasts session-0
/// errors by iterating it — delivery order must be deterministic (the
/// determinism lint enforces this).
struct Inner {
    writer: Mutex<TcpStream>,
    routes: Mutex<BTreeMap<u64, Sender<ServerMsg>>>,
}

impl Inner {
    fn send(&self, msg: &ClientMsg) -> Result<(), ServeError> {
        let mut wire = Vec::new();
        msg.encode(&mut wire);
        self.writer
            .lock()
            .map_err(|_| ServeError::Protocol("writer lock poisoned".to_string()))?
            .write_all(&wire)?;
        Ok(())
    }
}

/// A connection to a serve daemon. Sessions opened from it share the
/// socket; dropping the client shuts the socket down and joins the
/// reader thread.
pub struct ServeClient {
    inner: Arc<Inner>,
    stream: TcpStream,
    reader: Option<JoinHandle<()>>,
}

impl ServeClient {
    /// Connects to `addr` and starts the demultiplexing reader thread.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<ServeClient, ServeError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        let read_half = stream.try_clone()?;
        let inner = Arc::new(Inner {
            writer: Mutex::new(writer),
            routes: Mutex::new(BTreeMap::new()),
        });
        let routes = Arc::clone(&inner);
        let reader = std::thread::spawn(move || reader_loop(read_half, &routes));
        Ok(ServeClient {
            inner,
            stream,
            reader: Some(reader),
        })
    }

    /// Opens a session and waits for the server's `HelloAck`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] if this client already has a live
    /// session with the same id (refused locally, before anything is
    /// sent, so the existing session's frame route is untouched),
    /// [`ServeError::Remote`] if the server refuses (bad model, quota,
    /// duplicate id from another client object on the same socket, …),
    /// [`ServeError::Io`] on transport failure.
    pub fn open(&self, hello: Hello) -> Result<SessionHandle, ServeError> {
        let id = hello.session;
        let (tx, rx) = channel();
        match self
            .inner
            .routes
            .lock()
            .map_err(|_| ServeError::Protocol("route lock poisoned".to_string()))?
            .entry(id)
        {
            Entry::Occupied(_) => {
                return Err(ServeError::Protocol(format!(
                    "session {id} is already open on this client"
                )))
            }
            Entry::Vacant(v) => {
                v.insert(tx);
            }
        }
        let mut handle = SessionHandle {
            inner: Arc::clone(&self.inner),
            session: id,
            rx,
            paused: false,
            open: true,
        };
        if let Err(e) = self.inner.send(&ClientMsg::Hello(hello)) {
            handle.open = false;
            return Err(e);
        }
        match handle.recv()? {
            ServerMsg::HelloAck { .. } => Ok(handle),
            ServerMsg::Error { code, message, .. } => {
                handle.open = false;
                Err(ServeError::Remote { code, message })
            }
            other => {
                handle.open = false;
                Err(ServeError::Protocol(format!(
                    "expected HelloAck, got {other:?}"
                )))
            }
        }
    }
}

impl Drop for ServeClient {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(t) = self.reader.take() {
            let _ = t.join();
        }
    }
}

/// Routes every inbound server frame to the session that owns it.
/// Connection-level errors (session 0) are broadcast to every live
/// route; EOF or a framing error drops all routes, which surfaces as a
/// disconnect on every waiting handle.
fn reader_loop(mut stream: TcpStream, inner: &Arc<Inner>) {
    let mut frames = FrameReader::new();
    let mut buf = vec![0u8; 64 << 10];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        frames.extend(&buf[..n]);
        loop {
            let body = match frames.next_frame() {
                Ok(Some(b)) => b,
                Ok(None) => break,
                Err(_) => {
                    // Unframeable server bytes: tear everything down.
                    if let Ok(mut routes) = inner.routes.lock() {
                        routes.clear();
                    }
                    return;
                }
            };
            let Ok(msg) = ServerMsg::decode(&body) else {
                continue; // forward-compat: skip unknown-but-framed messages
            };
            let Ok(routes) = inner.routes.lock() else {
                return;
            };
            match msg.session_id() {
                0 => {
                    // Connection-level: every session sees it.
                    for tx in routes.values() {
                        let _ = tx.send(msg.clone());
                    }
                }
                id => {
                    if let Some(tx) = routes.get(&id) {
                        let _ = tx.send(msg);
                    }
                }
            }
        }
    }
    if let Ok(mut routes) = inner.routes.lock() {
        routes.clear();
    }
}

impl ServerMsg {
    /// The session a server message addresses (0 = connection-level).
    fn session_id(&self) -> u64 {
        match self {
            ServerMsg::HelloAck { session }
            | ServerMsg::Interval { session, .. }
            | ServerMsg::Report { session, .. }
            | ServerMsg::Error { session, .. }
            | ServerMsg::Backpressure { session, .. }
            | ServerMsg::Resume { session } => *session,
        }
    }
}

/// One open session. Stream chunks with [`SessionHandle::send_chunk`],
/// then either [`SessionHandle::finish`] for the final report or
/// [`SessionHandle::close`] to abandon it.
pub struct SessionHandle {
    inner: Arc<Inner>,
    session: u64,
    rx: Receiver<ServerMsg>,
    paused: bool,
    open: bool,
}

impl fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionHandle")
            .field("session", &self.session)
            .field("paused", &self.paused)
            .field("open", &self.open)
            .finish_non_exhaustive()
    }
}

impl SessionHandle {
    /// The session id this handle drives.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Blocks for the next server frame addressed to this session.
    fn recv(&self) -> Result<ServerMsg, ServeError> {
        match self.rx.recv_timeout(REPLY_TIMEOUT) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(ServeError::Io(io::Error::new(
                io::ErrorKind::TimedOut,
                "no server reply within 30s",
            ))),
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::Io(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "server connection closed",
            ))),
        }
    }

    /// Folds one async server frame into handle state, collecting
    /// interval windows. Returns an error for `Error` frames and for
    /// frames that make no sense mid-stream.
    fn absorb(
        &mut self,
        msg: ServerMsg,
        intervals: &mut Vec<IntervalWindow>,
    ) -> Result<(), ServeError> {
        match msg {
            ServerMsg::Interval { window, .. } => {
                intervals.push(window);
                Ok(())
            }
            ServerMsg::Backpressure { .. } => {
                self.paused = true;
                Ok(())
            }
            ServerMsg::Resume { .. } => {
                self.paused = false;
                Ok(())
            }
            ServerMsg::Error { code, message, .. } => {
                self.open = false;
                Err(ServeError::Remote { code, message })
            }
            other => Err(ServeError::Protocol(format!(
                "unexpected mid-stream frame {other:?}"
            ))),
        }
    }

    /// Sends raw `.stbt` record bytes, first draining any pending server
    /// frames (streamed intervals, backpressure). Blocks while the
    /// server has this connection paused. Returns the interval windows
    /// that arrived along the way.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] if the server tore the session down,
    /// transport errors otherwise.
    pub fn send_chunk(&mut self, bytes: &[u8]) -> Result<Vec<IntervalWindow>, ServeError> {
        let mut intervals = Vec::new();
        loop {
            match self.rx.try_recv() {
                Ok(m) => self.absorb(m, &mut intervals)?,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    return Err(ServeError::Io(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "server connection closed",
                    )))
                }
            }
        }
        while self.paused {
            let m = self.recv()?;
            self.absorb(m, &mut intervals)?;
        }
        self.inner.send(&ClientMsg::TraceChunk {
            session: self.session,
            bytes: bytes.to_vec(),
        })?;
        Ok(intervals)
    }

    /// Flushes the stream and waits for the final report, returning it
    /// with every interval window received after the last `send_chunk`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] if the tail of the stream failed to decode
    /// or simulate, transport errors otherwise.
    pub fn finish(mut self) -> Result<(WireReport, Vec<IntervalWindow>), ServeError> {
        self.inner.send(&ClientMsg::Flush {
            session: self.session,
        })?;
        let mut intervals = Vec::new();
        loop {
            match self.recv()? {
                ServerMsg::Report { report, .. } => {
                    self.open = false;
                    return Ok((report, intervals));
                }
                other => self.absorb(other, &mut intervals)?,
            }
        }
    }

    /// Abandons the session; the server aborts it without a report.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn close(mut self) -> Result<(), ServeError> {
        self.inner.send(&ClientMsg::Close {
            session: self.session,
        })?;
        self.open = false;
        Ok(())
    }
}

impl Drop for SessionHandle {
    fn drop(&mut self) {
        if let Ok(mut routes) = self.inner.routes.lock() {
            routes.remove(&self.session);
        }
        if self.open {
            // Dropped mid-stream: tell the server rather than waiting
            // for its idle sweep. Best-effort.
            let _ = self.inner.send(&ClientMsg::Close {
                session: self.session,
            });
        }
    }
}

/// Batches [`TraceEvent`]s into wire-ready `.stbt` record chunks. One
/// encoder per session: per-thread PC delta state spans chunk
/// boundaries, exactly like a file writer whose sink is drained
/// mid-stream, so the server's [`stbpu_trace::binfmt::RecordDecoder`]
/// reassembles the identical record stream.
pub struct ChunkEncoder {
    w: BinTraceWriter<Vec<u8>>,
    target: usize,
}

impl ChunkEncoder {
    /// Chunks are emitted once they reach `target` bytes (the frame
    /// layer caps a chunk at a bit under [`crate::protocol::MAX_FRAME`]).
    pub fn new(target: usize) -> Self {
        ChunkEncoder {
            w: BinTraceWriter::new(Vec::new()),
            target: target.clamp(64, crate::protocol::MAX_FRAME - 64),
        }
    }

    /// Encodes one event; returns a full chunk when the target size is
    /// reached.
    ///
    /// # Errors
    ///
    /// Never fails in practice (the sink is a `Vec`); the signature
    /// matches the underlying writer.
    pub fn push(&mut self, ev: &TraceEvent) -> io::Result<Option<Vec<u8>>> {
        self.w.event(ev)?;
        if self.w.get_mut().len() >= self.target {
            Ok(Some(std::mem::take(self.w.get_mut())))
        } else {
            Ok(None)
        }
    }

    /// Takes whatever is buffered (possibly empty) as a final chunk.
    pub fn flush(&mut self) -> Vec<u8> {
        std::mem::take(self.w.get_mut())
    }
}

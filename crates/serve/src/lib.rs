//! TCP simulation service: stream `.stbt` record bytes at a daemon that
//! multiplexes live [`stbpu_sim::OwnedSession`]s and streams results back.
//!
//! The crate has four layers:
//!
//! * [`protocol`] — the length-prefixed binary wire format (varint
//!   framing shared with `.stbt`), message catalogue, and an
//!   incremental [`protocol::FrameReader`] that never over-reads.
//! * [`server`] — the daemon: a session manager owning N worker threads
//!   over a registry of live sessions keyed by (connection, session id),
//!   feeding decoded chunks through the batched fast path with
//!   per-client quotas, backpressure frames and idle timeouts.
//! * [`client`] — the client library: a [`client::ServeClient`]
//!   multiplexing sessions over one socket, plus a
//!   [`client::ChunkEncoder`] that turns [`stbpu_trace::TraceEvent`]s
//!   into wire chunks.
//! * [`mod@bench`] — the `serve` benchmark suite behind
//!   `stbpu bench --suite serve`: spawns the daemon, drives concurrent
//!   clients over real sockets, and gates every streamed report
//!   bit-identical against an offline run.
//!
//! The load-bearing invariant, end to end: a session streamed through a
//! socket produces a final report **bit-identical** (`f64::to_bits`) to
//! `stbpu simulate` on the same trace, model and seed. CI smokes exactly
//! this on loopback.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod client;
pub mod protocol;
pub mod server;

pub use bench::{check_parity, run_bench, BenchConfig, BenchResult};
pub use client::{ChunkEncoder, ServeClient, ServeError, SessionHandle};
pub use protocol::{ClientMsg, ErrorCode, FrameReader, Hello, ServerMsg, WireError, WireReport};
pub use server::{ServerConfig, ServerHandle};

//! The serve wire protocol: length-prefixed binary frames over TCP.
//!
//! Built from the same primitives as the `.stbt` format (LEB128 varints,
//! see [`stbpu_trace::binfmt`]), so a client that can write traces
//! already has every encoder it needs. One frame is:
//!
//! ```text
//! varint  length      total size of tag + payload (1 ..= MAX_FRAME)
//! u8      tag         message type
//! …       payload     tag-specific, exactly length - 1 bytes
//! ```
//!
//! Integers are varints unless stated otherwise; strings are a varint
//! byte length followed by that many bytes of UTF-8; floats are the IEEE
//! bit pattern as 8 little-endian bytes (so reports survive the wire
//! bit-identically — the regression property the whole suite gates on).
//! See the README "Serving" section for the byte-by-byte message
//! catalogue, and CONTRIBUTING.md for the version-bump policy.
//!
//! Client→server tags are `0x01..=0x04`, server→client tags have the
//! high bit set (`0x81..=0x86`); a peer receiving a tag from the wrong
//! direction rejects it.

use stbpu_sim::{IntervalWindow, SimReport};
use stbpu_trace::binfmt::{decode_varint, push_varint};
use std::fmt;

/// Protocol version carried in every [`Hello`]. Bump on any frame-layout
/// change, mirroring the `.stbt` version policy (see CONTRIBUTING.md).
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on one frame's declared length (tag + payload). Anything
/// larger is rejected *before* buffering, so a malicious length cannot
/// make the receiver allocate.
pub const MAX_FRAME: usize = 1 << 20;

/// Upper bound on any string field (model spec, workload label, error
/// message).
const MAX_STRING: usize = 4 << 10;

// Client → server tags.
const T_HELLO: u8 = 0x01;
const T_CHUNK: u8 = 0x02;
const T_FLUSH: u8 = 0x03;
const T_CLOSE: u8 = 0x04;
// Server → client tags.
const T_HELLO_ACK: u8 = 0x81;
const T_INTERVAL: u8 = 0x82;
const T_REPORT: u8 = 0x83;
const T_ERROR: u8 = 0x84;
const T_BACKPRESSURE: u8 = 0x85;
const T_RESUME: u8 = 0x86;

/// A malformed frame stream, positioned at the absolute byte offset
/// (counted from the first byte this [`FrameReader`] saw) where the
/// damage starts — the wire counterpart of
/// [`stbpu_trace::binfmt::BinTraceError`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    offset: u64,
    msg: String,
}

impl WireError {
    /// Absolute stream offset the failing frame starts at.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// The reason, without the position prefix.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wire protocol error at byte {}: {}",
            self.offset, self.msg
        )
    }
}

impl std::error::Error for WireError {}

/// Incremental frame splitter: feed it raw socket bytes in any chunking,
/// pull complete frames (tag + payload, length prefix stripped) out.
/// Never over-reads — an oversized or zero declared length errors as soon
/// as the length varint is complete, before any payload is awaited.
///
/// ```
/// use stbpu_serve::protocol::FrameReader;
///
/// let mut r = FrameReader::new();
/// r.extend(&[2, 0x03]); // length 2, then the first body byte...
/// assert_eq!(r.next_frame().unwrap(), None); // ...still one byte short
/// r.extend(&[7]);
/// assert_eq!(r.next_frame().unwrap(), Some(vec![0x03, 7]));
/// ```
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    pos: usize,
    /// Absolute stream offset of `buf[0]`.
    base: u64,
}

impl FrameReader {
    /// An empty reader at stream offset 0.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends raw bytes from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Extracts the next complete frame body (tag + payload), or
    /// `Ok(None)` when more transport bytes are needed.
    ///
    /// # Errors
    ///
    /// [`WireError`] on a zero, oversized, or overflowing declared
    /// length. The reader has no way to resynchronize afterwards, so the
    /// connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let at = self.base + self.pos as u64;
        let avail = &self.buf[self.pos..];
        let (len, n) = match decode_varint(avail) {
            Ok(Some(v)) => v,
            Ok(None) => {
                self.compact();
                return Ok(None);
            }
            Err(e) => {
                return Err(WireError {
                    offset: at,
                    msg: format!("frame length: {e}"),
                })
            }
        };
        if len == 0 {
            return Err(WireError {
                offset: at,
                msg: "frame length 0 (a frame is at least its tag byte)".to_string(),
            });
        }
        if len > MAX_FRAME as u64 {
            return Err(WireError {
                offset: at,
                msg: format!("declared frame length {len} exceeds the {MAX_FRAME}-byte cap"),
            });
        }
        let len = len as usize;
        if avail.len() < n + len {
            self.compact();
            return Ok(None);
        }
        let body = avail[n..n + len].to_vec();
        self.pos += n + len;
        self.compact();
        Ok(Some(body))
    }

    /// Drops consumed bytes once they dominate the buffer.
    fn compact(&mut self) {
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.base += self.pos as u64;
            self.pos = 0;
        }
    }
}

/// Appends a frame (varint length + body) to `out`.
fn push_frame(out: &mut Vec<u8>, body: &[u8]) {
    debug_assert!(!body.is_empty() && body.len() <= MAX_FRAME);
    push_varint(out, body.len() as u64);
    out.extend_from_slice(body);
}

/// Appends a length-prefixed string.
fn push_string(out: &mut Vec<u8>, s: &str) {
    push_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Decode cursor over one frame body — every read is bounds-checked, so
/// arbitrary payload bytes produce an `Err(String)`, never a panic.
struct Cur<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cur { data, pos: 0 }
    }

    fn varint(&mut self, what: &str) -> Result<u64, String> {
        match decode_varint(&self.data[self.pos..]) {
            Ok(Some((v, n))) => {
                self.pos += n;
                Ok(v)
            }
            Ok(None) => Err(format!("truncated {what} varint")),
            Err(e) => Err(format!("{what}: {e}")),
        }
    }

    fn string(&mut self, what: &str) -> Result<String, String> {
        let len = self.varint(what)? as usize;
        if len > MAX_STRING {
            return Err(format!(
                "{what} length {len} exceeds the {MAX_STRING}-byte cap"
            ));
        }
        let end = self.pos + len;
        if end > self.data.len() {
            return Err(format!("truncated {what} (declares {len} bytes)"));
        }
        let s = std::str::from_utf8(&self.data[self.pos..end])
            .map_err(|_| format!("{what} is not UTF-8"))?
            .to_string();
        self.pos = end;
        Ok(s)
    }

    fn f64(&mut self, what: &str) -> Result<f64, String> {
        let end = self.pos + 8;
        if end > self.data.len() {
            return Err(format!("truncated {what} (needs 8 bytes)"));
        }
        let bits = match self.data[self.pos..end].try_into() {
            Ok(bytes) => u64::from_le_bytes(bytes),
            Err(_) => return Err(format!("truncated {what} (needs 8 bytes)")),
        };
        self.pos = end;
        Ok(f64::from_bits(bits))
    }

    fn rest(self) -> &'a [u8] {
        &self.data[self.pos..]
    }

    fn done(self, tag: &str) -> Result<(), String> {
        if self.pos != self.data.len() {
            return Err(format!(
                "{} trailing bytes after {tag} payload",
                self.data.len() - self.pos
            ));
        }
        Ok(())
    }
}

/// Why the server rejected a frame or tore a session down, carried in
/// every [`ServerMsg::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The byte stream is not valid frames; the connection closes.
    BadFrame = 1,
    /// The `Hello` was malformed (bad version, unknown model or
    /// protection, session id 0).
    BadHello = 2,
    /// A `Hello` reused a live session id on the same connection.
    DuplicateSession = 3,
    /// A chunk/flush/close named a session this connection never opened
    /// (or one already torn down).
    UnknownSession = 4,
    /// The per-connection live-session quota is exhausted.
    QuotaSessions = 5,
    /// A single chunk exceeded the whole per-connection buffered-bytes
    /// quota; the offending session is torn down. (Gradual pressure is
    /// handled by `Backpressure` frames plus the server stalling its
    /// socket reads, never by a kill.)
    QuotaBuffered = 6,
    /// The session's `.stbt` record bytes failed to decode.
    TraceDecode = 7,
    /// The simulation rejected an event (bad thread id, …).
    Sim = 8,
    /// The session sat idle past the server's timeout.
    IdleTimeout = 9,
}

impl ErrorCode {
    fn from_u64(v: u64) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::BadHello,
            3 => ErrorCode::DuplicateSession,
            4 => ErrorCode::UnknownSession,
            5 => ErrorCode::QuotaSessions,
            6 => ErrorCode::QuotaBuffered,
            7 => ErrorCode::TraceDecode,
            8 => ErrorCode::Sim,
            9 => ErrorCode::IdleTimeout,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Session parameters a client declares when opening a session — the
/// payload of the `Hello` frame. Session ids are client-chosen, scoped to
/// the connection, and must be nonzero (0 is reserved for
/// connection-level [`ServerMsg::Error`] frames).
#[derive(Clone, Debug, PartialEq)]
pub struct Hello {
    /// Client-chosen nonzero session id, unique per connection.
    pub session: u64,
    /// Model RNG seed.
    pub seed: u64,
    /// Registry model spec (`st_skl@r=0.05`, `baseline`, …).
    pub model: String,
    /// Protection policy name, or `"auto"` to infer from the model spec
    /// exactly like `stbpu simulate`.
    pub protection: String,
    /// Workload label for the final report.
    pub workload: String,
    /// Warm-up branch count (streams have no branch hint to resolve a
    /// fraction against, so warm-up is always an absolute count here).
    pub warmup_branches: u64,
    /// Interval window size in branches; 0 disables interval streaming.
    pub interval: u64,
    /// Hardware threads to provision; 0 means the model maximum.
    pub threads: u64,
}

/// A final report as it crosses the wire — [`stbpu_sim::SimReport`] with
/// the policy label as an owned string. Floats travel as raw IEEE bits,
/// so equality with an offline run is exact, not approximate.
#[derive(Clone, Debug, PartialEq)]
pub struct WireReport {
    /// Model name.
    pub model: String,
    /// Protection policy label.
    pub protection: String,
    /// Workload label.
    pub workload: String,
    /// Overall accuracy effective.
    pub oae: f64,
    /// Direction prediction accuracy.
    pub direction_rate: f64,
    /// Target prediction accuracy.
    pub target_rate: f64,
    /// Counted branches (post warm-up).
    pub branches: u64,
    /// Mispredictions.
    pub mispredictions: u64,
    /// BTB evictions.
    pub evictions: u64,
    /// Flushes.
    pub flushes: u64,
    /// ST re-randomizations.
    pub rerandomizations: u64,
}

impl From<&SimReport> for WireReport {
    fn from(r: &SimReport) -> Self {
        WireReport {
            model: r.model.clone(),
            protection: r.protection.to_string(),
            workload: r.workload.clone(),
            oae: r.oae,
            direction_rate: r.direction_rate,
            target_rate: r.target_rate,
            branches: r.branches,
            mispredictions: r.mispredictions,
            evictions: r.evictions,
            flushes: r.flushes,
            rerandomizations: r.rerandomizations,
        }
    }
}

/// A client→server message.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientMsg {
    /// Open a session.
    Hello(Hello),
    /// Raw `.stbt` record bytes for a live session (headerless; chunk
    /// boundaries may fall anywhere, including inside a record).
    TraceChunk {
        /// The session the bytes belong to.
        session: u64,
        /// The raw record bytes.
        bytes: Vec<u8>,
    },
    /// End of stream: finish the session and send the final report.
    Flush {
        /// The session to finish.
        session: u64,
    },
    /// Abandon the session without a report (server aborts it).
    Close {
        /// The session to abandon.
        session: u64,
    },
}

impl ClientMsg {
    /// Appends this message as a complete frame (length prefix included).
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mut body = Vec::new();
        match self {
            ClientMsg::Hello(h) => {
                body.push(T_HELLO);
                push_varint(&mut body, PROTOCOL_VERSION);
                push_varint(&mut body, h.session);
                push_varint(&mut body, h.seed);
                push_string(&mut body, &h.model);
                push_string(&mut body, &h.protection);
                push_string(&mut body, &h.workload);
                push_varint(&mut body, h.warmup_branches);
                push_varint(&mut body, h.interval);
                push_varint(&mut body, h.threads);
            }
            ClientMsg::TraceChunk { session, bytes } => {
                body.push(T_CHUNK);
                push_varint(&mut body, *session);
                body.extend_from_slice(bytes);
            }
            ClientMsg::Flush { session } => {
                body.push(T_FLUSH);
                push_varint(&mut body, *session);
            }
            ClientMsg::Close { session } => {
                body.push(T_CLOSE);
                push_varint(&mut body, *session);
            }
        }
        push_frame(out, &body);
    }

    /// Decodes a frame body (as returned by [`FrameReader::next_frame`]).
    ///
    /// # Errors
    ///
    /// A description of the malformation; arbitrary bytes never panic.
    /// The reported protocol version rides along in `Hello` errors so the
    /// server can answer version mismatches precisely.
    pub fn decode(body: &[u8]) -> Result<ClientMsg, String> {
        let (&tag, payload) = body.split_first().ok_or("empty frame body")?;
        let mut c = Cur::new(payload);
        match tag {
            T_HELLO => {
                let version = c.varint("protocol version")?;
                if version != PROTOCOL_VERSION {
                    return Err(format!(
                        "protocol version {version} not supported (this build speaks \
                         version {PROTOCOL_VERSION})"
                    ));
                }
                let session = c.varint("session id")?;
                let seed = c.varint("seed")?;
                let model = c.string("model spec")?;
                let protection = c.string("protection name")?;
                let workload = c.string("workload label")?;
                let warmup_branches = c.varint("warmup branch count")?;
                let interval = c.varint("interval")?;
                let threads = c.varint("thread count")?;
                c.done("Hello")?;
                Ok(ClientMsg::Hello(Hello {
                    session,
                    seed,
                    model,
                    protection,
                    workload,
                    warmup_branches,
                    interval,
                    threads,
                }))
            }
            T_CHUNK => {
                let session = c.varint("session id")?;
                Ok(ClientMsg::TraceChunk {
                    session,
                    bytes: c.rest().to_vec(),
                })
            }
            T_FLUSH => {
                let session = c.varint("session id")?;
                c.done("Flush")?;
                Ok(ClientMsg::Flush { session })
            }
            T_CLOSE => {
                let session = c.varint("session id")?;
                c.done("Close")?;
                Ok(ClientMsg::Close { session })
            }
            other => Err(format!("unknown client frame tag {other:#04x}")),
        }
    }
}

/// A server→client message.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerMsg {
    /// The session from a `Hello` is open and may receive chunks.
    HelloAck {
        /// The session being acknowledged.
        session: u64,
    },
    /// One closed interval window (streamed as the simulation crosses
    /// each interval boundary).
    Interval {
        /// The session the window belongs to.
        session: u64,
        /// The window statistics.
        window: IntervalWindow,
    },
    /// The final report answering a `Flush`; the session is gone
    /// afterwards.
    Report {
        /// The session being finished.
        session: u64,
        /// The aggregated report.
        report: WireReport,
    },
    /// A rejected frame or torn-down session. `session` 0 means the
    /// error is connection-level (the connection closes after it).
    Error {
        /// The affected session, or 0 for connection-level errors.
        session: u64,
        /// Why.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The connection's buffered bytes crossed the high watermark: stop
    /// sending chunks until [`ServerMsg::Resume`].
    Backpressure {
        /// The session whose chunk crossed the watermark.
        session: u64,
        /// Bytes currently buffered for the connection.
        buffered: u64,
    },
    /// Buffered bytes drained below the low watermark: sending may
    /// continue.
    Resume {
        /// The session that was told to pause.
        session: u64,
    },
}

impl ServerMsg {
    /// Appends this message as a complete frame (length prefix included).
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mut body = Vec::new();
        match self {
            ServerMsg::HelloAck { session } => {
                body.push(T_HELLO_ACK);
                push_varint(&mut body, *session);
            }
            ServerMsg::Interval { session, window } => {
                body.push(T_INTERVAL);
                push_varint(&mut body, *session);
                push_varint(&mut body, window.start_branch);
                push_varint(&mut body, window.branches);
                push_varint(&mut body, window.effective_correct);
                push_varint(&mut body, window.mispredictions);
                push_varint(&mut body, window.flushes);
                push_varint(&mut body, window.rerandomizations);
            }
            ServerMsg::Report { session, report } => {
                body.push(T_REPORT);
                push_varint(&mut body, *session);
                push_string(&mut body, &report.model);
                push_string(&mut body, &report.protection);
                push_string(&mut body, &report.workload);
                body.extend_from_slice(&report.oae.to_bits().to_le_bytes());
                body.extend_from_slice(&report.direction_rate.to_bits().to_le_bytes());
                body.extend_from_slice(&report.target_rate.to_bits().to_le_bytes());
                push_varint(&mut body, report.branches);
                push_varint(&mut body, report.mispredictions);
                push_varint(&mut body, report.evictions);
                push_varint(&mut body, report.flushes);
                push_varint(&mut body, report.rerandomizations);
            }
            ServerMsg::Error {
                session,
                code,
                message,
            } => {
                body.push(T_ERROR);
                push_varint(&mut body, *session);
                push_varint(&mut body, *code as u64);
                push_string(&mut body, message);
            }
            ServerMsg::Backpressure { session, buffered } => {
                body.push(T_BACKPRESSURE);
                push_varint(&mut body, *session);
                push_varint(&mut body, *buffered);
            }
            ServerMsg::Resume { session } => {
                body.push(T_RESUME);
                push_varint(&mut body, *session);
            }
        }
        push_frame(out, &body);
    }

    /// Decodes a frame body (as returned by [`FrameReader::next_frame`]).
    ///
    /// # Errors
    ///
    /// A description of the malformation; arbitrary bytes never panic.
    pub fn decode(body: &[u8]) -> Result<ServerMsg, String> {
        let (&tag, payload) = body.split_first().ok_or("empty frame body")?;
        let mut c = Cur::new(payload);
        match tag {
            T_HELLO_ACK => {
                let session = c.varint("session id")?;
                c.done("HelloAck")?;
                Ok(ServerMsg::HelloAck { session })
            }
            T_INTERVAL => {
                let session = c.varint("session id")?;
                let window = IntervalWindow {
                    start_branch: c.varint("start_branch")?,
                    branches: c.varint("branches")?,
                    effective_correct: c.varint("effective_correct")?,
                    mispredictions: c.varint("mispredictions")?,
                    flushes: c.varint("flushes")?,
                    rerandomizations: c.varint("rerandomizations")?,
                };
                c.done("IntervalRecord")?;
                Ok(ServerMsg::Interval { session, window })
            }
            T_REPORT => {
                let session = c.varint("session id")?;
                let report = WireReport {
                    model: c.string("model name")?,
                    protection: c.string("protection label")?,
                    workload: c.string("workload label")?,
                    oae: c.f64("oae")?,
                    direction_rate: c.f64("direction_rate")?,
                    target_rate: c.f64("target_rate")?,
                    branches: c.varint("branches")?,
                    mispredictions: c.varint("mispredictions")?,
                    evictions: c.varint("evictions")?,
                    flushes: c.varint("flushes")?,
                    rerandomizations: c.varint("rerandomizations")?,
                };
                c.done("FinalReport")?;
                Ok(ServerMsg::Report { session, report })
            }
            T_ERROR => {
                let session = c.varint("session id")?;
                let raw = c.varint("error code")?;
                let code =
                    ErrorCode::from_u64(raw).ok_or_else(|| format!("unknown error code {raw}"))?;
                let message = c.string("error message")?;
                c.done("Error")?;
                Ok(ServerMsg::Error {
                    session,
                    code,
                    message,
                })
            }
            T_BACKPRESSURE => {
                let session = c.varint("session id")?;
                let buffered = c.varint("buffered byte count")?;
                c.done("Backpressure")?;
                Ok(ServerMsg::Backpressure { session, buffered })
            }
            T_RESUME => {
                let session = c.varint("session id")?;
                c.done("Resume")?;
                Ok(ServerMsg::Resume { session })
            }
            other => Err(format!("unknown server frame tag {other:#04x}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_client(msg: ClientMsg) {
        let mut wire = Vec::new();
        msg.encode(&mut wire);
        let mut r = FrameReader::new();
        r.extend(&wire);
        let body = r.next_frame().unwrap().expect("complete frame");
        assert_eq!(ClientMsg::decode(&body).unwrap(), msg);
        assert_eq!(r.next_frame().unwrap(), None);
        assert_eq!(r.buffered(), 0);
    }

    fn roundtrip_server(msg: ServerMsg) {
        let mut wire = Vec::new();
        msg.encode(&mut wire);
        let mut r = FrameReader::new();
        r.extend(&wire);
        let body = r.next_frame().unwrap().expect("complete frame");
        assert_eq!(ServerMsg::decode(&body).unwrap(), msg);
    }

    #[test]
    fn every_message_roundtrips() {
        roundtrip_client(ClientMsg::Hello(Hello {
            session: 7,
            seed: u64::MAX,
            model: "st_skl@r=0.05".to_string(),
            protection: "auto".to_string(),
            workload: "apache2_prefork_c256".to_string(),
            warmup_branches: 10_000,
            interval: 50_000,
            threads: 0,
        }));
        roundtrip_client(ClientMsg::TraceChunk {
            session: 7,
            bytes: vec![0x03, 0x00, 0x03, 0x01],
        });
        roundtrip_client(ClientMsg::TraceChunk {
            session: 1,
            bytes: Vec::new(),
        });
        roundtrip_client(ClientMsg::Flush { session: 7 });
        roundtrip_client(ClientMsg::Close { session: u64::MAX });

        roundtrip_server(ServerMsg::HelloAck { session: 7 });
        roundtrip_server(ServerMsg::Interval {
            session: 7,
            window: IntervalWindow {
                start_branch: 50_000,
                branches: 50_000,
                effective_correct: 48_211,
                mispredictions: 1_789,
                flushes: 3,
                rerandomizations: 2,
            },
        });
        roundtrip_server(ServerMsg::Report {
            session: 7,
            report: WireReport {
                model: "SKLCond+ST".to_string(),
                protection: "stbpu".to_string(),
                workload: "serve".to_string(),
                oae: 0.964_321_234_567,
                direction_rate: f64::from_bits(0x3FEF_0000_0000_0001),
                target_rate: 0.99,
                branches: 1_000_000,
                mispredictions: 35_679,
                evictions: 120,
                flushes: 0,
                rerandomizations: 17,
            },
        });
        roundtrip_server(ServerMsg::Error {
            session: 0,
            code: ErrorCode::BadFrame,
            message: "declared frame length 99999999 exceeds the cap".to_string(),
        });
        roundtrip_server(ServerMsg::Backpressure {
            session: 3,
            buffered: 9_000_000,
        });
        roundtrip_server(ServerMsg::Resume { session: 3 });
    }

    #[test]
    fn frames_reassemble_from_any_chunking() {
        let mut wire = Vec::new();
        for i in 0..20u64 {
            ClientMsg::Flush { session: i + 1 }.encode(&mut wire);
            ClientMsg::TraceChunk {
                session: i + 1,
                bytes: vec![7u8; i as usize * 11],
            }
            .encode(&mut wire);
        }
        for chunk in [1usize, 2, 3, 17, wire.len()] {
            let mut r = FrameReader::new();
            let mut frames = Vec::new();
            for c in wire.chunks(chunk) {
                r.extend(c);
                while let Some(body) = r.next_frame().unwrap() {
                    frames.push(ClientMsg::decode(&body).unwrap());
                }
            }
            assert_eq!(frames.len(), 40, "chunk size {chunk}");
            assert_eq!(frames[0], ClientMsg::Flush { session: 1 });
        }
    }

    #[test]
    fn oversized_and_zero_lengths_error_with_offset() {
        // Oversized declared length: rejected from the length varint
        // alone, before any payload arrives.
        let mut r = FrameReader::new();
        let mut wire = Vec::new();
        push_varint(&mut wire, (MAX_FRAME + 1) as u64);
        r.extend(&wire);
        let e = r.next_frame().unwrap_err();
        assert_eq!(e.offset(), 0);
        assert!(e.to_string().contains("exceeds"), "{e}");

        // Zero length, after one valid frame (offset must point past it).
        let mut wire = Vec::new();
        ClientMsg::Flush { session: 1 }.encode(&mut wire);
        let valid_len = wire.len() as u64;
        wire.push(0);
        let mut r = FrameReader::new();
        r.extend(&wire);
        assert!(r.next_frame().unwrap().is_some());
        let e = r.next_frame().unwrap_err();
        assert_eq!(e.offset(), valid_len);
        assert!(e.to_string().contains("length 0"), "{e}");
    }

    #[test]
    fn wrong_direction_and_unknown_tags_rejected() {
        let mut wire = Vec::new();
        ServerMsg::Resume { session: 1 }.encode(&mut wire);
        let mut r = FrameReader::new();
        r.extend(&wire);
        let body = r.next_frame().unwrap().unwrap();
        // A server-tag frame is not a valid client message and vice versa.
        assert!(ClientMsg::decode(&body).unwrap_err().contains("unknown"));
        assert!(ServerMsg::decode(&[0x7f]).unwrap_err().contains("unknown"));
        assert!(ClientMsg::decode(&[]).unwrap_err().contains("empty"));
    }

    #[test]
    fn hello_version_mismatch_is_rejected() {
        let mut body = vec![T_HELLO];
        push_varint(&mut body, PROTOCOL_VERSION + 1);
        push_varint(&mut body, 1);
        let e = ClientMsg::decode(&body).unwrap_err();
        assert!(e.contains("version"), "{e}");
    }
}

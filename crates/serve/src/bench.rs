//! The `serve` benchmark suite: a daemon on loopback, N concurrent
//! clients over real sockets, and a hard bit-parity gate.
//!
//! Every streamed session's final report is asserted **bit-identical**
//! (`f64::to_bits` on every rate, exact equality on every counter)
//! against one offline [`OwnedSession`] run over the same events — the
//! benchmark doubles as the strongest correctness test in the crate, so
//! a throughput number from a wrong answer cannot exist.

use crate::client::{ChunkEncoder, ServeClient};
use crate::protocol::{Hello, WireReport};
use crate::server::{self, ServerConfig};
use stbpu_engine::{auto_protection, protection_from_str, ModelRegistry};
use stbpu_sim::{IntervalWindow, OwnedSession, SessionOptions, SimReport, Warmup};
use stbpu_trace::{profiles, EventSource, TraceEvent, TraceGenerator};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shape of one `serve` bench run.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Concurrent client connections (the acceptance floor is 8).
    pub clients: usize,
    /// Sessions each client streams, sequentially.
    pub sessions_per_client: usize,
    /// Branches per session.
    pub branches: usize,
    /// Workload profile streamed by every session.
    pub workload: String,
    /// Model spec every session opens.
    pub model: String,
    /// Protection name (`"auto"` resolves like the CLI).
    pub protection: String,
    /// Trace + model seed.
    pub seed: u64,
    /// Target wire chunk size in bytes.
    pub chunk_bytes: usize,
    /// Interval window in branches; 0 disables interval streaming.
    pub interval: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            clients: 8,
            sessions_per_client: 2,
            branches: 200_000,
            workload: "541.leela".to_string(),
            model: "st_skl".to_string(),
            protection: "auto".to_string(),
            seed: 42,
            chunk_bytes: 32 << 10,
            interval: 0,
        }
    }
}

/// What a `serve` bench run measured.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Concurrent client connections driven.
    pub clients: usize,
    /// Sessions completed (all of them bit-parity-checked).
    pub sessions: u64,
    /// Branches streamed across every session.
    pub total_branches: u64,
    /// Wall-clock for the whole fleet.
    pub elapsed_s: f64,
    /// Completed sessions per second.
    pub sessions_per_s: f64,
    /// Aggregate branches per second across the fleet.
    pub branches_per_s: f64,
    /// Median flush→final-report latency.
    pub p50_ms: f64,
    /// 99th-percentile flush→final-report latency.
    pub p99_ms: f64,
    /// The (shared) OAE every session reproduced.
    pub oae: f64,
}

/// Field-by-field bit comparison of a streamed report against an
/// offline reference run: every rate via `f64::to_bits`, exact equality
/// on every counter and label (workload included — a corrupted label on
/// the wire is as much a protocol bug as a corrupted counter). Any
/// difference is a hard failure. Shared by this bench suite and the
/// `stbpu serve --client` self-test so the two gates cannot drift.
///
/// # Errors
///
/// Lists every diverging field.
pub fn check_parity(wire: &WireReport, offline: &SimReport) -> Result<(), String> {
    let mut diffs = Vec::new();
    if wire.oae.to_bits() != offline.oae.to_bits() {
        diffs.push(format!("oae {} != {}", wire.oae, offline.oae));
    }
    if wire.direction_rate.to_bits() != offline.direction_rate.to_bits() {
        diffs.push("direction_rate".to_string());
    }
    if wire.target_rate.to_bits() != offline.target_rate.to_bits() {
        diffs.push("target_rate".to_string());
    }
    if wire.branches != offline.branches {
        diffs.push(format!(
            "branches {} != {}",
            wire.branches, offline.branches
        ));
    }
    if wire.mispredictions != offline.mispredictions {
        diffs.push("mispredictions".to_string());
    }
    if wire.evictions != offline.evictions {
        diffs.push("evictions".to_string());
    }
    if wire.flushes != offline.flushes {
        diffs.push("flushes".to_string());
    }
    if wire.rerandomizations != offline.rerandomizations {
        diffs.push("rerandomizations".to_string());
    }
    if wire.model != offline.model
        || wire.protection != offline.protection
        || wire.workload != offline.workload
    {
        diffs.push(format!(
            "labels {}/{}/{} != {}/{}/{}",
            wire.model,
            wire.protection,
            wire.workload,
            offline.model,
            offline.protection,
            offline.workload
        ));
    }
    if diffs.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "streamed report diverges from offline run: {}",
            diffs.join(", ")
        ))
    }
}

/// The offline reference plus everything the clients stream.
struct Fixture {
    chunks: Vec<Vec<u8>>,
    reference: SimReport,
    ref_intervals: Vec<IntervalWindow>,
    warmup_branches: u64,
}

/// Generates the trace once, runs it offline once, and pre-encodes the
/// wire chunks every session replays.
fn build_fixture(cfg: &BenchConfig) -> Result<Fixture, String> {
    let profile = profiles::by_name(&cfg.workload)
        .ok_or_else(|| format!("unknown workload '{}'", cfg.workload))?;
    let mut source = TraceGenerator::new(profile, cfg.seed).into_source(cfg.branches);
    let mut events: Vec<TraceEvent> = Vec::new();
    source
        .for_each_batch(4_096, |batch| {
            events.extend_from_slice(batch);
            Ok(())
        })
        .map_err(|e: stbpu_trace::SourceError| e.to_string())?;
    let warmup_branches = (cfg.branches / 10) as u64;

    let registry = ModelRegistry::standard();
    let model = registry
        .build(&cfg.model, cfg.seed)
        .map_err(|e| e.to_string())?;
    let policy = if cfg.protection == "auto" {
        auto_protection(&cfg.model)
    } else {
        protection_from_str(&cfg.protection).map_err(|e| e.to_string())?
    };
    let mut sim = OwnedSession::new(
        model,
        policy,
        SessionOptions {
            warmup: Warmup::Branches(warmup_branches),
            threads: None,
            interval: (cfg.interval != 0).then_some(cfg.interval),
            workload: Some(cfg.workload.clone()),
        },
    )
    .map_err(|e| e.to_string())?;
    sim.feed_batch(&events).map_err(|e| e.to_string())?;
    let (reference, ref_intervals) = sim.finish_with_intervals();

    let mut enc = ChunkEncoder::new(cfg.chunk_bytes);
    let mut chunks = Vec::new();
    for ev in &events {
        if let Some(chunk) = enc.push(ev).map_err(|e| e.to_string())? {
            chunks.push(chunk);
        }
    }
    let tail = enc.flush();
    if !tail.is_empty() {
        chunks.push(tail);
    }
    Ok(Fixture {
        chunks,
        reference,
        ref_intervals,
        warmup_branches,
    })
}

/// Runs one bench: spawn the daemon on loopback, drive the client
/// fleet, gate parity, aggregate throughput and latency.
///
/// # Errors
///
/// Any transport failure, server refusal, or parity violation in any
/// session, with the offending client identified.
pub fn run_bench(cfg: &BenchConfig) -> Result<BenchResult, String> {
    if cfg.clients == 0 || cfg.sessions_per_client == 0 {
        return Err("serve bench needs at least one client and one session".to_string());
    }
    let fixture = Arc::new(build_fixture(cfg)?);
    let server = server::spawn(
        "127.0.0.1:0",
        ServerConfig {
            max_sessions_per_conn: cfg.sessions_per_client.max(16),
            idle_timeout: Duration::from_secs(60),
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("serve bench could not bind loopback: {e}"))?;
    let addr = server.addr();

    let started = Instant::now();
    let mut threads = Vec::with_capacity(cfg.clients);
    for client_idx in 0..cfg.clients {
        let fixture = Arc::clone(&fixture);
        let cfg = cfg.clone();
        threads.push(std::thread::spawn(move || -> Result<Vec<f64>, String> {
            let client =
                ServeClient::connect(addr).map_err(|e| format!("client {client_idx}: {e}"))?;
            let mut latencies = Vec::with_capacity(cfg.sessions_per_client);
            for s in 0..cfg.sessions_per_client {
                let mut handle = client
                    .open(Hello {
                        session: s as u64 + 1,
                        seed: cfg.seed,
                        model: cfg.model.clone(),
                        protection: cfg.protection.clone(),
                        workload: cfg.workload.clone(),
                        warmup_branches: fixture.warmup_branches,
                        interval: cfg.interval,
                        threads: 0,
                    })
                    .map_err(|e| format!("client {client_idx} session {s}: {e}"))?;
                let mut intervals = Vec::new();
                for chunk in &fixture.chunks {
                    intervals.extend(
                        handle
                            .send_chunk(chunk)
                            .map_err(|e| format!("client {client_idx} session {s}: {e}"))?,
                    );
                }
                let flushed = Instant::now();
                let (report, tail) = handle
                    .finish()
                    .map_err(|e| format!("client {client_idx} session {s}: {e}"))?;
                latencies.push(flushed.elapsed().as_secs_f64() * 1e3);
                intervals.extend(tail);
                check_parity(&report, &fixture.reference)
                    .map_err(|e| format!("client {client_idx} session {s}: {e}"))?;
                if intervals != fixture.ref_intervals {
                    return Err(format!(
                        "client {client_idx} session {s}: streamed {} interval windows, \
                         offline run produced {}",
                        intervals.len(),
                        fixture.ref_intervals.len()
                    ));
                }
            }
            Ok(latencies)
        }));
    }

    let mut latencies = Vec::new();
    let mut first_err = None;
    for t in threads {
        match t.join() {
            Ok(Ok(ls)) => latencies.extend(ls),
            Ok(Err(e)) => {
                first_err.get_or_insert(e);
            }
            Err(_) => {
                first_err.get_or_insert("a bench client panicked".to_string());
            }
        }
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    server.shutdown();
    if let Some(e) = first_err {
        return Err(e);
    }

    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx]
    };
    let sessions = (cfg.clients * cfg.sessions_per_client) as u64;
    let total_branches = sessions * cfg.branches as u64;
    Ok(BenchResult {
        clients: cfg.clients,
        sessions,
        total_branches,
        elapsed_s,
        sessions_per_s: sessions as f64 / elapsed_s.max(1e-9),
        branches_per_s: total_branches as f64 / elapsed_s.max(1e-9),
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        oae: fixture.reference.oae,
    })
}

//! The daemon: a session manager owning a worker pool over a registry of
//! live sessions.
//!
//! # Architecture
//!
//! One accept thread hands each connection to its own reader thread; the
//! reader splits frames, answers `Hello`s, and queues `TraceChunk` bytes
//! on the addressed session's slot. A fixed pool of worker threads pulls
//! ready sessions off a run queue, checks the session's engine (trace
//! decoder + [`OwnedSession`]) *out* of the registry, processes every
//! queued chunk through the batched fast path without holding the
//! registry lock, and checks the engine back in — so N workers advance N
//! sessions concurrently while readers keep accepting bytes.
//!
//! # Isolation
//!
//! Per-connection quotas (live sessions, buffered bytes) and per-session
//! failure domains: a malformed chunk, quota overflow or idle timeout
//! tears down exactly the offending session with a
//! [`ServerMsg::Error`] — every other session, on the same connection or
//! others, keeps streaming. Only an unframeable byte stream costs the
//! whole connection, because framing has no resync point.
//!
//! Outbound frames never touch the socket while the global state lock is
//! held: they are queued per connection under the lock and flushed after
//! it is released, and every send half carries
//! [`ServerConfig::write_timeout`] — so a client that stops *reading*
//! wedges nothing; its first timed-out write kills its own connection
//! and frees whatever worker was serving it.

use crate::protocol::{ClientMsg, ErrorCode, FrameReader, Hello, ServerMsg, WireReport};
use stbpu_engine::{auto_protection, protection_from_str, ModelCore, ModelRegistry};
use stbpu_sim::{OwnedSession, SessionOptions, Warmup};
use stbpu_trace::binfmt::RecordDecoder;
use stbpu_trace::TraceEvent;
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs for [`spawn`]. The defaults suit tests and the CLI; the
/// bench harness raises the quotas to keep 8+ clients streaming.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads advancing sessions; 0 means one per available
    /// core, capped at 8.
    pub workers: usize,
    /// Live sessions allowed per connection before `Hello`s are refused
    /// with [`ErrorCode::QuotaSessions`].
    pub max_sessions_per_conn: usize,
    /// Bytes of undecoded chunk data buffered per connection. At ¾ of
    /// this an advisory [`ServerMsg::Backpressure`] frame fires and the
    /// server stops reading the connection's socket until workers drain
    /// below ¼ (so real memory is bounded by the watermark plus one read
    /// buffer even against clients that ignore the frame). A single
    /// chunk larger than the whole quota tears its session down with
    /// [`ErrorCode::QuotaBuffered`].
    pub max_buffered_per_conn: usize,
    /// A session receiving nothing for this long is torn down with
    /// [`ErrorCode::IdleTimeout`].
    pub idle_timeout: Duration,
    /// Per-write timeout on every connection's send half. A peer that
    /// stops reading its socket makes the next write to it fail after at
    /// most this long, which tears that one connection down — a
    /// non-reading client costs whoever writes to it one timeout, never
    /// a permanently wedged worker or reader.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            max_sessions_per_conn: 16,
            max_buffered_per_conn: 8 << 20,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
        }
    }
}

impl ServerConfig {
    /// Buffered-bytes level that triggers a [`ServerMsg::Backpressure`].
    /// Clamped to at least 1 so a degenerate quota (< 4 bytes) still
    /// leaves the stall check satisfiable — the connection throttles
    /// per-chunk instead of wedging on a watermark of 0.
    fn high_watermark(&self) -> usize {
        (self.max_buffered_per_conn / 4 * 3).max(1)
    }

    /// Buffered-bytes level that triggers the matching
    /// [`ServerMsg::Resume`].
    fn low_watermark(&self) -> usize {
        self.max_buffered_per_conn / 4
    }
}

/// Registry key: connection id + client-chosen session id.
type Key = (u64, u64);

/// A session's compute state, checked out of the registry by exactly one
/// worker at a time.
struct Engine {
    decoder: RecordDecoder,
    sim: OwnedSession<ModelCore>,
    /// Reused decode scratch, so steady-state chunks allocate nothing.
    events: Vec<TraceEvent>,
}

/// How a session ends.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Closing {
    /// Still streaming.
    No,
    /// `Flush` received: drain, finish, report.
    Finish,
    /// `Close` received or the session was torn down: drop silently.
    Abort,
}

/// One live session in the registry.
struct Slot {
    pending: VecDeque<Vec<u8>>,
    pending_bytes: usize,
    closing: Closing,
    /// True while the key sits in the run queue.
    queued: bool,
    /// `None` while a worker has the engine checked out.
    engine: Option<Box<Engine>>,
    writer: ConnWriter,
    last_activity: Instant,
}

/// Per-connection accounting.
struct ConnInfo {
    buffered: usize,
    sessions: usize,
    /// The session that was sent a `Backpressure` and awaits `Resume`.
    paused: Option<u64>,
}

/// The shared half of a connection's socket; workers, the reader and the
/// sweep all push frames through it.
///
/// Sending is split in two so no socket I/O ever happens under the
/// global state lock: [`ConnWriter::queue_msg`] encodes onto a FIFO
/// (cheap, lock-safe — wire order is queue order, which under the state
/// lock is state-transition order, keeping e.g. `Backpressure` ahead of
/// its `Resume`), and [`ConnWriter::flush`] drains the FIFO to the
/// socket and must only run with no state lock held. The socket carries
/// the configured write timeout, so a peer that stops reading fails the
/// write in bounded time; the failure marks the writer dead and shuts
/// the socket down, which the reader notices and turns into a full
/// connection teardown — releasing any sessions (and therefore workers)
/// the stalled peer was holding.
#[derive(Clone)]
struct ConnWriter {
    queue: Arc<Mutex<VecDeque<Vec<u8>>>>,
    stream: Arc<Mutex<TcpStream>>,
    dead: Arc<AtomicBool>,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> ConnWriter {
        ConnWriter {
            queue: Arc::new(Mutex::new(VecDeque::new())),
            stream: Arc::new(Mutex::new(stream)),
            dead: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Encodes one frame onto the outbound queue. No I/O — safe while
    /// holding the state lock. The caller must [`ConnWriter::flush`]
    /// after releasing it.
    fn queue_msg(&self, msg: &ServerMsg) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        let mut wire = Vec::new();
        msg.encode(&mut wire);
        if let Ok(mut q) = self.queue.lock() {
            q.push_back(wire);
        }
    }

    /// Writes every queued frame in FIFO order. Blocks up to the write
    /// timeout per syscall, so it must never run with the state lock
    /// held. A failed or timed-out write kills the writer and shuts the
    /// socket down; the reader thread then cleans the connection up —
    /// a dead peer is not an error worth propagating.
    fn flush(&self) {
        let Ok(mut s) = self.stream.lock() else {
            return;
        };
        while !self.dead.load(Ordering::Relaxed) {
            // Only the stream-lock holder pops, so frames hit the wire
            // in queue order even with concurrent flushers.
            let frame = match self.queue.lock() {
                Ok(mut q) => match q.pop_front() {
                    Some(f) => f,
                    None => return,
                },
                Err(_) => return,
            };
            if s.write_all(&frame).is_err() {
                self.dead.store(true, Ordering::Relaxed);
                let _ = s.shutdown(Shutdown::Both);
                return;
            }
        }
    }

    /// Queue + flush, for call sites that hold no locks.
    fn send(&self, msg: &ServerMsg) {
        self.queue_msg(msg);
        self.flush();
    }

    /// True once a write failed or timed out; the connection is doomed.
    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }
}

/// Registry + run queue, under one lock. Both maps are `BTreeMap` on
/// purpose: the sweep and cleanup paths iterate them, and anything that
/// iterates registry state must do so in a deterministic order (the
/// determinism lint enforces this).
struct State {
    sessions: BTreeMap<Key, Slot>,
    ready: VecDeque<Key>,
    conns: BTreeMap<u64, ConnInfo>,
}

/// Everything the threads share. Every acquisition of `state` recovers
/// from poisoning via `unwrap_or_else(PoisonError::into_inner)` rather
/// than unwrapping: a panicking thread elsewhere must degrade one
/// session, not wedge the registry for every live connection — each path
/// re-validates the slot it touches anyway. (The panic-freedom lint bans
/// the `unwrap()` form in this file.)
struct Shared {
    cfg: ServerConfig,
    registry: ModelRegistry,
    state: Mutex<State>,
    work: Condvar,
    shutdown: AtomicBool,
    next_conn: AtomicU64,
}

/// A running daemon. Keep it alive for as long as the service should
/// accept connections; [`ServerHandle::shutdown`] stops it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes every thread, and joins the pool. Live
    /// sessions are aborted, not finished.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0`) and spawns the accept loop plus the
/// worker pool.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn spawn(addr: &str, cfg: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let workers = match cfg.workers {
        0 => thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4),
        n => n,
    };
    let shared = Arc::new(Shared {
        cfg,
        registry: ModelRegistry::standard(),
        state: Mutex::new(State {
            sessions: BTreeMap::new(),
            ready: VecDeque::new(),
            conns: BTreeMap::new(),
        }),
        work: Condvar::new(),
        shutdown: AtomicBool::new(false),
        next_conn: AtomicU64::new(1),
    });
    let mut threads = Vec::with_capacity(workers + 1);
    for _ in 0..workers {
        let sh = Arc::clone(&shared);
        threads.push(thread::spawn(move || worker_loop(&sh)));
    }
    let sh = Arc::clone(&shared);
    threads.push(thread::spawn(move || accept_loop(&sh, listener)));
    Ok(ServerHandle {
        addr: local,
        shared,
        threads,
    })
}

/// Accepts connections (nonblocking + sleep so shutdown is prompt) and
/// runs the idle-session sweep between polls.
fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    let mut last_sweep = Instant::now();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
                let sh = Arc::clone(shared);
                // Reader threads are not joined on shutdown: they notice
                // the flag within one 50ms read timeout and exit on their
                // own, and the Arc keeps the state alive until they do.
                thread::spawn(move || conn_loop(&sh, stream, conn_id));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
        if last_sweep.elapsed() >= Duration::from_millis(250) {
            sweep_idle(shared);
            last_sweep = Instant::now();
        }
    }
}

/// Tears down sessions idle past the configured timeout. Sessions with a
/// checked-out or queued engine are actively progressing and skipped.
fn sweep_idle(shared: &Shared) {
    let timeout = shared.cfg.idle_timeout;
    let mut writers = Vec::new();
    {
        let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        let idle: Vec<Key> = st
            .sessions
            .iter()
            .filter(|(_, s)| {
                s.engine.is_some() && !s.queued && s.last_activity.elapsed() >= timeout
            })
            .map(|(k, _)| *k)
            .collect();
        for key in idle {
            if let Some(slot) = st.sessions.remove(&key) {
                settle_removed(&mut st, key.0, &slot);
                slot.writer.queue_msg(&ServerMsg::Error {
                    session: key.1,
                    code: ErrorCode::IdleTimeout,
                    message: format!("session idle for {}s", timeout.as_secs()),
                });
                writers.push(slot.writer);
            }
        }
    }
    // Flush outside the lock: a stalled peer costs this thread at most
    // one write timeout (once — the writer is dead afterwards).
    for w in writers {
        w.flush();
    }
}

/// Adjusts connection accounting after a slot left the registry.
fn settle_removed(st: &mut State, conn_id: u64, slot: &Slot) {
    // If the removed session was the one told to pause, the pause can
    // never be resumed — clear it so the connection isn't wedged.
    let clear_pause = st
        .conns
        .get(&conn_id)
        .and_then(|c| c.paused)
        .is_some_and(|s| !st.sessions.contains_key(&(conn_id, s)));
    if let Some(conn) = st.conns.get_mut(&conn_id) {
        conn.sessions = conn.sessions.saturating_sub(1);
        conn.buffered = conn.buffered.saturating_sub(slot.pending_bytes);
        if clear_pause {
            conn.paused = None;
        }
    }
}

/// Per-connection reader: splits frames, dispatches messages, owns the
/// connection's lifetime.
fn conn_loop(shared: &Arc<Shared>, stream: TcpStream, conn_id: u64) {
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    let Ok(clone) = stream.try_clone() else {
        return;
    };
    // SO_SNDTIMEO on the shared socket: bounds every write to this peer.
    if clone
        .set_write_timeout(Some(shared.cfg.write_timeout))
        .is_err()
    {
        return;
    }
    let writer = ConnWriter::new(clone);
    shared
        .state
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .conns
        .insert(
            conn_id,
            ConnInfo {
                buffered: 0,
                sessions: 0,
                paused: None,
            },
        );

    let mut stream = stream;
    let mut frames = FrameReader::new();
    let mut buf = vec![0u8; 64 << 10];
    'conn: while !shared.shutdown.load(Ordering::SeqCst) {
        // Hard quota enforcement: while this connection is over the high
        // watermark, stop reading its socket entirely — TCP pushes back
        // on the peer, so buffered bytes are bounded by the watermark
        // plus one read buffer even if the client ignores the advisory
        // Backpressure frame. Compliant clients are never killed for
        // data that was in flight before the frame reached them.
        loop {
            let over = shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .conns
                .get(&conn_id)
                .is_some_and(|c| c.buffered >= shared.cfg.high_watermark());
            if !over || shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if writer.is_dead() {
                break 'conn; // a write timed out; the connection is doomed
            }
            thread::sleep(Duration::from_millis(5));
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                frames.extend(&buf[..n]);
                loop {
                    match frames.next_frame() {
                        Ok(Some(body)) => {
                            if !handle_frame(shared, conn_id, &writer, &body) {
                                break 'conn;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            // Framing is unrecoverable: no resync point.
                            writer.send(&ServerMsg::Error {
                                session: 0,
                                code: ErrorCode::BadFrame,
                                message: e.to_string(),
                            });
                            break 'conn;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    cleanup_conn(shared, conn_id);
}

/// Aborts every session a vanished connection still has in the registry.
fn cleanup_conn(shared: &Shared, conn_id: u64) {
    let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
    let keys: Vec<Key> = st
        .sessions
        .keys()
        .filter(|k| k.0 == conn_id)
        .copied()
        .collect();
    for key in keys {
        let checked_out = st.sessions.get(&key).is_some_and(|s| s.engine.is_none());
        if checked_out {
            // A worker holds the engine: flag the slot and let the
            // check-in path drop it.
            if let Some(slot) = st.sessions.get_mut(&key) {
                slot.closing = Closing::Abort;
                slot.pending.clear();
                slot.pending_bytes = 0;
            }
        } else {
            st.sessions.remove(&key);
        }
    }
    st.conns.remove(&conn_id);
}

/// Handles one complete frame. Returns `false` when the connection must
/// close (undecodable message — same class as unframeable bytes).
fn handle_frame(shared: &Shared, conn_id: u64, writer: &ConnWriter, body: &[u8]) -> bool {
    let msg = match ClientMsg::decode(body) {
        Ok(m) => m,
        Err(e) => {
            writer.send(&ServerMsg::Error {
                session: 0,
                code: ErrorCode::BadFrame,
                message: e,
            });
            return false;
        }
    };
    match msg {
        ClientMsg::Hello(h) => handle_hello(shared, conn_id, writer, h),
        ClientMsg::TraceChunk { session, bytes } => {
            handle_chunk(shared, conn_id, writer, session, bytes)
        }
        ClientMsg::Flush { session } => {
            handle_end(shared, conn_id, writer, session, Closing::Finish)
        }
        ClientMsg::Close { session } => {
            handle_end(shared, conn_id, writer, session, Closing::Abort)
        }
    }
    true
}

/// Opens a session: quota and duplicate checks under the lock, model
/// construction outside it (this reader is the only writer of its own
/// connection's ids, so the gap is race-free).
fn handle_hello(shared: &Shared, conn_id: u64, writer: &ConnWriter, h: Hello) {
    let reject = |code: ErrorCode, message: String| {
        writer.send(&ServerMsg::Error {
            session: h.session,
            code,
            message,
        });
    };
    if h.session == 0 {
        return reject(
            ErrorCode::BadHello,
            "session id 0 is reserved for connection-level errors".to_string(),
        );
    }
    // Look, decide, release — the reject frames go out lock-free below.
    let (duplicate, live) = {
        let st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        (
            st.sessions.contains_key(&(conn_id, h.session)),
            st.conns.get(&conn_id).map_or(0, |c| c.sessions),
        )
    };
    if duplicate {
        return reject(
            ErrorCode::DuplicateSession,
            format!("session {} is already open on this connection", h.session),
        );
    }
    if live >= shared.cfg.max_sessions_per_conn {
        return reject(
            ErrorCode::QuotaSessions,
            format!(
                "connection already has {live} live sessions (quota {})",
                shared.cfg.max_sessions_per_conn
            ),
        );
    }

    let model = match shared.registry.build(&h.model, h.seed) {
        Ok(m) => m,
        Err(e) => return reject(ErrorCode::BadHello, e.to_string()),
    };
    let policy = if h.protection == "auto" {
        auto_protection(&h.model)
    } else {
        match protection_from_str(&h.protection) {
            Ok(p) => p,
            Err(e) => return reject(ErrorCode::BadHello, e.to_string()),
        }
    };
    let opts = SessionOptions {
        warmup: Warmup::Branches(h.warmup_branches),
        threads: (h.threads != 0).then_some(h.threads as usize),
        interval: (h.interval != 0).then_some(h.interval),
        workload: Some(h.workload.clone()),
    };
    let sim = match OwnedSession::new(model, policy, opts) {
        Ok(s) => s,
        Err(e) => return reject(ErrorCode::BadHello, e.to_string()),
    };

    let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
    if !st.conns.contains_key(&conn_id) {
        return; // connection died while we built the model
    }
    st.sessions.insert(
        (conn_id, h.session),
        Slot {
            pending: VecDeque::new(),
            pending_bytes: 0,
            closing: Closing::No,
            queued: false,
            engine: Some(Box::new(Engine {
                decoder: RecordDecoder::new(),
                sim,
                events: Vec::new(),
            })),
            writer: writer.clone(),
            last_activity: Instant::now(),
        },
    );
    if let Some(conn) = st.conns.get_mut(&conn_id) {
        conn.sessions += 1;
    }
    drop(st);
    // Safe to ack after the lock: this reader is the only thread that
    // can feed the new session, so nothing else addresses it before the
    // ack is on the wire.
    writer.send(&ServerMsg::HelloAck { session: h.session });
}

/// Queues chunk bytes on a live session, enforcing the buffered-bytes
/// quota and emitting backpressure at the high watermark.
fn handle_chunk(shared: &Shared, conn_id: u64, writer: &ConnWriter, session: u64, bytes: Vec<u8>) {
    let key = (conn_id, session);
    let len = bytes.len();
    let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
    let refusal = match st.sessions.get(&key) {
        None => Some(format!("no live session {session} on this connection")),
        Some(slot) if slot.closing != Closing::No => {
            Some(format!("session {session} is already closing"))
        }
        Some(_) => None,
    };
    if let Some(message) = refusal {
        drop(st);
        writer.send(&ServerMsg::Error {
            session,
            code: ErrorCode::UnknownSession,
            message,
        });
        return;
    }
    if len > shared.cfg.max_buffered_per_conn {
        // A single chunk no draining could ever make room for: abusive
        // by construction, and the one quota kill that cannot be a race
        // against in-flight data. Costs the offending session only.
        kill_session(&mut st, key);
        drop(st);
        writer.send(&ServerMsg::Error {
            session,
            code: ErrorCode::QuotaBuffered,
            message: format!(
                "one {len}-byte chunk exceeds the whole {} -byte connection buffer quota",
                shared.cfg.max_buffered_per_conn
            ),
        });
        return;
    }
    // Liveness was checked above and the lock has been held throughout,
    // so the slot is present; the defensive return (instead of a panic
    // that would kill this reader and every session it feeds) costs
    // nothing on the happy path.
    let Some(slot) = st.sessions.get_mut(&key) else {
        return;
    };
    slot.last_activity = Instant::now();
    slot.pending_bytes += len;
    slot.pending.push_back(bytes);
    enqueue(&mut st, key);
    if let Some(conn) = st.conns.get_mut(&conn_id) {
        conn.buffered += len;
        if conn.paused.is_none() && conn.buffered >= shared.cfg.high_watermark() {
            conn.paused = Some(session);
            // Queued under the lock so the frame is ordered before any
            // Resume a draining worker issues for the same pause.
            writer.queue_msg(&ServerMsg::Backpressure {
                session,
                buffered: conn.buffered as u64,
            });
        }
    }
    shared.work.notify_one();
    drop(st);
    writer.flush();
}

/// Handles `Flush` (finish + report) and `Close` (silent abort).
fn handle_end(shared: &Shared, conn_id: u64, writer: &ConnWriter, session: u64, how: Closing) {
    let key = (conn_id, session);
    let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(slot) = st.sessions.get_mut(&key) else {
        drop(st);
        writer.send(&ServerMsg::Error {
            session,
            code: ErrorCode::UnknownSession,
            message: format!("no live session {session} on this connection"),
        });
        return;
    };
    if slot.closing != Closing::No {
        return; // second Flush/Close is a no-op; the first wins
    }
    slot.closing = how;
    slot.last_activity = Instant::now();
    if how == Closing::Abort {
        let dropped = slot.pending_bytes;
        slot.pending.clear();
        slot.pending_bytes = 0;
        if let Some(conn) = st.conns.get_mut(&conn_id) {
            conn.buffered = conn.buffered.saturating_sub(dropped);
        }
    }
    enqueue(&mut st, key);
    shared.work.notify_one();
}

/// Removes a session immediately if its engine is home, or flags it for
/// the worker check-in path to drop.
fn kill_session(st: &mut State, key: Key) {
    let checked_out = st.sessions.get(&key).is_some_and(|s| s.engine.is_none());
    if checked_out {
        if let Some(slot) = st.sessions.get_mut(&key) {
            slot.closing = Closing::Abort;
            let dropped = slot.pending_bytes;
            slot.pending.clear();
            slot.pending_bytes = 0;
            if let Some(conn) = st.conns.get_mut(&key.0) {
                conn.buffered = conn.buffered.saturating_sub(dropped);
            }
        }
    } else if let Some(slot) = st.sessions.remove(&key) {
        settle_removed(st, key.0, &slot);
    }
}

/// Puts `key` on the run queue if it has work and its engine is home.
fn enqueue(st: &mut State, key: Key) {
    if let Some(slot) = st.sessions.get_mut(&key) {
        let has_work = !slot.pending.is_empty() || slot.closing != Closing::No;
        if has_work && !slot.queued && slot.engine.is_some() {
            slot.queued = true;
            st.ready.push_back(key);
        }
    }
}

/// One worker: pop a ready session, advance it, repeat.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let key = {
            let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(k) = st.ready.pop_front() {
                    break k;
                }
                let (guard, _) = shared
                    .work
                    .wait_timeout(st, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        };
        advance_session(shared, key);
    }
}

/// Checks the engine out, runs every queued chunk through decode +
/// batched simulation without the registry lock, streams intervals, and
/// checks the engine back in (or finishes/aborts the session).
fn advance_session(shared: &Shared, key: Key) {
    // Check out.
    let (mut engine, chunks, closing, writer) = {
        let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(slot) = st.sessions.get_mut(&key) else {
            return; // torn down while queued
        };
        slot.queued = false;
        let Some(engine) = slot.engine.take() else {
            return; // another worker beat us to it (shouldn't happen)
        };
        let chunks: Vec<Vec<u8>> = slot.pending.drain(..).collect();
        let taken: usize = chunks.iter().map(Vec::len).sum();
        slot.pending_bytes -= taken;
        let closing = slot.closing;
        let writer = slot.writer.clone();
        if let Some(conn) = st.conns.get_mut(&key.0) {
            conn.buffered = conn.buffered.saturating_sub(taken);
            if conn.buffered <= shared.cfg.low_watermark() {
                if let Some(paused) = conn.paused.take() {
                    // Queued under the lock: ordered after the
                    // Backpressure that set the pause, flushed below
                    // once the lock is gone.
                    writer.queue_msg(&ServerMsg::Resume { session: paused });
                }
            }
        }
        (engine, chunks, closing, writer)
    };
    writer.flush();

    // Process without the lock.
    let mut failure: Option<(ErrorCode, String)> = None;
    if closing != Closing::Abort {
        for chunk in &chunks {
            engine.events.clear();
            if let Err(e) = engine.decoder.feed(chunk, &mut engine.events) {
                failure = Some((ErrorCode::TraceDecode, e.to_string()));
                break;
            }
            if let Err(e) = engine.sim.feed_batch(&engine.events) {
                failure = Some((ErrorCode::Sim, e.to_string()));
                break;
            }
            for window in engine.sim.take_intervals() {
                writer.send(&ServerMsg::Interval {
                    session: key.1,
                    window,
                });
            }
        }
    }

    if let Some((code, message)) = failure {
        writer.send(&ServerMsg::Error {
            session: key.1,
            code,
            message,
        });
        remove_session(shared, key);
        return; // engine dropped here; unrelated sessions unaffected
    }

    if closing == Closing::Finish {
        let Engine {
            mut decoder,
            mut sim,
            mut events,
        } = *engine;
        events.clear();
        let finished = decoder
            .finish(&mut events)
            .map_err(|e| (ErrorCode::TraceDecode, e.to_string()))
            .and_then(|()| {
                sim.feed_batch(&events)
                    .map_err(|e| (ErrorCode::Sim, e.to_string()))
            });
        match finished {
            Ok(()) => {
                let (report, intervals) = sim.finish_with_intervals();
                for window in intervals {
                    writer.send(&ServerMsg::Interval {
                        session: key.1,
                        window,
                    });
                }
                writer.send(&ServerMsg::Report {
                    session: key.1,
                    report: WireReport::from(&report),
                });
            }
            Err((code, message)) => {
                writer.send(&ServerMsg::Error {
                    session: key.1,
                    code,
                    message,
                });
            }
        }
        remove_session(shared, key);
        return;
    }

    // Check back in (or honor an abort that landed while we worked).
    let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(slot) = st.sessions.get_mut(&key) else {
        return; // connection cleanup removed the slot; drop the engine
    };
    if closing == Closing::Abort || slot.closing == Closing::Abort {
        if let Some(removed) = st.sessions.remove(&key) {
            settle_removed(&mut st, key.0, &removed);
        }
        return;
    }
    slot.engine = Some(engine);
    enqueue(&mut st, key);
    if !st.ready.is_empty() {
        shared.work.notify_one();
    }
}

/// Removes a finished/failed session and settles its connection's books.
fn remove_session(shared: &Shared, key: Key) {
    let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(slot) = st.sessions.remove(&key) {
        settle_removed(&mut st, key.0, &slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Degenerate buffer quotas must still leave the reader's stall
    /// check satisfiable: a watermark of 0 with nothing buffered would
    /// wedge every connection forever.
    #[test]
    fn high_watermark_never_zero() {
        for quota in [1, 2, 3, 4, 5, 8] {
            let cfg = ServerConfig {
                max_buffered_per_conn: quota,
                ..ServerConfig::default()
            };
            assert!(cfg.high_watermark() >= 1, "quota {quota}");
            assert!(cfg.low_watermark() < cfg.high_watermark(), "quota {quota}");
        }
    }
}

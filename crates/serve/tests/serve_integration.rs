//! End-to-end daemon tests over real loopback sockets: bit-parity with
//! offline simulation, malicious-client containment, quota enforcement,
//! and idle-session reaping.

use stbpu_engine::{auto_protection, ModelRegistry};
use stbpu_serve::client::{ChunkEncoder, ServeClient};
use stbpu_serve::protocol::{ClientMsg, ErrorCode, FrameReader, Hello, ServerMsg};
use stbpu_serve::server::{spawn, ServerConfig};
use stbpu_serve::ServeError;
use stbpu_sim::{IntervalWindow, OwnedSession, SessionOptions, SimReport, Warmup};
use stbpu_trace::{profiles, EventSource, TraceEvent, TraceGenerator};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const MODEL: &str = "st_skl";
const WORKLOAD: &str = "541.leela";
const BRANCHES: usize = 30_000;
const WARMUP: u64 = 3_000;
const SEED: u64 = 1234;

/// Trace events, their wire chunks, and the offline reference results.
struct Fixture {
    chunks: Vec<Vec<u8>>,
    report: SimReport,
    intervals: Vec<IntervalWindow>,
}

fn fixture(interval: Option<u64>) -> Fixture {
    let profile = profiles::by_name(WORKLOAD).expect("workload exists");
    let mut source = TraceGenerator::new(profile, SEED).into_source(BRANCHES);
    let mut events: Vec<TraceEvent> = Vec::new();
    let collected: Result<(), stbpu_trace::SourceError> = source.for_each_batch(4_096, |b| {
        events.extend_from_slice(b);
        Ok(())
    });
    collected.unwrap();

    let model = ModelRegistry::standard().build(MODEL, SEED).unwrap();
    let mut sim = OwnedSession::new(
        model,
        auto_protection(MODEL),
        SessionOptions {
            warmup: Warmup::Branches(WARMUP),
            threads: None,
            interval,
            workload: Some(WORKLOAD.to_string()),
        },
    )
    .unwrap();
    sim.feed_batch(&events).unwrap();
    let (report, intervals) = sim.finish_with_intervals();

    let mut enc = ChunkEncoder::new(4 << 10);
    let mut chunks = Vec::new();
    for ev in &events {
        if let Some(c) = enc.push(ev).unwrap() {
            chunks.push(c);
        }
    }
    let tail = enc.flush();
    if !tail.is_empty() {
        chunks.push(tail);
    }
    Fixture {
        chunks,
        report,
        intervals,
    }
}

fn hello(session: u64, interval: u64) -> Hello {
    Hello {
        session,
        seed: SEED,
        model: MODEL.to_string(),
        protection: "auto".to_string(),
        workload: WORKLOAD.to_string(),
        warmup_branches: WARMUP,
        interval,
        threads: 0,
    }
}

/// The load-bearing acceptance property: a session streamed chunk by
/// chunk through a real socket reports **bit-identically** to the
/// offline run — final report and every streamed interval window.
#[test]
fn socket_session_matches_offline_bit_for_bit() {
    let fx = fixture(Some(5_000));
    let server = spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = ServeClient::connect(server.addr()).unwrap();

    let mut handle = client.open(hello(1, 5_000)).unwrap();
    let mut windows = Vec::new();
    for chunk in &fx.chunks {
        windows.extend(handle.send_chunk(chunk).unwrap());
    }
    let (report, tail) = handle.finish().unwrap();
    windows.extend(tail);

    assert_eq!(report.oae.to_bits(), fx.report.oae.to_bits());
    assert_eq!(
        report.direction_rate.to_bits(),
        fx.report.direction_rate.to_bits()
    );
    assert_eq!(
        report.target_rate.to_bits(),
        fx.report.target_rate.to_bits()
    );
    assert_eq!(report.branches, fx.report.branches);
    assert_eq!(report.mispredictions, fx.report.mispredictions);
    assert_eq!(report.evictions, fx.report.evictions);
    assert_eq!(report.flushes, fx.report.flushes);
    assert_eq!(report.rerandomizations, fx.report.rerandomizations);
    assert_eq!(report.model, fx.report.model);
    assert_eq!(report.protection, fx.report.protection);
    assert_eq!(report.workload, fx.report.workload);
    assert_eq!(windows, fx.intervals);

    drop(client);
    server.shutdown();
}

/// Reads server frames off a raw socket until one decodes (or EOF).
fn read_frame(stream: &mut TcpStream, frames: &mut FrameReader) -> Option<ServerMsg> {
    let mut buf = [0u8; 4096];
    loop {
        if let Ok(Some(body)) = frames.next_frame() {
            return Some(ServerMsg::decode(&body).unwrap());
        }
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return None,
            Ok(n) => frames.extend(&buf[..n]),
        }
    }
}

/// Malicious clients are contained: an oversized declared frame length
/// kills only its own connection, a quota overflow kills only its own
/// session, an unknown-session chunk is answered and survived — all
/// while an unrelated victim session on another connection streams to a
/// bit-identical report.
#[test]
fn malicious_clients_cannot_kill_unrelated_sessions() {
    let fx = fixture(None);
    let server = spawn(
        "127.0.0.1:0",
        ServerConfig {
            max_buffered_per_conn: 64 << 10,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // The victim: a well-behaved session that stays open throughout.
    let victim = ServeClient::connect(addr).unwrap();
    let mut victim_session = victim.open(hello(1, 0)).unwrap();
    let mid = fx.chunks.len() / 2;
    for chunk in &fx.chunks[..mid] {
        victim_session.send_chunk(chunk).unwrap();
    }

    // Attacker 1: declares a frame length far beyond the cap. The server
    // must answer a connection-level BadFrame error and close — without
    // ever buffering the phantom payload.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        let mut wire = Vec::new();
        stbpu_trace::binfmt::push_varint(&mut wire, u64::MAX / 2);
        s.write_all(&wire).unwrap();
        let mut frames = FrameReader::new();
        match read_frame(&mut s, &mut frames) {
            Some(ServerMsg::Error { session, code, .. }) => {
                assert_eq!(session, 0);
                assert_eq!(code, ErrorCode::BadFrame);
            }
            other => panic!("expected connection-level BadFrame, got {other:?}"),
        }
        // The connection is closed afterwards.
        assert!(read_frame(&mut s, &mut frames).is_none());
    }

    // Attacker 2: a single chunk bigger than the whole connection quota.
    // Its session dies with QuotaBuffered; the connection survives and
    // can open another session.
    {
        let attacker = ServeClient::connect(addr).unwrap();
        let mut sess = attacker.open(hello(1, 0)).unwrap();
        let blob = vec![0u8; 80 << 10];
        let mut outcome = sess.send_chunk(&blob);
        for _ in 0..100 {
            if outcome.is_err() {
                break;
            }
            // The teardown error arrives asynchronously; poke until the
            // handle drains it.
            std::thread::sleep(Duration::from_millis(10));
            outcome = sess.send_chunk(&[]);
        }
        match outcome {
            Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::QuotaBuffered),
            other => panic!("expected QuotaBuffered teardown, got {other:?}"),
        }
        // Same connection, fresh session id: still serviceable.
        let fresh = attacker.open(hello(2, 0)).unwrap();
        fresh.close().unwrap();
    }

    // Attacker 3: addresses a session that was never opened. The server
    // answers UnknownSession and the connection keeps working.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        let mut wire = Vec::new();
        ClientMsg::Hello(hello(7, 0)).encode(&mut wire);
        ClientMsg::TraceChunk {
            session: 99,
            bytes: vec![1, 2, 3],
        }
        .encode(&mut wire);
        s.write_all(&wire).unwrap();
        let mut frames = FrameReader::new();
        match read_frame(&mut s, &mut frames) {
            Some(ServerMsg::HelloAck { session: 7 }) => {}
            other => panic!("expected HelloAck for 7, got {other:?}"),
        }
        match read_frame(&mut s, &mut frames) {
            Some(ServerMsg::Error { session, code, .. }) => {
                assert_eq!(session, 99);
                assert_eq!(code, ErrorCode::UnknownSession);
            }
            other => panic!("expected UnknownSession for 99, got {other:?}"),
        }
        // Still alive: a second Hello on the same connection is acked.
        let mut wire = Vec::new();
        ClientMsg::Hello(hello(8, 0)).encode(&mut wire);
        s.write_all(&wire).unwrap();
        match read_frame(&mut s, &mut frames) {
            Some(ServerMsg::HelloAck { session: 8 }) => {}
            other => panic!("expected HelloAck for 8, got {other:?}"),
        }
    }

    // The victim finishes and still matches offline bit-for-bit.
    for chunk in &fx.chunks[mid..] {
        victim_session.send_chunk(chunk).unwrap();
    }
    let (report, _) = victim_session.finish().unwrap();
    assert_eq!(report.oae.to_bits(), fx.report.oae.to_bits());
    assert_eq!(report.mispredictions, fx.report.mispredictions);

    drop(victim);
    server.shutdown();
}

/// Session-count quota: the N+1th concurrent Hello is refused with
/// QuotaSessions, duplicate ids are refused (locally by the client
/// library, with DuplicateSession by the server for raw peers) without
/// disturbing the live session, and closing one session frees its slot.
#[test]
fn session_quota_and_duplicate_ids_are_enforced() {
    let fx = fixture(None);
    let server = spawn(
        "127.0.0.1:0",
        ServerConfig {
            max_sessions_per_conn: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let client = ServeClient::connect(server.addr()).unwrap();

    let a = client.open(hello(1, 0)).unwrap();
    let mut b = client.open(hello(2, 0)).unwrap();
    match client.open(hello(3, 0)) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::QuotaSessions),
        other => panic!("expected QuotaSessions, got {other:?}"),
    }
    // A duplicate id is refused locally, before any frame goes out…
    match client.open(hello(2, 0)) {
        Err(ServeError::Protocol(m)) => assert!(m.contains("already open"), "{m}"),
        other => panic!("expected a local duplicate-id refusal, got {other:?}"),
    }
    // …and the live session it collided with keeps its frame route: it
    // still streams to a bit-identical report instead of going deaf.
    for chunk in &fx.chunks {
        b.send_chunk(chunk).unwrap();
    }
    let (report, _) = b.finish().unwrap();
    assert_eq!(report.oae.to_bits(), fx.report.oae.to_bits());

    // Raw peers that bypass the client library still get the server's
    // own DuplicateSession answer.
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let mut wire = Vec::new();
        ClientMsg::Hello(hello(5, 0)).encode(&mut wire);
        ClientMsg::Hello(hello(5, 0)).encode(&mut wire);
        s.write_all(&wire).unwrap();
        let mut frames = FrameReader::new();
        match read_frame(&mut s, &mut frames) {
            Some(ServerMsg::HelloAck { session: 5 }) => {}
            other => panic!("expected HelloAck for 5, got {other:?}"),
        }
        match read_frame(&mut s, &mut frames) {
            Some(ServerMsg::Error { session, code, .. }) => {
                assert_eq!(session, 5);
                assert_eq!(code, ErrorCode::DuplicateSession);
            }
            other => panic!("expected DuplicateSession for 5, got {other:?}"),
        }
    }
    a.close().unwrap();
    // Closing is asynchronous on the server; retry briefly.
    let mut freed = false;
    for _ in 0..50 {
        std::thread::sleep(Duration::from_millis(20));
        match client.open(hello(4, 0)) {
            Ok(h) => {
                h.close().unwrap();
                freed = true;
                break;
            }
            Err(ServeError::Remote {
                code: ErrorCode::QuotaSessions,
                ..
            }) => continue,
            other => panic!("expected the freed slot to admit a session, got {other:?}"),
        }
    }
    assert!(freed, "closed session never freed its quota slot");

    drop(client);
    server.shutdown();
}

/// A client that streams work but never reads its socket must not wedge
/// the daemon: outbound frames are never written under the global state
/// lock, and the write timeout tears the stalled connection down. With
/// a single worker (the worst case for starvation), a victim on another
/// connection still streams to a bit-identical report.
#[test]
fn non_reading_client_cannot_wedge_the_daemon() {
    let fx = fixture(None);
    let server = spawn(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            write_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // The stalled peer: an interval window every branch makes the
    // server push hundreds of kilobytes of IntervalRecord frames back
    // at a socket nobody reads, jamming its writes once the kernel
    // buffers fill.
    let mut stalled = TcpStream::connect(addr).unwrap();
    let mut wire = Vec::new();
    ClientMsg::Hello(hello(1, 1)).encode(&mut wire);
    for chunk in &fx.chunks {
        ClientMsg::TraceChunk {
            session: 1,
            bytes: chunk.clone(),
        }
        .encode(&mut wire);
    }
    ClientMsg::Flush { session: 1 }.encode(&mut wire);
    stalled.write_all(&wire).unwrap();
    // Deliberately never read from `stalled`.

    let victim = ServeClient::connect(addr).unwrap();
    let mut session = victim.open(hello(1, 0)).unwrap();
    for chunk in &fx.chunks {
        session.send_chunk(chunk).unwrap();
    }
    let (report, _) = session.finish().unwrap();
    assert_eq!(report.oae.to_bits(), fx.report.oae.to_bits());
    assert_eq!(report.branches, fx.report.branches);

    drop(stalled);
    drop(victim);
    server.shutdown();
}

/// Sessions that stop sending are reaped with IdleTimeout; an active
/// session on the same server is untouched.
#[test]
fn idle_sessions_are_reaped() {
    let fx = fixture(None);
    let server = spawn(
        "127.0.0.1:0",
        ServerConfig {
            idle_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let client = ServeClient::connect(server.addr()).unwrap();
    let idle = client.open(hello(1, 0)).unwrap();

    // An active session outlives the sweep by streaming slowly: total
    // stream time comfortably exceeds idle_timeout + sweep period.
    let active_client = ServeClient::connect(server.addr()).unwrap();
    let mut active = active_client.open(hello(1, 0)).unwrap();
    for chunk in &fx.chunks {
        active.send_chunk(chunk).unwrap();
        std::thread::sleep(Duration::from_millis(25));
    }

    // The idle one is gone: the reaper's error beats the Flush reply.
    match idle.finish() {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::IdleTimeout),
        other => panic!("expected IdleTimeout, got {other:?}"),
    }
    let (report, _) = active.finish().unwrap();
    assert_eq!(report.oae.to_bits(), fx.report.oae.to_bits());

    drop(client);
    drop(active_client);
    server.shutdown();
}

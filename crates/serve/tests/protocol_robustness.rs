//! Adversarial-input properties for the wire layer: arbitrary bytes,
//! truncated frames, and hostile declared lengths must produce
//! positioned errors (or clean "need more") — never a panic, never an
//! over-read past the cap.

use proptest::prelude::*;
use stbpu_serve::protocol::{ClientMsg, FrameReader, Hello, ServerMsg, MAX_FRAME};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary bytes through the frame splitter: every outcome is a
    /// frame, a "need more", or a positioned error — and any frames that
    /// do come out go through both decoders without panicking.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..4096),
        chunk in 1usize..128,
    ) {
        let mut r = FrameReader::new();
        'outer: for c in bytes.chunks(chunk) {
            r.extend(c);
            loop {
                match r.next_frame() {
                    Ok(Some(body)) => {
                        // Frame bodies decode or error, never panic.
                        let _ = ClientMsg::decode(&body);
                        let _ = ServerMsg::decode(&body);
                    }
                    Ok(None) => break,
                    Err(e) => {
                        // The offset must point inside what we fed.
                        prop_assert!(e.offset() <= bytes.len() as u64);
                        break 'outer;
                    }
                }
            }
        }
    }

    /// Truncating a valid frame stream at any byte yields the frames
    /// that fit and then a clean "need more" — never an error, never a
    /// phantom frame.
    #[test]
    fn truncated_streams_never_yield_partial_frames(cut_seed in any::<u64>()) {
        let mut wire = Vec::new();
        ClientMsg::Hello(Hello {
            session: 3,
            seed: 9,
            model: "st_skl".to_string(),
            protection: "auto".to_string(),
            workload: "w".to_string(),
            warmup_branches: 100,
            interval: 0,
            threads: 0,
        })
        .encode(&mut wire);
        ClientMsg::TraceChunk { session: 3, bytes: vec![0u8; 100] }.encode(&mut wire);
        ClientMsg::Flush { session: 3 }.encode(&mut wire);
        let cut = (cut_seed % wire.len() as u64) as usize;

        let mut r = FrameReader::new();
        r.extend(&wire[..cut]);
        let mut whole = 0;
        while let Some(body) = r.next_frame().expect("valid prefix never errors") {
            ClientMsg::decode(&body).expect("whole frames decode");
            whole += 1;
        }
        prop_assert!(whole <= 3);
        // Feeding the remainder always completes all three frames.
        r.extend(&wire[cut..]);
        while r.next_frame().expect("completed stream").is_some() {
            whole += 1;
        }
        prop_assert_eq!(whole, 3);
    }

    /// Every declared length above the cap is rejected immediately, for
    /// any hostile length value up to u64::MAX.
    #[test]
    fn hostile_lengths_rejected_before_buffering(extra in any::<u64>()) {
        let hostile = (MAX_FRAME as u64).saturating_add(extra.max(1));
        let mut wire = Vec::new();
        stbpu_trace::binfmt::push_varint(&mut wire, hostile);
        let mut r = FrameReader::new();
        r.extend(&wire);
        let e = r.next_frame().expect_err("over-cap length must error");
        prop_assert_eq!(e.offset(), 0);
    }
}

/// Mutating any single byte of a valid `Hello` frame body either still
/// decodes (the mutation hit a don't-care bit) or errors — deterministic
/// sweep, no panics, no over-reads.
#[test]
fn hello_single_byte_corruption_never_panics() {
    let mut wire = Vec::new();
    ClientMsg::Hello(Hello {
        session: 200,
        seed: 1,
        model: "st_skl@r=0.05".to_string(),
        protection: "stbpu".to_string(),
        workload: "541.leela".to_string(),
        warmup_branches: 12_000,
        interval: 4_096,
        threads: 4,
    })
    .encode(&mut wire);
    let mut clean = FrameReader::new();
    clean.extend(&wire);
    let body = clean.next_frame().unwrap().unwrap();

    for i in 0..body.len() {
        for flip in [0x01u8, 0x80, 0xff] {
            let mut mutated = body.clone();
            mutated[i] ^= flip;
            let _ = ClientMsg::decode(&mutated); // must not panic
        }
    }
}

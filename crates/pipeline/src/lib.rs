//! Cycle-approximate out-of-order CPU model — the gem5 DerivO3 substitute
//! for the Figure 4/5/6 experiments (Section VII-B2, Table IV).
//!
//! Rather than porting gem5, this crate implements an interval-style
//! timing model (in the spirit of Sniper): instructions stream through an
//! 8-issue out-of-order core, and *timing events* charge cycles on top of
//! the steady-state issue rate:
//!
//! * branch mispredictions — full front-end redirect + pipeline refill,
//! * BTB misses on taken branches — fetch bubbles (decode-time redirect),
//! * long-latency loads — exposed memory stalls moderated by the
//!   memory-level parallelism the ROB can extract.
//!
//! This preserves exactly the effect the paper measures: normalized-IPC
//! differences between an ST model and its unprotected counterpart are
//! caused by the extra mispredictions re-randomization introduces, which
//! this model charges at the same rate gem5 would. Absolute IPCs differ
//! from the paper's testbed; shapes are preserved (DESIGN.md §2).
//!
//! SMT mode ([`run_smt`]) interleaves two workloads on one core with a
//! shared BPU model (thread ids 0/1) and round-robin fetch; per-thread
//! IPCs are combined with the harmonic mean as in the paper \[49\].
//!
//! # Example
//!
//! ```
//! use stbpu_pipeline::{run_single, MemoryProfile, PipelineConfig};
//! use stbpu_predictors::skl_baseline;
//! use stbpu_trace::{profiles, TraceGenerator};
//!
//! let p = profiles::se_profile(profiles::by_name("525.x264").unwrap());
//! let trace = TraceGenerator::new(&p, 7).generate(5_000);
//! let mut bpu = skl_baseline();
//! let r = run_single(&mut bpu, &trace, &PipelineConfig::table4(), &MemoryProfile::from(&p));
//! assert!(r.ipc > 0.2 && r.ipc <= 8.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use stbpu_bpu::Bpu;
use stbpu_trace::{Trace, TraceEvent, WorkloadProfile};

/// Core configuration mirroring Table IV.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Issue/retire width (8-issue OoO).
    pub width: usize,
    /// Reorder buffer entries.
    pub rob: usize,
    /// Instruction queue entries.
    pub iq: usize,
    /// Load queue entries.
    pub lq: usize,
    /// Store queue entries.
    pub sq: usize,
    /// Front-end redirect + refill penalty for a misprediction (cycles).
    pub mispredict_penalty: f64,
    /// Fetch bubble for a BTB miss on a taken branch (cycles).
    pub btb_miss_penalty: f64,
    /// L1D hit latency (cycles).
    pub l1_lat: f64,
    /// L2 hit latency (cycles).
    pub l2_lat: f64,
    /// LLC hit latency (cycles).
    pub llc_lat: f64,
    /// DRAM latency (cycles).
    pub mem_lat: f64,
}

impl PipelineConfig {
    /// The Table IV configuration: 8-issue, ROB 192, IQ/LQ/SQ 64/32/32,
    /// 32KB/32KB L1, 256KB L2, 4MB LLC at 3.4 GHz-typical latencies.
    pub fn table4() -> Self {
        PipelineConfig {
            width: 8,
            rob: 192,
            iq: 64,
            lq: 32,
            sq: 32,
            mispredict_penalty: 14.0,
            btb_miss_penalty: 5.0,
            l1_lat: 4.0,
            l2_lat: 14.0,
            llc_lat: 42.0,
            mem_lat: 220.0,
        }
    }

    /// A one-line summary for harness output.
    pub fn describe(&self) -> String {
        format!(
            "{}-issue OoO, ROB {}, IQ/LQ/SQ {}/{}/{}, redirect {} cyc",
            self.width, self.rob, self.iq, self.lq, self.sq, self.mispredict_penalty
        )
    }
}

/// Memory behaviour of a workload (derived from its profile).
#[derive(Clone, Copy, Debug)]
pub struct MemoryProfile {
    /// Fraction of non-branch instructions that are loads.
    pub load_fraction: f64,
    /// L1D miss probability per load.
    pub l1_miss: f64,
    /// L2 miss probability given an L1 miss.
    pub l2_miss: f64,
    /// LLC miss probability given an L2 miss.
    pub llc_miss: f64,
}

impl From<&WorkloadProfile> for MemoryProfile {
    fn from(p: &WorkloadProfile) -> Self {
        MemoryProfile {
            load_fraction: p.load_fraction,
            l1_miss: p.l1_miss,
            l2_miss: p.l2_miss,
            llc_miss: p.llc_miss,
        }
    }
}

impl MemoryProfile {
    /// Expected *exposed* stall cycles per load: miss latencies scaled
    /// down by the memory-level parallelism the ROB can extract.
    fn stall_per_load(&self, cfg: &PipelineConfig) -> f64 {
        // MLP: how many misses the 192-entry ROB typically overlaps.
        let mlp = 3.0_f64;
        let p_l2 = self.l1_miss * (1.0 - self.l2_miss);
        let p_llc = self.l1_miss * self.l2_miss * (1.0 - self.llc_miss);
        let p_mem = self.l1_miss * self.l2_miss * self.llc_miss;
        (p_l2 * cfg.l2_lat + p_llc * cfg.llc_lat + p_mem * cfg.mem_lat) / mlp
    }
}

/// Result of one pipeline run.
#[derive(Clone, Debug)]
pub struct PipeReport {
    /// Model name.
    pub model: String,
    /// Workload name.
    pub workload: String,
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles simulated.
    pub cycles: f64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Direction prediction rate.
    pub direction_rate: f64,
    /// Target prediction rate.
    pub target_rate: f64,
    /// Mispredictions.
    pub mispredictions: u64,
    /// Secret-token re-randomizations (0 for unprotected models).
    pub rerandomizations: u64,
}

/// Per-thread timing accumulator.
#[derive(Clone, Copy, Debug, Default)]
struct ThreadClock {
    instructions: u64,
    cycles: f64,
}

impl ThreadClock {
    #[allow(clippy::too_many_arguments)]
    fn charge_branch(
        &mut self,
        gap: u64,
        width_eff: f64,
        stall_per_load: f64,
        load_fraction: f64,
        mispredicted: bool,
        btb_miss: bool,
        cfg: &PipelineConfig,
    ) {
        let instrs = 1 + gap;
        self.instructions += instrs;
        // Steady-state issue: bounded by effective width and a base CPI
        // floor from dependence chains (empirically ~1/0.75 of width).
        self.cycles += instrs as f64 / (width_eff * 0.75);
        // Exposed memory stalls.
        self.cycles += gap as f64 * load_fraction * stall_per_load;
        // Control-flow penalties.
        if mispredicted {
            self.cycles += cfg.mispredict_penalty + cfg.width as f64 / 2.0;
        } else if btb_miss {
            self.cycles += cfg.btb_miss_penalty;
        }
    }

    fn ipc(&self) -> f64 {
        if self.cycles > 0.0 {
            self.instructions as f64 / self.cycles
        } else {
            0.0
        }
    }
}

/// Runs one workload trace through `model` on a single-threaded core.
pub fn run_single(
    model: &mut dyn Bpu,
    trace: &Trace,
    cfg: &PipelineConfig,
    mem: &MemoryProfile,
) -> PipeReport {
    model.reset_stats();
    let stall = mem.stall_per_load(cfg);
    let mut clock = ThreadClock::default();
    for ev in trace.events() {
        match ev {
            TraceEvent::Branch { rec, .. } => {
                let out = model.process(0, rec);
                clock.charge_branch(
                    rec.gap as u64,
                    cfg.width as f64,
                    stall,
                    mem.load_fraction,
                    out.mispredicted,
                    out.btb_miss,
                    cfg,
                );
            }
            TraceEvent::ContextSwitch { tid, entity } => {
                model.context_switch(*tid as usize, *entity);
            }
            _ => {}
        }
    }
    let s = model.stats();
    PipeReport {
        model: model.name().to_string(),
        workload: trace.name.clone(),
        instructions: clock.instructions,
        cycles: clock.cycles,
        ipc: clock.ipc(),
        direction_rate: s.direction_rate(),
        target_rate: s.target_rate(),
        mispredictions: s.mispredictions,
        rerandomizations: model.rerandomizations(),
    }
}

/// Result of an SMT run: per-thread reports plus the harmonic-mean IPC
/// used by Figure 5 (each workload equally valued \[49\]).
#[derive(Clone, Debug)]
pub struct SmtReport {
    /// Per-thread IPCs.
    pub ipc: [f64; 2],
    /// Harmonic mean of the two IPCs.
    pub hmean_ipc: f64,
    /// Direction prediction rate across both threads.
    pub direction_rate: f64,
    /// Target prediction rate across both threads.
    pub target_rate: f64,
    /// Mispredictions across both threads.
    pub mispredictions: u64,
    /// Secret-token re-randomizations.
    pub rerandomizations: u64,
}

/// Fetch-interleave granularity (branches per thread turn).
const SMT_CHUNK: usize = 32;

/// Runs two workload traces in SMT mode on one core with a shared `model`.
///
/// Threads alternate fetch in chunks; while both threads are active each
/// sees half the issue width (round-robin fetch); after one trace drains,
/// the survivor gets the full width.
pub fn run_smt(
    model: &mut dyn Bpu,
    traces: [&Trace; 2],
    cfg: &PipelineConfig,
    mems: [&MemoryProfile; 2],
) -> SmtReport {
    model.reset_stats();
    let stalls = [mems[0].stall_per_load(cfg), mems[1].stall_per_load(cfg)];
    let mut clocks = [ThreadClock::default(), ThreadClock::default()];
    // Entity separation: each workload is its own process.
    model.context_switch(0, stbpu_bpu::EntityId::user(100));
    model.context_switch(1, stbpu_bpu::EntityId::user(200));

    let mut iters: Vec<_> = traces
        .iter()
        .map(|t| {
            t.events()
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::Branch { rec, .. } => Some(rec),
                    _ => None,
                })
                .peekable()
        })
        .collect();

    let mut active = [true, true];
    let mut t = 0usize;
    while active[0] || active[1] {
        if !active[t] {
            t = 1 - t;
        }
        let both = active[0] && active[1];
        let width_eff = if both {
            cfg.width as f64 / 2.0
        } else {
            cfg.width as f64
        };
        for _ in 0..SMT_CHUNK {
            match iters[t].next() {
                Some(rec) => {
                    let out = model.process(t, rec);
                    clocks[t].charge_branch(
                        rec.gap as u64,
                        width_eff,
                        stalls[t],
                        mems[t].load_fraction,
                        out.mispredicted,
                        out.btb_miss,
                        cfg,
                    );
                }
                None => {
                    active[t] = false;
                    break;
                }
            }
        }
        t = 1 - t;
    }

    let ipc = [clocks[0].ipc(), clocks[1].ipc()];
    let hmean = if ipc[0] > 0.0 && ipc[1] > 0.0 {
        2.0 / (1.0 / ipc[0] + 1.0 / ipc[1])
    } else {
        ipc[0].max(ipc[1])
    };
    let s = model.stats();
    SmtReport {
        ipc,
        hmean_ipc: hmean,
        direction_rate: s.direction_rate(),
        target_rate: s.target_rate(),
        mispredictions: s.mispredictions,
        rerandomizations: model.rerandomizations(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_core::{st_skl, StConfig};
    use stbpu_predictors::skl_baseline;
    use stbpu_trace::{profiles, TraceGenerator};

    fn se_trace(name: &str, n: usize, seed: u64) -> (Trace, MemoryProfile) {
        let p = profiles::se_profile(profiles::by_name(name).unwrap());
        (
            TraceGenerator::new(&p, seed).generate(n),
            MemoryProfile::from(&p),
        )
    }

    #[test]
    fn ipc_is_bounded_by_width() {
        let (t, mem) = se_trace("548.exchange2", 10_000, 1);
        let mut bpu = skl_baseline();
        let r = run_single(&mut bpu, &t, &PipelineConfig::table4(), &mem);
        assert!(r.ipc > 0.0 && r.ipc <= 8.0, "ipc {}", r.ipc);
        assert!(r.instructions > 10_000);
    }

    #[test]
    fn memory_heavy_workload_has_lower_ipc() {
        let (tl, ml) = se_trace("519.lbm", 10_000, 1); // 10% L1 miss
        let (te, me) = se_trace("548.exchange2", 10_000, 1); // 1% L1 miss
        let cfg = PipelineConfig::table4();
        let mut a = skl_baseline();
        let ra = run_single(&mut a, &tl, &cfg, &ml);
        let mut b = skl_baseline();
        let rb = run_single(&mut b, &te, &cfg, &me);
        assert!(
            ra.ipc < rb.ipc,
            "lbm ({}) should be slower than exchange2 ({})",
            ra.ipc,
            rb.ipc
        );
    }

    #[test]
    fn worse_predictor_means_lower_ipc() {
        // Same trace, same core; a model with a crippling re-randomization
        // rate must lose IPC.
        let (t, mem) = se_trace("541.leela", 15_000, 3);
        let cfg = PipelineConfig::table4();
        let mut base = skl_baseline();
        let rb = run_single(&mut base, &t, &cfg, &mem);
        let mut crippled = st_skl(StConfig::with_r(2e-6), 3); // rerandomize every ~2 misp
        let rc = run_single(&mut crippled, &t, &cfg, &mem);
        assert!(rc.rerandomizations > 100);
        assert!(
            rc.ipc < rb.ipc * 0.97,
            "crippled ST ({}) must lose to baseline ({})",
            rc.ipc,
            rb.ipc
        );
    }

    #[test]
    fn st_with_default_r_tracks_baseline_ipc() {
        let (t, mem) = se_trace("525.x264", 20_000, 5);
        let cfg = PipelineConfig::table4();
        let mut base = skl_baseline();
        let rb = run_single(&mut base, &t, &cfg, &mem);
        let mut st = st_skl(StConfig::default(), 5);
        let rs = run_single(&mut st, &t, &cfg, &mem);
        let norm = rs.ipc / rb.ipc;
        assert!(norm > 0.9 && norm < 1.1, "normalized IPC {norm}");
    }

    #[test]
    fn smt_throughput_between_half_and_full() {
        let (ta, ma) = se_trace("503.bwaves", 8_000, 1);
        let (tb, mb) = se_trace("505.mcf", 8_000, 2);
        let cfg = PipelineConfig::table4();
        let mut bpu = skl_baseline();
        let smt = run_smt(&mut bpu, [&ta, &tb], &cfg, [&ma, &mb]);
        assert!(smt.ipc[0] > 0.0 && smt.ipc[1] > 0.0);
        assert!(smt.hmean_ipc <= smt.ipc[0].max(smt.ipc[1]));
        assert!(smt.hmean_ipc >= smt.ipc[0].min(smt.ipc[1]) * 0.99);
        // Each thread runs slower than it would alone.
        let mut solo = skl_baseline();
        let ra = run_single(&mut solo, &ta, &cfg, &ma);
        assert!(smt.ipc[0] < ra.ipc);
    }

    #[test]
    fn smt_handles_unequal_trace_lengths() {
        let (ta, ma) = se_trace("503.bwaves", 2_000, 1);
        let (tb, mb) = se_trace("505.mcf", 8_000, 2);
        let mut bpu = skl_baseline();
        let smt = run_smt(&mut bpu, [&ta, &tb], &PipelineConfig::table4(), [&ma, &mb]);
        assert!(smt.ipc[0] > 0.0 && smt.ipc[1] > 0.0);
    }

    #[test]
    fn table4_describe_mentions_parameters() {
        let d = PipelineConfig::table4().describe();
        assert!(d.contains("8-issue"));
        assert!(d.contains("ROB 192"));
    }
}

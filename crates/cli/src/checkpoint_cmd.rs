//! `stbpu checkpoint` — inspect `.stck` checkpoint files and create them
//! at exact branch indices (the golden-fixture generator CI uses).

use crate::args::Args;
use crate::Failure;
use stbpu_engine::{
    auto_protection, cut_checkpoints, protection_from_str, ModelRegistry, ShardConfig, Workload,
};
use stbpu_sim::{Checkpoint, Warmup};
use std::path::Path;

pub fn run(rest: &[String]) -> Result<(), Failure> {
    match rest.first().map(String::as_str) {
        Some("inspect") => inspect(&rest[1..]),
        Some("create") => create(&rest[1..]),
        Some(other) => Err(Failure::Usage(format!(
            "unknown checkpoint action '{other}' (inspect|create)"
        ))),
        None => Err(Failure::Usage(
            "usage: stbpu checkpoint inspect FILE [--json] | stbpu checkpoint create ..."
                .to_string(),
        )),
    }
}

fn inspect(rest: &[String]) -> Result<(), Failure> {
    let mut a = Args::new(rest);
    let json = a.flag("--json");
    let files = a.finish()?;
    if files.len() != 1 {
        return Err(Failure::Usage(
            "checkpoint inspect takes exactly one FILE".to_string(),
        ));
    }
    let path = Path::new(&files[0]);
    let bytes = std::fs::read(path).map_err(|e| Failure::Runtime(e.to_string()))?;
    let cp = Checkpoint::from_bytes(&bytes).map_err(|e| Failure::Runtime(e.to_string()))?;

    if json {
        println!(
            "{{\"file\":{},\"file_bytes\":{},\"version\":{},\"model_spec\":{},\"workload\":{},\
             \"protection\":{},\"seed\":{},\"events_consumed\":{},\"branches_seen\":{},\
             \"session_state_bytes\":{},\"model_state_bytes\":{}}}",
            stbpu_engine::minijson::escape(&files[0]),
            bytes.len(),
            stbpu_sim::STCK_VERSION,
            stbpu_engine::minijson::escape(&cp.model_spec),
            stbpu_engine::minijson::escape(&cp.workload),
            stbpu_engine::minijson::escape(cp.protection.label()),
            cp.seed,
            cp.events_consumed,
            cp.branches_seen,
            cp.session_state.len(),
            cp.model_state.len(),
        );
    } else {
        println!(
            "{}: .stck v{} checkpoint, {} bytes (checksum ok)",
            files[0],
            stbpu_sim::STCK_VERSION,
            bytes.len()
        );
        println!("  model        {}", cp.model_spec);
        println!("  workload     {}", cp.workload);
        println!("  protection   {}", cp.protection.label());
        println!("  seed         {}", cp.seed);
        println!(
            "  position     {} events consumed, {} branches seen",
            cp.events_consumed, cp.branches_seen
        );
        println!(
            "  state        {} session bytes + {} model bytes",
            cp.session_state.len(),
            cp.model_state.len()
        );
    }
    Ok(())
}

fn create(rest: &[String]) -> Result<(), Failure> {
    let mut a = Args::new(rest);
    let model_spec = a
        .opt("--model")?
        .ok_or_else(|| Failure::Usage("--model is required".to_string()))?;
    let workload_name = a.opt("--workload")?;
    let trace_file = a.opt("--trace-file")?;
    let protection = a.opt("--protection")?;
    let at: u64 = a
        .opt_parse("--at-branches", "an integer")?
        .ok_or_else(|| Failure::Usage("--at-branches is required".to_string()))?;
    let out = a
        .opt("--out")?
        .ok_or_else(|| Failure::Usage("--out is required".to_string()))?;
    let branches: usize = a.opt_parse("--branches", "an integer")?.unwrap_or(120_000);
    let seed: u64 = a.opt_parse("--seed", "an integer")?.unwrap_or(42);
    let threads: Option<usize> = a.opt_parse("--threads", "an integer")?;
    let interval: Option<u64> = a.opt_parse("--interval", "an integer")?;
    let warmup_frac: Option<f64> = a.opt_parse("--warmup", "a number")?;
    let warmup_branches: Option<u64> = a.opt_parse("--warmup-branches", "an integer")?;
    a.finish_empty()?;

    let workload = match (workload_name, trace_file) {
        (Some(_), Some(_)) => {
            return Err(Failure::Usage(
                "--workload and --trace-file are mutually exclusive".to_string(),
            ))
        }
        (None, Some(path)) => Workload::File(path.into()),
        (name, None) => Workload::Named(name.unwrap_or_else(|| "541.leela".to_string())),
    };
    workload.validate().map_err(Failure::from)?;
    let policy = match protection.as_deref() {
        None | Some("auto") => auto_protection(&model_spec),
        Some(p) => protection_from_str(p).map_err(Failure::from)?,
    };
    let warmup = match (warmup_branches, warmup_frac) {
        (Some(_), Some(_)) => {
            return Err(Failure::Usage(
                "--warmup and --warmup-branches are mutually exclusive".to_string(),
            ))
        }
        (Some(b), None) => Warmup::Branches(b),
        (None, f) => Warmup::Fraction(f.unwrap_or(0.1)),
    };

    let registry = ModelRegistry::standard();
    let cfg = ShardConfig {
        shards: 1, // unused by cut_checkpoints
        warmup,
        interval,
        threads,
        checkpoint_dir: None,
    };
    let cps = cut_checkpoints(
        &registry,
        &model_spec,
        policy,
        seed,
        &workload,
        branches,
        &cfg,
        &[at],
    )
    .map_err(Failure::from)?;
    let cp = cps
        .into_iter()
        .next()
        .ok_or_else(|| Failure::Runtime("no checkpoint produced".to_string()))?;
    cp.save(Path::new(&out))
        .map_err(|e| Failure::Runtime(e.to_string()))?;
    eprintln!(
        "wrote {out}: {} at branch {} ({} events consumed)",
        cp.model_spec, cp.branches_seen, cp.events_consumed
    );
    Ok(())
}

//! `stbpu analyze` — the workspace static-analysis gate.
//!
//! Thin CLI shell over [`stbpu_analyze`]: resolve the workspace root,
//! load the allowlist, run every lint over every crate's `src/` tree and
//! render the report. Exit code 0 means clean (stale allowlist entries
//! warn but do not fail); any non-allowlisted finding exits 1 with
//! positioned diagnostics, which is what makes the CI step a hard gate.

use crate::args::Args;
use crate::Failure;
use stbpu_analyze::{analyze_workspace, find_workspace_root, Allowlist, LintId};
use std::path::PathBuf;

pub fn run(rest: &[String]) -> Result<(), Failure> {
    let mut a = Args::new(rest);
    let list_lints = a.flag("--list-lints");
    let format = a.opt("--format")?.unwrap_or_else(|| "human".to_string());
    let root = a.opt("--root")?;
    let allow_flag = a.opt("--allowlist")?;
    let out = a.opt("--out")?;
    a.finish_empty()?;

    if list_lints {
        println!("lints ({}):", LintId::ALL.len());
        for l in LintId::ALL {
            println!("  {:<14} {}", l.name(), l.summary());
            println!("  {:<14}   why: {}", "", l.rationale());
            let scope = l.path_scope();
            if scope.is_empty() {
                println!("  {:<14}   scope: every analyzed file", "");
            } else {
                println!("  {:<14}   scope: {}", "", scope.join(", "));
            }
        }
        return Ok(());
    }

    if format != "human" && format != "json" {
        return Err(Failure::Usage(format!(
            "unknown format '{format}' (human|json)"
        )));
    }

    let root = match root {
        Some(r) => {
            let p = PathBuf::from(r);
            if !p.join("Cargo.toml").is_file() {
                return Err(Failure::Usage(format!(
                    "--root {}: no Cargo.toml there",
                    p.display()
                )));
            }
            p
        }
        None => {
            let cwd = std::env::current_dir().map_err(|e| {
                Failure::Runtime(format!("cannot determine working directory: {e}"))
            })?;
            find_workspace_root(&cwd).ok_or_else(|| {
                Failure::Usage(
                    "no workspace root found above the working directory; \
                     run from inside the repo or pass --root"
                        .to_string(),
                )
            })?
        }
    };

    let allow_path = allow_flag
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("ci").join("analyze-allow.toml"));
    let allow = Allowlist::load(&allow_path).map_err(Failure::Runtime)?;

    let report = analyze_workspace(&root, &allow).map_err(Failure::Runtime)?;

    let rendered = match format.as_str() {
        "json" => report.render_json(),
        _ => report.render_human(),
    };
    match out {
        Some(path) => std::fs::write(&path, &rendered)
            .map_err(|e| Failure::Runtime(format!("write {path}: {e}")))?,
        None => print!("{rendered}"),
    }

    if report.is_clean() {
        Ok(())
    } else {
        Err(Failure::Runtime(format!(
            "{} non-allowlisted finding{} (allowlist: {})",
            report.findings.len(),
            if report.findings.len() == 1 { "" } else { "s" },
            allow_path.display()
        )))
    }
}

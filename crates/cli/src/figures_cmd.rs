//! `stbpu figures` — reproduce the paper's figures and tables through the
//! shared `stbpu_bench::figures` implementations (bit-identical with the
//! historical `cargo run --bin` shims for identical knobs).

use crate::args::Args;
use crate::{help, Failure};
use stbpu_bench::{figures, Knobs};

pub fn run(rest: &[String]) -> Result<(), Failure> {
    let mut a = Args::new(rest);
    let all = a.flag("--all");
    let quick = a.flag("--quick");
    let list = a.flag("--list");
    let branches: Option<usize> = a.opt_parse("--branches", "an integer")?;
    let seed: Option<u64> = a.opt_parse("--seed", "an integer")?;
    let workload = a.opt("--workload")?;
    let windows: Option<usize> = a.opt_parse("--windows", "an integer")?;
    let names = a.finish()?;

    if list {
        help::print_figures();
        return Ok(());
    }

    let mut knobs = if quick {
        Knobs::quick()
    } else {
        Knobs::from_env()
    };
    if let Some(b) = branches {
        knobs.branches = b;
    }
    if let Some(s) = seed {
        knobs.seed = s;
    }
    if let Some(w) = workload {
        if stbpu_trace::profiles::by_name(&w).is_none() {
            return Err(Failure::from(stbpu_engine::EngineError::UnknownWorkload(w)));
        }
        knobs.workload = w;
    }
    if let Some(n) = windows {
        knobs.windows = n;
    }

    let selected: Vec<&figures::Figure> = if all {
        if !names.is_empty() {
            return Err(Failure::Usage(
                "--all and explicit figure names are mutually exclusive".to_string(),
            ));
        }
        figures::ALL.iter().collect()
    } else if names.is_empty() {
        return Err(Failure::Usage(
            "name one or more figures, or pass --all (stbpu figures --list)".to_string(),
        ));
    } else {
        names
            .iter()
            .map(|n| {
                figures::by_name(n).ok_or_else(|| {
                    Failure::Usage(format!(
                        "unknown figure '{n}' (known: {})",
                        figures::ALL
                            .iter()
                            .map(|f| f.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                })
            })
            .collect::<Result<_, _>>()?
    };

    let banner = selected.len() > 1;
    for (i, f) in selected.iter().enumerate() {
        if banner {
            // Stderr, so stdout stays bit-identical with the single-figure
            // and `cargo run --bin` outputs.
            eprintln!("== {} ==", f.name);
        }
        (f.run)(&knobs);
        if banner && i + 1 < selected.len() {
            println!();
        }
    }
    Ok(())
}

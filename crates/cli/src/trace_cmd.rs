//! `stbpu trace` — generate, inspect and convert trace files in any
//! on-disk format (line text, compact binary `.stbt`, or CBP-style
//! championship `.cbp`), plus the SimPoint pipeline (`simpoint`) that
//! distills a stream into a `.stbp` phase file.
//!
//! Input format is always auto-detected by magic (`inspect` also
//! recognizes `.stbp` phase files); `convert --from` additionally
//! *asserts* the detected input format. Output format follows the
//! destination extension (`.stbt` = binary, `.cbp` = CBP) unless
//! `--format` overrides it. Conversions between line and binary are
//! lossless in both directions, and `cbp → .stbt → cbp` round-trips
//! byte-identically (the CI golden fixtures gate exactly this); note the
//! `.cbp` format itself is branch-only and single-thread, so converting
//! *into* it drops context/mode-switch and interrupt records.

use crate::args::Args;
use crate::Failure;
use stbpu_engine::{build_phase_file, ModelRegistry, PhaseBuildOptions, Workload};
use stbpu_phases::{ClusterConfig, PhaseFile, STBP_MAGIC};
use stbpu_trace::{
    open_trace_file, open_trace_stream, profiles, EventSource, TraceEvent, TraceFileFormat,
    TraceFileWriter, TraceGenerator,
};
use std::io::BufWriter;
use std::path::Path;
use std::time::Instant;

pub fn run(rest: &[String]) -> Result<(), Failure> {
    match rest.first().map(String::as_str) {
        Some("generate") => generate(&rest[1..]),
        Some("inspect") => inspect(&rest[1..]),
        Some("convert") => convert(&rest[1..]),
        Some("simpoint") => simpoint(&rest[1..]),
        Some(other) => Err(Failure::Usage(format!(
            "unknown trace action '{other}' (generate|inspect|convert|simpoint)"
        ))),
        None => Err(Failure::Usage(
            "trace needs an action: generate|inspect|convert|simpoint".to_string(),
        )),
    }
}

/// Resolves the output format: an explicit `--format` wins, otherwise the
/// destination extension decides (`.stbt` = binary, `.cbp` = CBP,
/// anything else line).
fn out_format(flag: Option<&str>, out: &str) -> Result<TraceFileFormat, Failure> {
    match flag {
        None | Some("auto") => Ok(TraceFileFormat::from_extension(Path::new(out))),
        Some("line") => Ok(TraceFileFormat::Line),
        Some("binary") => Ok(TraceFileFormat::Binary),
        Some("cbp") => Ok(TraceFileFormat::Cbp),
        Some(other) => Err(Failure::Usage(format!(
            "unknown format '{other}' (line|binary|cbp|auto)"
        ))),
    }
}

/// Parses a `--from` input-format assertion: `auto` (or absent) accepts
/// whatever the magic says, a concrete name must match it.
fn in_format(flag: Option<&str>) -> Result<Option<TraceFileFormat>, Failure> {
    match flag {
        None | Some("auto") => Ok(None),
        Some("line") => Ok(Some(TraceFileFormat::Line)),
        Some("binary") => Ok(Some(TraceFileFormat::Binary)),
        Some("cbp") => Ok(Some(TraceFileFormat::Cbp)),
        Some(other) => Err(Failure::Usage(format!(
            "unknown input format '{other}' (line|binary|cbp|auto)"
        ))),
    }
}

/// Streams a synthetic workload to a trace file in O(1) memory: the
/// generator source is drained in batches through a [`TraceFileWriter`],
/// so any `--branches` works without materializing the event vector.
fn generate(rest: &[String]) -> Result<(), Failure> {
    let mut a = Args::new(rest);
    let workload = a
        .opt("--workload")?
        .ok_or_else(|| Failure::Usage("--workload is required".to_string()))?;
    let out = a
        .opt("--out")?
        .ok_or_else(|| Failure::Usage("--out is required".to_string()))?;
    let branches: usize = a.opt_parse("--branches", "an integer")?.unwrap_or(120_000);
    let seed: u64 = a.opt_parse("--seed", "an integer")?.unwrap_or(42);
    let format = a.opt("--format")?;
    a.finish_empty()?;
    let format = out_format(format.as_deref(), &out)?;

    let profile = profiles::by_name(&workload).ok_or_else(|| {
        Failure::from(stbpu_engine::EngineError::UnknownWorkload(workload.clone()))
    })?;
    let mut source = TraceGenerator::new(profile, seed).into_source(branches);
    let file = std::fs::File::create(&out)?;
    // One reused record buffer for the whole stream, batched pulls from
    // the generator: no per-event allocation on either side.
    let mut w = TraceFileWriter::new(format, BufWriter::new(file));
    w.header(source.name(), source.branch_hint(), source.thread_count())?;
    let mut events: u64 = 0;
    source.for_each_batch(4_096, |batch| {
        for ev in batch {
            w.event(ev)?;
        }
        events += batch.len() as u64;
        Ok::<(), Failure>(())
    })?;
    w.flush()?;
    eprintln!("wrote {events} events ({branches} branches, {format} format) to {out}");
    Ok(())
}

/// Streams a trace of either format, reporting the detected format, size
/// (when the input has one), declared metadata, exact counts and scan
/// throughput. The input may be a regular file, `-` for stdin, or a
/// non-seekable path (pipe/FIFO/device) — the latter two stream with an
/// unknown byte size.
fn inspect(rest: &[String]) -> Result<(), Failure> {
    let mut a = Args::new(rest);
    let json = a.flag("--json");
    let ops = a.finish()?;
    let [path] = &ops[..] else {
        return Err(Failure::Usage(
            "inspect takes exactly one FILE operand ('-' reads stdin)".to_string(),
        ));
    };

    if path == "-" {
        let src = open_trace_stream(std::io::stdin().lock(), "<stdin>")
            .map_err(|e| Failure::Runtime(e.to_string()))?;
        let format = src.format();
        return inspect_source(src, format, None, "<stdin>", json);
    }
    let meta = std::fs::metadata(path)?;
    if meta.is_file() {
        // Phase files share the trace-inspection entry point: sniff the
        // 4-byte magic before handing the file to the trace openers,
        // which would reject "STBP" as an unknown format.
        if sniff_stbp(path)? {
            return inspect_stbp(path, meta.len(), json);
        }
        let src = open_trace_file(Path::new(path)).map_err(|e| Failure::Runtime(e.to_string()))?;
        let format = src.format();
        inspect_source(src, format, Some(meta.len()), path, json)
    } else {
        // A pipe, FIFO or device: readable but neither seekable nor
        // sized, so stream it like stdin.
        let file = std::fs::File::open(path)?;
        let src = open_trace_stream(file, path).map_err(|e| Failure::Runtime(e.to_string()))?;
        let format = src.format();
        inspect_source(src, format, None, path, json)
    }
}

/// The format-agnostic inspect scan: counts every record class from any
/// event source; `bytes` is `None` when the input has no knowable size.
fn inspect_source<S: EventSource>(
    mut src: S,
    format: TraceFileFormat,
    bytes: Option<u64>,
    path: &str,
    json: bool,
) -> Result<(), Failure> {
    let declared_branches = src.branch_hint();
    let declared_threads = src.thread_count();

    let (mut branches, mut taken, mut switches, mut modes, mut interrupts) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut max_tid = 0u8;
    // Scan-progress cadence: frequent enough to show life on 100M-record
    // files, silent on anything CI-sized.
    const PROGRESS_EVERY: u64 = 8_000_000;
    let mut next_progress = PROGRESS_EVERY;
    let start = Instant::now();
    src.for_each_batch(4_096, |batch| {
        for ev in batch {
            match *ev {
                TraceEvent::Branch { tid, rec } => {
                    branches += 1;
                    taken += rec.taken as u64;
                    max_tid = max_tid.max(tid);
                }
                TraceEvent::ContextSwitch { tid, .. } => {
                    switches += 1;
                    max_tid = max_tid.max(tid);
                }
                TraceEvent::ModeSwitch { tid, .. } => {
                    modes += 1;
                    max_tid = max_tid.max(tid);
                }
                TraceEvent::Interrupt { tid } => {
                    interrupts += 1;
                    max_tid = max_tid.max(tid);
                }
            }
        }
        // Scan progress for paper-scale files (stderr, never in --json).
        let events = branches + switches + modes + interrupts;
        if events >= next_progress {
            eprintln!(
                "scanning: {events} records ({:.1}M records/s)",
                events as f64 / start.elapsed().as_secs_f64().max(1e-9) / 1e6
            );
            next_progress += PROGRESS_EVERY;
        }
        Ok::<(), Failure>(())
    })?;
    let elapsed = start.elapsed().as_secs_f64();
    let name = src.name().to_string();
    let events = branches + switches + modes + interrupts;
    let records_per_s = events as f64 / elapsed.max(1e-9);
    let taken_rate = if branches > 0 {
        taken as f64 / branches as f64
    } else {
        0.0
    };

    if json {
        println!(
            "{{\"name\":{},\"format\":\"{format}\",\"bytes\":{},\
             \"declared_branches\":{},\"declared_threads\":{declared_threads},\
             \"events\":{events},\"branches\":{branches},\"taken_rate\":{taken_rate:.6},\
             \"context_switches\":{switches},\"mode_switches\":{modes},\
             \"interrupts\":{interrupts},\"max_tid\":{max_tid},\
             \"records_per_s\":{records_per_s:.0}}}",
            stbpu_engine::minijson::escape(&name),
            bytes
                .map(|b| b.to_string())
                .unwrap_or_else(|| "null".to_string()),
            declared_branches
                .map(|b| b.to_string())
                .unwrap_or_else(|| "null".to_string()),
        );
    } else {
        match bytes {
            Some(b) => println!("{path}: trace '{name}' ({format} format, {b} bytes)"),
            None => println!("{path}: trace '{name}' ({format} format, size unknown)"),
        }
        match declared_branches {
            Some(b) => println!("  declared: {b} branches, {declared_threads} threads"),
            None => println!("  declared: no metadata headers (threads {declared_threads})"),
        }
        println!("  events:   {events} total — {branches} branches (taken rate {taken_rate:.4}),");
        println!(
            "            {switches} context switches, {modes} mode switches, {interrupts} interrupts"
        );
        println!(
            "  scan:     {:.3}s ({:.1}M records/s)",
            elapsed,
            records_per_s / 1e6
        );
        if let Some(b) = declared_branches {
            if b != branches {
                println!("  WARNING: declared branch count {b} != actual {branches}");
            }
        }
    }
    Ok(())
}

/// True when the file starts with the `.stbp` phase-file magic. A file
/// shorter than the magic is simply not a phase file.
fn sniff_stbp(path: &str) -> Result<bool, Failure> {
    use std::io::Read;
    let mut head = [0u8; 4];
    let mut file = std::fs::File::open(path)?;
    match file.read_exact(&mut head) {
        Ok(()) => Ok(head == STBP_MAGIC),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(false),
        Err(e) => Err(e.into()),
    }
}

/// Inspects a `.stbp` phase file: stream identity, slice size, per-phase
/// weights and embedded-checkpoint presence.
fn inspect_stbp(path: &str, bytes: u64, json: bool) -> Result<(), Failure> {
    let pf = PhaseFile::load(Path::new(path)).map_err(|e| Failure::Runtime(e.to_string()))?;
    let warm = pf.phases.iter().filter(|p| p.has_checkpoint()).count();
    let simulated = pf.simulated_branches();
    let pct = simulated as f64 * 100.0 / (pf.total_branches as f64).max(1.0);
    if json {
        let phases: Vec<String> = pf
            .phases
            .iter()
            .map(|p| {
                format!(
                    "{{\"rep_slice\":{},\"weight_branches\":{},\"weight_slices\":{},\
                     \"start_branch\":{},\"start_event\":{},\"rep_branches\":{},\
                     \"checkpoint_bytes\":{}}}",
                    p.rep_slice,
                    p.weight_branches,
                    p.weight_slices,
                    p.start_branch,
                    p.start_event,
                    p.rep_branches,
                    p.checkpoint.len()
                )
            })
            .collect();
        println!(
            "{{\"format\":\"stbp\",\"workload\":{},\"bytes\":{bytes},\"seed\":{},\
             \"total_branches\":{},\"total_instructions\":{},\"total_events\":{},\
             \"slice_branches\":{},\"cluster_seed\":{},\"phases\":{},\"warm_phases\":{warm},\
             \"simulated_branches\":{simulated},\"phase_table\":[{}]}}",
            stbpu_engine::minijson::escape(&pf.workload),
            pf.seed,
            pf.total_branches,
            pf.total_instructions,
            pf.total_events,
            pf.slice_branches,
            pf.cluster_seed,
            pf.phases.len(),
            phases.join(",")
        );
    } else {
        println!(
            "{path}: phase file '{}' (.stbp format, {bytes} bytes)",
            pf.workload
        );
        println!(
            "  stream:   {} branches, {} instructions, {} events (seed {})",
            pf.total_branches, pf.total_instructions, pf.total_events, pf.seed
        );
        println!(
            "  slices:   {} branches/slice, cluster seed {}",
            pf.slice_branches, pf.cluster_seed
        );
        println!(
            "  phases:   {} ({warm} with embedded warm checkpoints) — simulating {simulated} \
             branches ({pct:.1}% of the stream)",
            pf.phases.len()
        );
        println!(
            "  {:>5} {:>9} {:>14} {:>8} {:>14} {:>12} {:>10}",
            "phase", "rep", "weight(br)", "slices", "start(br)", "rep(br)", "warm"
        );
        for (i, p) in pf.phases.iter().enumerate() {
            println!(
                "  {i:>5} {:>9} {:>14} {:>8} {:>14} {:>12} {:>10}",
                p.rep_slice,
                p.weight_branches,
                p.weight_slices,
                p.start_branch,
                p.rep_branches,
                if p.has_checkpoint() {
                    format!("{} B", p.checkpoint.len())
                } else {
                    "-".to_string()
                }
            );
        }
    }
    Ok(())
}

/// `stbpu trace simpoint` — the SimPoint pipeline: one streaming BBV
/// pass, seeded k-means, and a `.stbp` phase file out.
fn simpoint(rest: &[String]) -> Result<(), Failure> {
    let defaults = ClusterConfig::default();
    let mut a = Args::new(rest);
    let workload_name = a.opt("--workload")?;
    let trace_file = a.opt("--trace-file")?;
    let out = a
        .opt("--out")?
        .ok_or_else(|| Failure::Usage("--out is required".to_string()))?;
    let branches: usize = a.opt_parse("--branches", "an integer")?.unwrap_or(120_000);
    let seed: u64 = a.opt_parse("--seed", "an integer")?.unwrap_or(42);
    let slice_branches: u64 = a
        .opt_parse("--slice-branches", "an integer")?
        .unwrap_or(stbpu_trace::DEFAULT_SLICE_BRANCHES);
    let k_max: usize = a
        .opt_parse("--k-max", "an integer")?
        .unwrap_or(defaults.k_max);
    let forced_k: Option<usize> = a.opt_parse("--k", "an integer")?;
    let cluster_seed: u64 = a
        .opt_parse("--cluster-seed", "an integer")?
        .unwrap_or(defaults.seed);
    let embed_model = a.opt("--embed-model")?;
    let protection = a.opt("--protection")?;
    a.finish_empty()?;

    if protection.is_some() && embed_model.is_none() {
        return Err(Failure::Usage(
            "--protection only applies together with --embed-model".to_string(),
        ));
    }
    let workload = match (workload_name, trace_file) {
        (Some(_), Some(_)) => {
            return Err(Failure::Usage(
                "--workload and --trace-file are mutually exclusive".to_string(),
            ))
        }
        (None, Some(path)) => Workload::File(path.into()),
        (Some(name), None) => Workload::Named(name),
        (None, None) => {
            return Err(Failure::Usage(
                "--workload or --trace-file is required".to_string(),
            ))
        }
    };
    workload.validate().map_err(Failure::from)?;

    let registry = ModelRegistry::standard();
    let embed = match embed_model {
        Some(spec) => {
            let policy = crate::simulate::resolve_policy(protection.as_deref(), &spec)?;
            Some((spec, policy))
        }
        None => None,
    };
    let opts = PhaseBuildOptions {
        slice_branches,
        cluster: ClusterConfig {
            k_max,
            forced_k,
            seed: cluster_seed,
            ..defaults
        },
        embed,
    };
    let pf =
        build_phase_file(&registry, seed, &workload, branches, &opts).map_err(Failure::from)?;
    pf.save(Path::new(&out))
        .map_err(|e| Failure::Runtime(e.to_string()))?;
    let slices: u64 = pf.phases.iter().map(|p| p.weight_slices).sum();
    eprintln!(
        "wrote {} phases over {slices} slices ({} branches/slice) to {out}: simulating {} of {} \
         branches ({:.1}%){}",
        pf.phases.len(),
        pf.slice_branches,
        pf.simulated_branches(),
        pf.total_branches,
        pf.simulated_branches() as f64 * 100.0 / (pf.total_branches as f64).max(1.0),
        if pf.fully_warm() {
            ", warm checkpoints embedded"
        } else {
            ""
        }
    );
    Ok(())
}

/// Re-serializes a trace file, converting between formats: the input
/// format is auto-detected, the output format follows `--format` or the
/// destination extension. Headers are normalized (`branches`/`threads`
/// recomputed) and the trace optionally renamed.
///
/// Streams in two passes — pass 1 counts branches/threads (and picks up
/// any late `# trace` header) for the normalized header, pass 2 copies
/// events — so file size never bounds memory, matching `generate`.
fn convert(rest: &[String]) -> Result<(), Failure> {
    let mut a = Args::new(rest);
    let name = a.opt("--name")?;
    let format = a.opt("--format")?;
    let from = a.opt("--from")?;
    let ops = a.finish()?;
    let [input, output] = &ops[..] else {
        return Err(Failure::Usage(
            "convert takes exactly two operands: IN OUT".to_string(),
        ));
    };
    let out_fmt = out_format(format.as_deref(), output)?;
    let want_fmt = in_format(from.as_deref())?;

    let open = || open_trace_file(Path::new(input)).map_err(|e| Failure::Runtime(e.to_string()));

    // Pass 1: exact counts for the normalized header.
    let mut src = open()?;
    let in_fmt = src.format();
    if let Some(want) = want_fmt {
        if want != in_fmt {
            return Err(Failure::Runtime(format!(
                "{input}: detected {in_fmt} format, but --from {want} was asserted"
            )));
        }
    }
    let (mut events, mut branches, mut threads) = (0u64, 0u64, 0usize);
    src.for_each_batch(4_096, |batch| {
        for ev in batch {
            events += 1;
            if matches!(ev, TraceEvent::Branch { .. }) {
                branches += 1;
            }
            threads = threads.max(ev.tid() as usize + 1);
        }
        Ok::<(), Failure>(())
    })?;
    // A late `# trace` header has been absorbed by now; an explicit
    // --name wins over whatever the file declares.
    let name = name.unwrap_or_else(|| src.name().to_string());

    // Pass 2: copy events under the normalized header.
    let mut src = open()?;
    let out = std::fs::File::create(output)?;
    let mut w = TraceFileWriter::new(out_fmt, BufWriter::new(out));
    w.header(&name, Some(branches), threads)?;
    src.for_each_batch(4_096, |batch| {
        for ev in batch {
            w.event(ev)?;
        }
        Ok::<(), Failure>(())
    })?;
    w.flush()?;
    eprintln!(
        "converted {input} ({in_fmt}) -> {output} ({out_fmt}; {events} events, \
         {branches} branches, {threads} threads)"
    );
    Ok(())
}

//! `stbpu trace` — generate, inspect and convert line-format trace files.

use crate::args::Args;
use crate::Failure;
use stbpu_trace::serialize::{TraceReader, TraceWriter};
use stbpu_trace::{profiles, EventSource, TraceEvent, TraceGenerator};
use std::io::{BufReader, BufWriter};

pub fn run(rest: &[String]) -> Result<(), Failure> {
    match rest.first().map(String::as_str) {
        Some("generate") => generate(&rest[1..]),
        Some("inspect") => inspect(&rest[1..]),
        Some("convert") => convert(&rest[1..]),
        Some(other) => Err(Failure::Usage(format!(
            "unknown trace action '{other}' (generate|inspect|convert)"
        ))),
        None => Err(Failure::Usage(
            "trace needs an action: generate|inspect|convert".to_string(),
        )),
    }
}

/// Streams a synthetic workload to a trace file in O(1) memory: the
/// generator source is drained one event at a time through
/// [`write_event`], so any `--branches` works without materializing the
/// event vector.
fn generate(rest: &[String]) -> Result<(), Failure> {
    let mut a = Args::new(rest);
    let workload = a
        .opt("--workload")?
        .ok_or_else(|| Failure::Usage("--workload is required".to_string()))?;
    let out = a
        .opt("--out")?
        .ok_or_else(|| Failure::Usage("--out is required".to_string()))?;
    let branches: usize = a.opt_parse("--branches", "an integer")?.unwrap_or(120_000);
    let seed: u64 = a.opt_parse("--seed", "an integer")?.unwrap_or(42);
    a.finish_empty()?;

    let profile = profiles::by_name(&workload).ok_or_else(|| {
        Failure::from(stbpu_engine::EngineError::UnknownWorkload(workload.clone()))
    })?;
    let mut source = TraceGenerator::new(profile, seed).into_source(branches);
    let file = std::fs::File::create(&out)?;
    // One reused line buffer for the whole stream (TraceWriter), batched
    // pulls from the generator: no per-event allocation on either side.
    let mut w = TraceWriter::new(BufWriter::new(file));
    w.header(source.name(), source.branch_hint(), source.thread_count())?;
    let mut events: u64 = 0;
    let mut batch = Vec::new();
    loop {
        let n = source
            .next_batch(&mut batch, 4_096)
            .map_err(|e| Failure::Runtime(e.to_string()))?;
        if n == 0 {
            break;
        }
        for ev in &batch {
            w.event(ev)?;
        }
        events += n as u64;
    }
    w.flush()?;
    eprintln!("wrote {events} events ({branches} branches) to {out}");
    Ok(())
}

/// Streams a trace file through the [`TraceReader`], reporting declared
/// metadata and exact counts.
fn inspect(rest: &[String]) -> Result<(), Failure> {
    let mut a = Args::new(rest);
    let json = a.flag("--json");
    let ops = a.finish()?;
    let [path] = &ops[..] else {
        return Err(Failure::Usage(
            "inspect takes exactly one FILE operand".to_string(),
        ));
    };

    let file = std::fs::File::open(path)?;
    let mut src =
        TraceReader::new(BufReader::new(file)).map_err(|e| Failure::Runtime(e.to_string()))?;
    let name = src.name().to_string();
    let declared_branches = src.branch_hint();
    let declared_threads = src.thread_count();

    let (mut branches, mut taken, mut switches, mut modes, mut interrupts) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut max_tid = 0u8;
    while let Some(ev) = src
        .next_record()
        .map_err(|e| Failure::Runtime(e.to_string()))?
    {
        match ev {
            TraceEvent::Branch { tid, rec } => {
                branches += 1;
                taken += rec.taken as u64;
                max_tid = max_tid.max(tid);
            }
            TraceEvent::ContextSwitch { tid, .. } => {
                switches += 1;
                max_tid = max_tid.max(tid);
            }
            TraceEvent::ModeSwitch { tid, .. } => {
                modes += 1;
                max_tid = max_tid.max(tid);
            }
            TraceEvent::Interrupt { tid } => {
                interrupts += 1;
                max_tid = max_tid.max(tid);
            }
        }
    }
    let events = branches + switches + modes + interrupts;
    let taken_rate = if branches > 0 {
        taken as f64 / branches as f64
    } else {
        0.0
    };

    if json {
        println!(
            "{{\"name\":{},\"declared_branches\":{},\"declared_threads\":{declared_threads},\
             \"events\":{events},\"branches\":{branches},\"taken_rate\":{taken_rate:.6},\
             \"context_switches\":{switches},\"mode_switches\":{modes},\
             \"interrupts\":{interrupts},\"max_tid\":{max_tid}}}",
            stbpu_engine::minijson::escape(&name),
            declared_branches
                .map(|b| b.to_string())
                .unwrap_or_else(|| "null".to_string()),
        );
    } else {
        println!("{path}: trace '{name}'");
        match declared_branches {
            Some(b) => println!("  declared: {b} branches, {declared_threads} threads"),
            None => println!("  declared: no metadata headers (threads {declared_threads})"),
        }
        println!("  events:   {events} total — {branches} branches (taken rate {taken_rate:.4}),");
        println!(
            "            {switches} context switches, {modes} mode switches, {interrupts} interrupts"
        );
        if let Some(b) = declared_branches {
            if b != branches {
                println!("  WARNING: declared branch count {b} != actual {branches}");
            }
        }
    }
    Ok(())
}

/// Re-serializes a trace file: normalizes headers (`# branches` /
/// `# threads` are recomputed) and optionally renames the trace.
///
/// Streams in two passes — pass 1 counts branches/threads (and picks up
/// any late `# trace` header) for the normalized header block, pass 2
/// copies events — so file size never bounds memory, matching
/// `generate`.
fn convert(rest: &[String]) -> Result<(), Failure> {
    let mut a = Args::new(rest);
    let name = a.opt("--name")?;
    let ops = a.finish()?;
    let [input, output] = &ops[..] else {
        return Err(Failure::Usage(
            "convert takes exactly two operands: IN OUT".to_string(),
        ));
    };

    // Pass 1: exact counts for the header.
    let open = || -> Result<TraceReader<BufReader<std::fs::File>>, Failure> {
        TraceReader::new(BufReader::new(std::fs::File::open(input)?))
            .map_err(|e| Failure::Runtime(e.to_string()))
    };
    let mut src = open()?;
    let (mut events, mut branches, mut threads) = (0u64, 0u64, 0usize);
    while let Some(ev) = src
        .next_record()
        .map_err(|e| Failure::Runtime(e.to_string()))?
    {
        events += 1;
        if matches!(ev, TraceEvent::Branch { .. }) {
            branches += 1;
        }
        threads = threads.max(ev.tid() as usize + 1);
    }
    // A late `# trace` header has been absorbed by now; an explicit
    // --name wins over whatever the file declares.
    let name = name.unwrap_or_else(|| src.name().to_string());

    // Pass 2: copy events under the normalized header.
    let mut src = open()?;
    let out = std::fs::File::create(output)?;
    let mut w = TraceWriter::new(BufWriter::new(out));
    w.header(&name, Some(branches), threads)?;
    while let Some(ev) = src
        .next_record()
        .map_err(|e| Failure::Runtime(e.to_string()))?
    {
        w.event(&ev)?;
    }
    w.flush()?;
    eprintln!(
        "converted {input} -> {output} ({events} events, {branches} branches, {threads} threads)"
    );
    Ok(())
}

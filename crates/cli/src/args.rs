//! A tiny hand-rolled argument parser (the build environment has no
//! registry access, so clap is not available — and the surface is small
//! enough that explicit parsing keeps error messages exact).
//!
//! Supported shapes: `--flag`, `--key value`, `--key=value`, positional
//! operands. Every flag is consumed through [`Args::flag`] / [`Args::opt`]
//! and whatever remains that still looks like a flag is an error, so a
//! typo like `--brnaches` can never be silently ignored.

use std::str::FromStr;

/// One subcommand's argument stream.
pub struct Args {
    tokens: Vec<Option<String>>,
    /// Flag names already consumed once — so a duplicated flag is
    /// diagnosed as a duplicate, not as "unknown".
    seen: Vec<String>,
}

impl Args {
    /// Wraps the raw tokens following the subcommand name.
    pub fn new(tokens: &[String]) -> Self {
        Args {
            tokens: tokens.iter().cloned().map(Some).collect(),
            seen: Vec::new(),
        }
    }

    /// Consumes a boolean `--name` flag; true when present.
    pub fn flag(&mut self, name: &str) -> bool {
        for slot in &mut self.tokens {
            if slot.as_deref() == Some(name) {
                *slot = None;
                self.seen.push(name.to_string());
                return true;
            }
        }
        false
    }

    /// Consumes `--name value` / `--name=value`; `None` when absent.
    pub fn opt(&mut self, name: &str) -> Result<Option<String>, String> {
        let prefix = format!("{name}=");
        for i in 0..self.tokens.len() {
            let Some(tok) = self.tokens[i].as_deref() else {
                continue;
            };
            if tok == name {
                let value = self
                    .tokens
                    .get(i + 1)
                    .and_then(|t| t.clone())
                    .filter(|v| !v.starts_with("--"))
                    .ok_or_else(|| format!("flag '{name}' needs a value"))?;
                self.tokens[i] = None;
                self.tokens[i + 1] = None;
                self.seen.push(name.to_string());
                return Ok(Some(value));
            }
            if let Some(value) = tok.strip_prefix(&prefix) {
                let value = value.to_string();
                self.tokens[i] = None;
                self.seen.push(name.to_string());
                return Ok(Some(value));
            }
        }
        Ok(None)
    }

    /// Consumes and parses `--name value`.
    pub fn opt_parse<T: FromStr>(&mut self, name: &str, what: &str) -> Result<Option<T>, String> {
        match self.opt(name)? {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("flag '{name}': '{v}' is not {what}")),
        }
    }

    /// Consumes a comma-separated list value (`--name a,b,c`).
    pub fn opt_list(&mut self, name: &str) -> Result<Option<Vec<String>>, String> {
        Ok(self.opt(name)?.map(|v| {
            v.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        }))
    }

    /// Finishes parsing: rejects any unconsumed `--flag`, returns the
    /// remaining positional operands in order.
    pub fn finish(self) -> Result<Vec<String>, String> {
        let rest: Vec<String> = self.tokens.into_iter().flatten().collect();
        if let Some(flag) = rest.iter().find(|t| t.starts_with("--")) {
            let bare = flag.split('=').next().unwrap_or(flag);
            if self.seen.iter().any(|s| s == bare) {
                return Err(format!("flag '{bare}' given more than once"));
            }
            return Err(format!("unknown flag '{flag}'"));
        }
        Ok(rest)
    }

    /// Like [`Args::finish`] but also rejects positional operands.
    pub fn finish_empty(self) -> Result<(), String> {
        let rest = self.finish()?;
        if let Some(op) = rest.first() {
            return Err(format!("unexpected operand '{op}'"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::new(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn flags_and_options_consume() {
        let mut a = args("--json --seed 7 --model=skl input.trace");
        assert!(a.flag("--json"));
        assert!(!a.flag("--json"));
        assert_eq!(a.opt("--seed").unwrap().as_deref(), Some("7"));
        assert_eq!(a.opt("--model").unwrap().as_deref(), Some("skl"));
        assert_eq!(a.finish().unwrap(), ["input.trace"]);
    }

    #[test]
    fn typed_and_list_options() {
        let mut a = args("--branches 5000 --seeds 1,2,3");
        assert_eq!(
            a.opt_parse::<usize>("--branches", "an integer").unwrap(),
            Some(5000)
        );
        assert_eq!(a.opt_list("--seeds").unwrap().unwrap(), ["1", "2", "3"]);
        a.finish_empty().unwrap();
    }

    #[test]
    fn errors_are_actionable() {
        let mut a = args("--seed");
        assert!(a.opt("--seed").unwrap_err().contains("needs a value"));
        let mut a = args("--seed --json");
        assert!(a.opt("--seed").unwrap_err().contains("needs a value"));
        let mut a = args("--branches nope");
        assert!(a
            .opt_parse::<usize>("--branches", "an integer")
            .unwrap_err()
            .contains("'nope'"));
        assert!(args("--warp").finish().unwrap_err().contains("--warp"));
        assert!(args("x y").finish_empty().unwrap_err().contains("'x'"));
    }

    #[test]
    fn duplicate_flags_diagnosed_as_duplicates() {
        let mut a = args("--model skl --model tage8");
        assert_eq!(a.opt("--model").unwrap().as_deref(), Some("skl"));
        let err = a.finish().unwrap_err();
        assert!(err.contains("more than once"), "{err}");
        // `--key=value` duplicates are caught under the bare name too.
        let mut a = args("--seed=1 --seed=2");
        let _ = a.opt("--seed").unwrap();
        assert!(a.finish().unwrap_err().contains("'--seed'"));
    }
}

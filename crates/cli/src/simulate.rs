//! `stbpu simulate` — one model over one workload, streamed through a
//! [`SimSession`] with optional interval windows and progress reporting.

use crate::args::Args;
use crate::Failure;
use stbpu_engine::{
    auto_protection, csv_header, protection_from_str, report_to_csv_row, report_to_json,
    run_sharded, ShardConfig,
};
use stbpu_engine::{ModelRegistry, Workload};
use stbpu_sim::{
    Checkpoint, IntervalRecorder, IntervalWindow, SessionOptions, SimObserver, SimReport,
    SimSession, Warmup,
};
/// Output dialect.
enum Format {
    Human,
    Json,
    Csv,
}

/// Streaming progress meter on stderr (a [`SimObserver`], exercising the
/// same hook seam the interval recorder and attack telemetry use).
struct Progress {
    seen: u64,
    every: u64,
    total: Option<u64>,
}

impl Progress {
    fn new(hint: Option<u64>) -> Self {
        Progress {
            seen: 0,
            every: hint.map(|h| (h / 20).max(1)).unwrap_or(1_000_000),
            total: hint,
        }
    }
}

impl SimObserver for Progress {
    fn on_branch(
        &mut self,
        _tid: usize,
        _rec: &stbpu_bpu::BranchRecord,
        _outcome: &stbpu_bpu::BranchOutcome,
    ) {
        self.seen += 1;
        if self.seen.is_multiple_of(self.every) {
            match self.total {
                Some(t) if t > 0 => eprintln!(
                    "progress: {} / {} branches ({:.0}%)",
                    self.seen,
                    t,
                    self.seen as f64 * 100.0 / t as f64
                ),
                _ => eprintln!("progress: {} branches", self.seen),
            }
        }
    }
}

pub fn run(rest: &[String]) -> Result<(), Failure> {
    let mut a = Args::new(rest);
    let model_spec = a.opt("--model")?; // required unless --resume-from
    let workload_name = a.opt("--workload")?;
    let trace_file = a.opt("--trace-file")?;
    let protection = a.opt("--protection")?;
    let branches: usize = a.opt_parse("--branches", "an integer")?.unwrap_or(120_000);
    let seed: u64 = a.opt_parse("--seed", "an integer")?.unwrap_or(42);
    let threads: Option<usize> = a.opt_parse("--threads", "an integer")?;
    let interval: Option<u64> = a.opt_parse("--interval", "an integer")?;
    let warmup_frac: Option<f64> = a.opt_parse("--warmup", "a number")?;
    let warmup_branches: Option<u64> = a.opt_parse("--warmup-branches", "an integer")?;
    let format = match a.opt("--format")?.as_deref() {
        None | Some("human") => Format::Human,
        Some("json") => Format::Json,
        Some("csv") => Format::Csv,
        Some(other) => {
            return Err(Failure::Usage(format!(
                "unknown format '{other}' (human|json|csv)"
            )))
        }
    };
    let progress = a.flag("--progress");
    let shards: Option<usize> = a.opt_parse("--shards", "an integer")?;
    let checkpoint_dir = a.opt("--checkpoint-dir")?;
    let resume_from = a.opt("--resume-from")?;
    let phases_file = a.opt("--phases")?;
    let compare_full = a.flag("--compare-full");
    a.finish_empty()?;

    if resume_from.is_some() && shards.is_some() {
        return Err(Failure::Usage(
            "--resume-from and --shards are mutually exclusive".to_string(),
        ));
    }
    if progress && (shards.is_some() || resume_from.is_some()) {
        return Err(Failure::Usage(
            "--progress only works with the plain sequential path".to_string(),
        ));
    }
    if compare_full && phases_file.is_none() {
        return Err(Failure::Usage(
            "--compare-full only applies together with --phases".to_string(),
        ));
    }
    if phases_file.is_some() {
        // The phase file pins stream, seed, position and warm-up (always
        // Warmup::Branches(0), the configuration the weights partition);
        // every flag that would steer those is a contradiction.
        if shards.is_some() || resume_from.is_some() {
            return Err(Failure::Usage(
                "--phases is mutually exclusive with --shards/--resume-from".to_string(),
            ));
        }
        if progress || interval.is_some() {
            return Err(Failure::Usage(
                "--progress/--interval do not apply to phase-based estimation".to_string(),
            ));
        }
        if warmup_frac.is_some() || warmup_branches.is_some() {
            return Err(Failure::Usage(
                "phase-based estimation always runs with zero warm-up (the phase weights \
                 partition the whole stream); drop the warm-up flags"
                    .to_string(),
            ));
        }
    }

    let workload = match (workload_name, trace_file) {
        (Some(_), Some(_)) => {
            return Err(Failure::Usage(
                "--workload and --trace-file are mutually exclusive".to_string(),
            ))
        }
        (None, Some(path)) => Some(Workload::File(path.into())),
        (Some(name), None) => Some(Workload::Named(name)),
        // Without --phases/--resume-from there is a default; with them
        // the file supplies (or overrides) the stream.
        (None, None) if resume_from.is_some() || phases_file.is_some() => None,
        (None, None) => Some(Workload::Named("541.leela".to_string())),
    };

    let warmup = match (warmup_branches, warmup_frac) {
        (Some(_), Some(_)) => {
            return Err(Failure::Usage(
                "--warmup and --warmup-branches are mutually exclusive".to_string(),
            ))
        }
        (Some(b), None) => Warmup::Branches(b),
        (None, f) => Warmup::Fraction(f.unwrap_or(0.1)),
    };

    let registry = ModelRegistry::standard();
    let (report, windows, seed) = if let Some(path) = resume_from {
        // The checkpoint supplies model, protection, seed and workload;
        // --model and the warm-up flags are ignored (warm-up progress is
        // part of the restored state).
        let cp = Checkpoint::load(std::path::Path::new(&path))
            .map_err(|e| Failure::Runtime(e.to_string()))?;
        let workload = match workload {
            Some(w) => w,
            None => workload_for_label(&cp.workload)?,
        };
        workload.validate().map_err(Failure::from)?;
        let mut source = workload.open(cp.seed, branches).map_err(Failure::from)?;
        let seed = cp.seed;
        let (report, windows) =
            stbpu_engine::resume_to_end(&registry, &cp, source.as_mut()).map_err(Failure::from)?;
        (report, windows, seed)
    } else if let Some(path) = phases_file {
        let model_spec = require_model(&model_spec)?;
        let policy = resolve_policy(protection.as_deref(), model_spec)?;
        let phased = Workload::phases_from_path(std::path::Path::new(&path), workload)
            .map_err(Failure::from)?;
        let file_seed = match &phased {
            Workload::Phases { file, .. } => file.seed,
            _ => seed,
        };
        let run = if compare_full {
            let (run, full, _) =
                stbpu_engine::run_phases_vs_full(&registry, model_spec, policy, &phased)
                    .map_err(Failure::from)?;
            eprintln!(
                "estimated vs full: OAE {:.6} vs {:.6} (|Δ| {:.2e}), mispredictions {} vs {}, \
                 rerandomizations {} vs {}",
                run.report.oae,
                full.oae,
                (run.report.oae - full.oae).abs(),
                run.report.mispredictions,
                full.mispredictions,
                run.report.rerandomizations,
                full.rerandomizations
            );
            run
        } else {
            stbpu_engine::run_phases(&registry, model_spec, policy, &phased)
                .map_err(Failure::from)?
        };
        eprintln!(
            "phase estimate: {} phases ({} warm), {} of {} branches simulated, est. MPKI {:.3}",
            run.phases, run.warm_phases, run.simulated_branches, run.report.branches, run.mpki
        );
        (run.report, Vec::new(), file_seed)
    } else if let Some(shards) = shards {
        let model_spec = require_model(&model_spec)?;
        let policy = resolve_policy(protection.as_deref(), model_spec)?;
        let workload = workload.expect("always set without --resume-from");
        workload.validate().map_err(Failure::from)?;
        let cfg = ShardConfig {
            shards,
            warmup,
            interval,
            threads,
            checkpoint_dir: checkpoint_dir.map(Into::into),
        };
        let run = run_sharded(
            &registry, model_spec, policy, seed, &workload, branches, &cfg,
        )
        .map_err(Failure::from)?;
        if run.cache_hits > 0 {
            eprintln!(
                "reused {} cached boundary checkpoints (pass 1 skipped)",
                run.cache_hits
            );
        }
        (run.report, run.intervals, seed)
    } else {
        let model_spec = require_model(&model_spec)?;
        let policy = resolve_policy(protection.as_deref(), model_spec)?;
        let workload = workload.expect("always set without --resume-from");
        workload.validate().map_err(Failure::from)?;
        run_plain(
            &registry, model_spec, policy, seed, &workload, branches, warmup, threads, interval,
            progress,
        )?
    };

    match format {
        Format::Csv => {
            println!("{}", csv_header());
            println!("{}", report_to_csv_row(&report, seed));
            if !windows.is_empty() {
                // Second block: the interval series, with its own header.
                println!();
                println!(
                    "start_branch,branches,effective_correct,mispredictions,flushes,rerandomizations,oae"
                );
                for w in &windows {
                    println!(
                        "{},{},{},{},{},{},{:.6}",
                        w.start_branch,
                        w.branches,
                        w.effective_correct,
                        w.mispredictions,
                        w.flushes,
                        w.rerandomizations,
                        w.oae()
                    );
                }
            }
        }
        Format::Json => {
            if windows.is_empty() {
                println!("{}", report_to_json(&report, seed));
            } else {
                println!(
                    "{{\"report\":{},\"intervals\":[{}]}}",
                    report_to_json(&report, seed),
                    windows
                        .iter()
                        .map(window_json)
                        .collect::<Vec<_>>()
                        .join(",")
                );
            }
        }
        Format::Human => {
            println!(
                "{} under {} over {} (seed {seed})",
                report.model, report.protection, report.workload
            );
            println!(
                "  OAE {:.6}  direction {:.6}  target {:.6}",
                report.oae, report.direction_rate, report.target_rate
            );
            println!(
                "  {} branches, {} mispredictions, {} evictions, {} flushes, {} re-randomizations",
                report.branches,
                report.mispredictions,
                report.evictions,
                report.flushes,
                report.rerandomizations
            );
            if !windows.is_empty() {
                println!(
                    "  {:<12} {:>10} {:>8} {:>8} {:>8}",
                    "start", "oae", "misp", "flush", "rerand"
                );
                for w in &windows {
                    println!(
                        "  {:<12} {:>10.4} {:>8} {:>8} {:>8}",
                        w.start_branch,
                        w.oae(),
                        w.mispredictions,
                        w.flushes,
                        w.rerandomizations
                    );
                }
            }
        }
    }
    Ok(())
}

fn require_model(spec: &Option<String>) -> Result<&str, Failure> {
    spec.as_deref()
        .ok_or_else(|| Failure::Usage("--model is required".to_string()))
}

pub(crate) fn resolve_policy(
    protection: Option<&str>,
    model_spec: &str,
) -> Result<stbpu_sim::Protection, Failure> {
    match protection {
        None | Some("auto") => Ok(auto_protection(model_spec)),
        Some(p) => protection_from_str(p).map_err(Failure::from),
    }
}

/// Reconstructs a workload from a checkpoint's stored label: a known
/// profile name, else an existing trace-file path.
fn workload_for_label(label: &str) -> Result<Workload, Failure> {
    if stbpu_trace::profiles::by_name(label).is_some() {
        Ok(Workload::Named(label.to_string()))
    } else if std::path::Path::new(label).exists() {
        Ok(Workload::File(label.into()))
    } else {
        Err(Failure::Usage(format!(
            "cannot reconstruct workload '{label}' from the checkpoint — pass --workload or \
             --trace-file explicitly"
        )))
    }
}

/// The plain sequential path: one [`SimSession`] over one source, with
/// optional interval recording and progress metering.
#[allow(clippy::too_many_arguments)]
fn run_plain(
    registry: &ModelRegistry,
    model_spec: &str,
    policy: stbpu_sim::Protection,
    seed: u64,
    workload: &Workload,
    branches: usize,
    warmup: Warmup,
    threads: Option<usize>,
    interval: Option<u64>,
    progress: bool,
) -> Result<(SimReport, Vec<IntervalWindow>, u64), Failure> {
    let mut model = registry.build(model_spec, seed).map_err(Failure::from)?;
    let mut source = workload.open(seed, branches).map_err(Failure::from)?;
    let threads = threads.or(match source.thread_count() {
        0 => None,
        t => Some(t),
    });

    // Session construction only validates options the user typed
    // (--warmup range, --threads provision), so its errors are usage
    // errors; failures mid-stream stay runtime errors.
    let mut session = SimSession::new(
        &mut model,
        policy,
        SessionOptions {
            warmup,
            threads,
            interval,
            workload: None,
        },
    )
    .map_err(|e| Failure::Usage(e.to_string()))?;

    let mut recorder = IntervalRecorder::new();
    if interval.is_some() {
        session.attach(&mut recorder);
    }
    let mut meter = Progress::new(source.branch_hint());
    if progress {
        session.attach(&mut meter);
    }
    session
        .run(source.as_mut())
        .map_err(|e| Failure::Runtime(e.to_string()))?;
    let report = session.finish();
    Ok((report, recorder.into_windows(), seed))
}

/// One interval window as a JSON object.
pub fn window_json(w: &IntervalWindow) -> String {
    format!(
        "{{\"start_branch\":{},\"branches\":{},\"effective_correct\":{},\
         \"mispredictions\":{},\"flushes\":{},\"rerandomizations\":{},\"oae\":{:.6}}}",
        w.start_branch,
        w.branches,
        w.effective_correct,
        w.mispredictions,
        w.flushes,
        w.rerandomizations,
        w.oae()
    )
}

//! `stbpu simulate` — one model over one workload, streamed through a
//! [`SimSession`] with optional interval windows and progress reporting.

use crate::args::Args;
use crate::Failure;
use stbpu_engine::{
    auto_protection, csv_header, protection_from_str, report_to_csv_row, report_to_json,
};
use stbpu_engine::{ModelRegistry, Workload};
use stbpu_sim::{
    IntervalRecorder, IntervalWindow, SessionOptions, SimObserver, SimSession, Warmup,
};
/// Output dialect.
enum Format {
    Human,
    Json,
    Csv,
}

/// Streaming progress meter on stderr (a [`SimObserver`], exercising the
/// same hook seam the interval recorder and attack telemetry use).
struct Progress {
    seen: u64,
    every: u64,
    total: Option<u64>,
}

impl Progress {
    fn new(hint: Option<u64>) -> Self {
        Progress {
            seen: 0,
            every: hint.map(|h| (h / 20).max(1)).unwrap_or(1_000_000),
            total: hint,
        }
    }
}

impl SimObserver for Progress {
    fn on_branch(
        &mut self,
        _tid: usize,
        _rec: &stbpu_bpu::BranchRecord,
        _outcome: &stbpu_bpu::BranchOutcome,
    ) {
        self.seen += 1;
        if self.seen.is_multiple_of(self.every) {
            match self.total {
                Some(t) if t > 0 => eprintln!(
                    "progress: {} / {} branches ({:.0}%)",
                    self.seen,
                    t,
                    self.seen as f64 * 100.0 / t as f64
                ),
                _ => eprintln!("progress: {} branches", self.seen),
            }
        }
    }
}

pub fn run(rest: &[String]) -> Result<(), Failure> {
    let mut a = Args::new(rest);
    let model_spec = a
        .opt("--model")?
        .ok_or_else(|| Failure::Usage("--model is required".to_string()))?;
    let workload_name = a.opt("--workload")?;
    let trace_file = a.opt("--trace-file")?;
    let protection = a.opt("--protection")?;
    let branches: usize = a.opt_parse("--branches", "an integer")?.unwrap_or(120_000);
    let seed: u64 = a.opt_parse("--seed", "an integer")?.unwrap_or(42);
    let threads: Option<usize> = a.opt_parse("--threads", "an integer")?;
    let interval: Option<u64> = a.opt_parse("--interval", "an integer")?;
    let warmup_frac: Option<f64> = a.opt_parse("--warmup", "a number")?;
    let warmup_branches: Option<u64> = a.opt_parse("--warmup-branches", "an integer")?;
    let format = match a.opt("--format")?.as_deref() {
        None | Some("human") => Format::Human,
        Some("json") => Format::Json,
        Some("csv") => Format::Csv,
        Some(other) => {
            return Err(Failure::Usage(format!(
                "unknown format '{other}' (human|json|csv)"
            )))
        }
    };
    let progress = a.flag("--progress");
    a.finish_empty()?;

    let workload = match (workload_name, trace_file) {
        (Some(_), Some(_)) => {
            return Err(Failure::Usage(
                "--workload and --trace-file are mutually exclusive".to_string(),
            ))
        }
        (None, Some(path)) => Workload::File(path.into()),
        (name, None) => Workload::Named(name.unwrap_or_else(|| "541.leela".to_string())),
    };
    workload.validate().map_err(Failure::from)?;

    let policy = match protection.as_deref() {
        None | Some("auto") => auto_protection(&model_spec),
        Some(p) => protection_from_str(p).map_err(Failure::from)?,
    };
    let warmup = match (warmup_branches, warmup_frac) {
        (Some(_), Some(_)) => {
            return Err(Failure::Usage(
                "--warmup and --warmup-branches are mutually exclusive".to_string(),
            ))
        }
        (Some(b), None) => Warmup::Branches(b),
        (None, f) => Warmup::Fraction(f.unwrap_or(0.1)),
    };

    let registry = ModelRegistry::standard();
    let mut model = registry.build(&model_spec, seed).map_err(Failure::from)?;
    let mut source = workload.open(seed, branches).map_err(Failure::from)?;
    let threads = threads.or(match source.thread_count() {
        0 => None,
        t => Some(t),
    });

    // Session construction only validates options the user typed
    // (--warmup range, --threads provision), so its errors are usage
    // errors; failures mid-stream stay runtime errors.
    let mut session = SimSession::new(
        &mut model,
        policy,
        SessionOptions {
            warmup,
            threads,
            interval,
            workload: None,
        },
    )
    .map_err(|e| Failure::Usage(e.to_string()))?;

    let mut recorder = IntervalRecorder::new();
    if interval.is_some() {
        session.attach(&mut recorder);
    }
    let mut meter = Progress::new(source.branch_hint());
    if progress {
        session.attach(&mut meter);
    }
    session
        .run(source.as_mut())
        .map_err(|e| Failure::Runtime(e.to_string()))?;
    let report = session.finish();
    let windows = recorder.into_windows();

    match format {
        Format::Csv => {
            println!("{}", csv_header());
            println!("{}", report_to_csv_row(&report, seed));
            if !windows.is_empty() {
                // Second block: the interval series, with its own header.
                println!();
                println!(
                    "start_branch,branches,effective_correct,mispredictions,flushes,rerandomizations,oae"
                );
                for w in &windows {
                    println!(
                        "{},{},{},{},{},{},{:.6}",
                        w.start_branch,
                        w.branches,
                        w.effective_correct,
                        w.mispredictions,
                        w.flushes,
                        w.rerandomizations,
                        w.oae()
                    );
                }
            }
        }
        Format::Json => {
            if windows.is_empty() {
                println!("{}", report_to_json(&report, seed));
            } else {
                println!(
                    "{{\"report\":{},\"intervals\":[{}]}}",
                    report_to_json(&report, seed),
                    windows
                        .iter()
                        .map(window_json)
                        .collect::<Vec<_>>()
                        .join(",")
                );
            }
        }
        Format::Human => {
            println!(
                "{} under {} over {} (seed {seed})",
                report.model, report.protection, report.workload
            );
            println!(
                "  OAE {:.6}  direction {:.6}  target {:.6}",
                report.oae, report.direction_rate, report.target_rate
            );
            println!(
                "  {} branches, {} mispredictions, {} evictions, {} flushes, {} re-randomizations",
                report.branches,
                report.mispredictions,
                report.evictions,
                report.flushes,
                report.rerandomizations
            );
            if !windows.is_empty() {
                println!(
                    "  {:<12} {:>10} {:>8} {:>8} {:>8}",
                    "start", "oae", "misp", "flush", "rerand"
                );
                for w in &windows {
                    println!(
                        "  {:<12} {:>10.4} {:>8} {:>8} {:>8}",
                        w.start_branch,
                        w.oae(),
                        w.mispredictions,
                        w.flushes,
                        w.rerandomizations
                    );
                }
            }
        }
    }
    Ok(())
}

/// One interval window as a JSON object.
pub fn window_json(w: &IntervalWindow) -> String {
    format!(
        "{{\"start_branch\":{},\"branches\":{},\"effective_correct\":{},\
         \"mispredictions\":{},\"flushes\":{},\"rerandomizations\":{},\"oae\":{:.6}}}",
        w.start_branch,
        w.branches,
        w.effective_correct,
        w.mispredictions,
        w.flushes,
        w.rerandomizations,
        w.oae()
    )
}

//! The `stbpu` binary: a thin wrapper over [`stbpu_cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(stbpu_cli::run(&argv));
}

//! `stbpu attack` — the executed Table I surface plus attacker-visible
//! monitor telemetry timelines.

use crate::args::Args;
use crate::Failure;
use stbpu_attacks::telemetry::MonitorTelemetry;
use stbpu_bench::{figures, Knobs};
use stbpu_engine::{auto_protection, ModelRegistry, Workload};
use stbpu_sim::{Protection, SessionOptions, SimSession, Warmup};

/// Streams `branches` events of `workload` through `model_spec` under
/// `policy`, returning the recorded defense timeline.
fn telemetry_run(
    registry: &ModelRegistry,
    model_spec: &str,
    policy: Protection,
    workload: &str,
    branches: usize,
    seed: u64,
) -> Result<(MonitorTelemetry, String), Failure> {
    let mut model = registry.build(model_spec, seed).map_err(Failure::from)?;
    let w = Workload::Named(workload.to_string());
    w.validate().map_err(Failure::from)?;
    let mut source = w.open(seed, branches).map_err(Failure::from)?;
    let mut telemetry = MonitorTelemetry::new();
    let mut session = SimSession::new(
        &mut model,
        policy,
        SessionOptions {
            warmup: Warmup::Branches(0),
            ..SessionOptions::default()
        },
    )
    .map_err(|e| Failure::from(stbpu_engine::EngineError::from(e)))?;
    session.attach(&mut telemetry);
    session
        .run(source.as_mut())
        .map_err(|e| Failure::Runtime(e.to_string()))?;
    let report = session.finish();
    Ok((telemetry, report.model))
}

fn marks_json(marks: &[u64]) -> String {
    let items: Vec<String> = marks.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

pub fn run(rest: &[String]) -> Result<(), Failure> {
    let mut a = Args::new(rest);
    let seed: u64 = a.opt_parse("--seed", "an integer")?.unwrap_or(42);
    let no_surface = a.flag("--no-surface");
    let no_telemetry = a.flag("--no-telemetry");
    let model_spec = a
        .opt("--model")?
        .unwrap_or_else(|| "st_skl@r=0.001".to_string());
    let workload = a
        .opt("--workload")?
        .unwrap_or_else(|| "541.leela".to_string());
    let branches: usize = a.opt_parse("--branches", "an integer")?.unwrap_or(100_000);
    let json = a.flag("--json");
    a.finish_empty()?;
    if json && no_telemetry {
        return Err(Failure::Usage(
            "--json emits the telemetry record; it conflicts with --no-telemetry".to_string(),
        ));
    }

    if !no_surface && !json {
        let knobs = Knobs {
            seed,
            ..Knobs::quick()
        };
        figures::table1::run(&knobs);
        println!();
    }

    if no_telemetry {
        return Ok(());
    }

    let registry = ModelRegistry::standard();
    // Re-randomization rhythm of the ST model on the chosen workload, and
    // the flush rhythm of microcode protection on a switch-heavy server
    // workload — the two timelines an attacker could try to correlate.
    let (st, st_model) = telemetry_run(
        &registry,
        &model_spec,
        auto_protection(&model_spec),
        &workload,
        branches,
        seed,
    )?;
    let (uc, _) = telemetry_run(
        &registry,
        "skl",
        Protection::Ucode1,
        "apache2_prefork_c128",
        branches,
        seed,
    )?;

    if json {
        println!(
            "{{\"seed\":{seed},\"branches\":{branches},\
             \"stbpu\":{{\"model\":\"{st_model}\",\"workload\":\"{workload}\",\
             \"rerandomizations\":{},\"mean_gap\":{},\"marks\":{}}},\
             \"ucode1\":{{\"workload\":\"apache2_prefork_c128\",\
             \"flushes\":{},\"marks\":{}}}}}",
            st.rerand_marks().len(),
            st.mean_rerand_gap()
                .map(|g| format!("{g:.1}"))
                .unwrap_or_else(|| "null".to_string()),
            marks_json(st.rerand_marks()),
            uc.flush_marks().len(),
            marks_json(uc.flush_marks()),
        );
        return Ok(());
    }

    println!("Monitor telemetry — defense timelines over {branches} branches (seed {seed})");
    println!(
        "  {st_model} on {workload}: {} re-randomizations{}",
        st.rerand_marks().len(),
        st.mean_rerand_gap()
            .map(|g| format!(", mean gap {g:.0} branches"))
            .unwrap_or_default()
    );
    preview("    first marks:", st.rerand_marks());
    println!(
        "  SKLCond + ucode1 on apache2_prefork_c128: {} flushes",
        uc.flush_marks().len()
    );
    preview("    first marks:", uc.flush_marks());
    println!();
    println!("interpretation: STBPU's re-randomization marks arrive on threshold");
    println!("accumulation (attacker-paced), ucode flush marks track OS activity;");
    println!("neither timeline reveals addresses (Table I), only defense rhythm.");
    Ok(())
}

fn preview(label: &str, marks: &[u64]) {
    if marks.is_empty() {
        println!("{label} (none)");
        return;
    }
    let shown: Vec<String> = marks.iter().take(8).map(u64::to_string).collect();
    let ellipsis = if marks.len() > 8 { ", …" } else { "" };
    println!("{label} {}{}", shown.join(", "), ellipsis);
}

//! `stbpu serve` — the streaming simulation daemon, plus a `--client`
//! self-test mode that drives it over real sockets.
//!
//! Daemon mode binds a TCP listener and runs the [`stbpu_serve`] session
//! manager until the process is killed. Self-test mode generates one
//! workload, runs it offline through an [`OwnedSession`] as the
//! reference, then streams the same events through N concurrent socket
//! clients and hard-fails unless every streamed `FinalReport` is
//! **bit-identical** to the reference — the same gate `bench --suite
//! serve` applies, packaged as a one-shot check CI (and users debugging
//! a deployment) can run against an in-process or remote daemon.

use crate::args::Args;
use crate::Failure;
use stbpu_engine::minijson::escape;
use stbpu_engine::{auto_protection, protection_from_str, ModelRegistry};
use stbpu_serve::protocol::WireReport;
use stbpu_serve::server::{self, ServerConfig};
use stbpu_serve::{check_parity, ChunkEncoder, Hello, ServeClient};
use stbpu_sim::{IntervalWindow, OwnedSession, SessionOptions, SimReport, Warmup};
use stbpu_trace::{profiles, EventSource, TraceEvent, TraceGenerator};
use std::sync::Arc;
use std::time::Duration;

pub fn run(rest: &[String]) -> Result<(), Failure> {
    let mut a = Args::new(rest);
    if a.flag("--client") {
        return self_test(a);
    }
    let listen = a
        .opt("--listen")?
        .unwrap_or_else(|| "127.0.0.1:4588".to_string());
    let defaults = ServerConfig::default();
    let workers: usize = a
        .opt_parse("--workers", "an integer")?
        .unwrap_or(defaults.workers);
    let max_sessions: usize = a
        .opt_parse("--max-sessions", "an integer")?
        .unwrap_or(defaults.max_sessions_per_conn);
    let max_buffered: usize = a
        .opt_parse("--max-buffered", "an integer")?
        .unwrap_or(defaults.max_buffered_per_conn);
    let idle_ms: u64 = a
        .opt_parse("--idle-timeout-ms", "an integer")?
        .unwrap_or(defaults.idle_timeout.as_millis() as u64);
    let write_timeout_ms: u64 = a
        .opt_parse("--write-timeout-ms", "an integer")?
        .unwrap_or(defaults.write_timeout.as_millis() as u64);
    a.finish_empty()?;
    if max_sessions == 0 || idle_ms == 0 || write_timeout_ms == 0 {
        return Err(Failure::Usage(
            "--max-sessions, --idle-timeout-ms and --write-timeout-ms must be positive".to_string(),
        ));
    }
    // Below one max-size frame every chunk is an instant quota kill and
    // the backpressure watermarks degenerate; refuse outright.
    if max_buffered < stbpu_serve::protocol::MAX_FRAME {
        return Err(Failure::Usage(format!(
            "--max-buffered must be at least one {}-byte frame",
            stbpu_serve::protocol::MAX_FRAME
        )));
    }

    let server = server::spawn(
        &listen,
        ServerConfig {
            workers,
            max_sessions_per_conn: max_sessions,
            max_buffered_per_conn: max_buffered,
            idle_timeout: Duration::from_millis(idle_ms),
            write_timeout: Duration::from_millis(write_timeout_ms),
        },
    )
    .map_err(|e| Failure::Runtime(format!("cannot listen on {listen}: {e}")))?;
    eprintln!(
        "stbpu serve: listening on {} ({} sessions/conn, {} KiB buffered/conn, {}ms idle timeout)",
        server.addr(),
        max_sessions,
        max_buffered / 1024,
        idle_ms
    );
    // The accept/reader/worker threads own all the work; this thread
    // just keeps the process (and the ServerHandle) alive until killed.
    loop {
        std::thread::sleep(Duration::from_secs(60));
    }
}

/// Everything one self-test run shares across its client threads.
struct Fixture {
    chunks: Vec<Vec<u8>>,
    reference: SimReport,
    ref_intervals: Vec<IntervalWindow>,
}

/// `stbpu serve --client`: stream one workload through N concurrent
/// socket sessions and gate each final report bit-identical against the
/// offline reference run.
fn self_test(mut a: Args) -> Result<(), Failure> {
    let connect = a.opt("--connect")?;
    let clients: usize = a.opt_parse("--clients", "an integer")?.unwrap_or(2);
    let branches: usize = a.opt_parse("--branches", "an integer")?.unwrap_or(60_000);
    let workload = a
        .opt("--workload")?
        .unwrap_or_else(|| "541.leela".to_string());
    let model = a.opt("--model")?.unwrap_or_else(|| "st_skl".to_string());
    let protection = a.opt("--protection")?.unwrap_or_else(|| "auto".to_string());
    let seed: u64 = a.opt_parse("--seed", "an integer")?.unwrap_or(42);
    let warmup_branches: u64 = a
        .opt_parse("--warmup-branches", "an integer")?
        .unwrap_or(branches as u64 / 10);
    let interval: u64 = a.opt_parse("--interval", "an integer")?.unwrap_or(0);
    let json = a.flag("--json");
    a.finish_empty()?;
    if clients == 0 {
        return Err(Failure::Usage("--clients must be positive".to_string()));
    }

    // The offline reference: the exact stream every socket session
    // replays, run through an OwnedSession with the same options the
    // server derives from the Hello (and `stbpu simulate` derives from
    // the equivalent flags), so all three agree bit-for-bit.
    let profile = profiles::by_name(&workload).ok_or_else(|| {
        Failure::from(stbpu_engine::EngineError::UnknownWorkload(workload.clone()))
    })?;
    let mut source = TraceGenerator::new(profile, seed).into_source(branches);
    let threads = source.thread_count() as u64;
    let mut events: Vec<TraceEvent> = Vec::new();
    source.for_each_batch(4_096, |batch| {
        events.extend_from_slice(batch);
        Ok::<(), Failure>(())
    })?;

    let registry = ModelRegistry::standard();
    let built = registry.build(&model, seed).map_err(Failure::from)?;
    let policy = if protection == "auto" {
        auto_protection(&model)
    } else {
        protection_from_str(&protection).map_err(Failure::from)?
    };
    let mut sim = OwnedSession::new(
        built,
        policy,
        SessionOptions {
            warmup: Warmup::Branches(warmup_branches),
            threads: (threads != 0).then_some(threads as usize),
            interval: (interval != 0).then_some(interval),
            workload: Some(workload.clone()),
        },
    )
    .map_err(|e| Failure::Usage(e.to_string()))?;
    sim.feed_batch(&events)
        .map_err(|e| Failure::Runtime(e.to_string()))?;
    let (reference, ref_intervals) = sim.finish_with_intervals();

    let mut enc = ChunkEncoder::new(32 << 10);
    let mut chunks = Vec::new();
    for ev in &events {
        if let Some(chunk) = enc.push(ev)? {
            chunks.push(chunk);
        }
    }
    let tail = enc.flush();
    if !tail.is_empty() {
        chunks.push(tail);
    }
    let fixture = Arc::new(Fixture {
        chunks,
        reference,
        ref_intervals,
    });

    // An in-process daemon unless the test targets a running one.
    let (server, addr) = match connect {
        Some(addr) => (None, addr),
        None => {
            let s = server::spawn("127.0.0.1:0", ServerConfig::default())
                .map_err(|e| Failure::Runtime(format!("cannot bind loopback: {e}")))?;
            let addr = s.addr().to_string();
            (Some(s), addr)
        }
    };

    let mut handles = Vec::with_capacity(clients);
    for idx in 0..clients {
        let fixture = Arc::clone(&fixture);
        let addr = addr.clone();
        let hello = Hello {
            session: 1,
            seed,
            model: model.clone(),
            protection: protection.clone(),
            workload: workload.clone(),
            warmup_branches,
            interval,
            threads,
        };
        handles.push(std::thread::spawn(move || -> Result<WireReport, String> {
            let client =
                ServeClient::connect(addr.as_str()).map_err(|e| format!("client {idx}: {e}"))?;
            let mut handle = client
                .open(hello)
                .map_err(|e| format!("client {idx}: {e}"))?;
            let mut intervals = Vec::new();
            for chunk in &fixture.chunks {
                intervals.extend(
                    handle
                        .send_chunk(chunk)
                        .map_err(|e| format!("client {idx}: {e}"))?,
                );
            }
            let (report, tail) = handle.finish().map_err(|e| format!("client {idx}: {e}"))?;
            intervals.extend(tail);
            check_parity(&report, &fixture.reference).map_err(|e| format!("client {idx}: {e}"))?;
            if intervals != fixture.ref_intervals {
                return Err(format!(
                    "client {idx}: streamed {} interval windows, offline run produced {}",
                    intervals.len(),
                    fixture.ref_intervals.len()
                ));
            }
            Ok(report)
        }));
    }

    let mut first_report = None;
    let mut first_err = None;
    for h in handles {
        match h.join() {
            Ok(Ok(report)) => {
                first_report.get_or_insert(report);
            }
            Ok(Err(e)) => {
                first_err.get_or_insert(e);
            }
            Err(_) => {
                first_err.get_or_insert("a self-test client panicked".to_string());
            }
        }
    }
    if let Some(s) = server {
        s.shutdown();
    }
    if let Some(e) = first_err {
        return Err(Failure::Runtime(e));
    }
    let report = first_report.expect("at least one client ran");

    if json {
        // Byte-identical to `stbpu simulate --format json` for the same
        // configuration: the smoke test in CI diffs the two lines.
        println!("{}", wire_report_to_json(&report, seed));
    } else {
        println!(
            "serve self-test passed: {clients} clients over {addr}, all reports \
             bit-identical to the offline run"
        );
        println!(
            "{} under {} over {} (seed {seed})",
            report.model, report.protection, report.workload
        );
        println!(
            "  OAE {:.6}  direction {:.6}  target {:.6}",
            report.oae, report.direction_rate, report.target_rate
        );
        println!(
            "  {} branches, {} mispredictions, {} evictions, {} flushes, {} re-randomizations",
            report.branches,
            report.mispredictions,
            report.evictions,
            report.flushes,
            report.rerandomizations
        );
    }
    Ok(())
}

/// A [`WireReport`] in exactly the JSON shape `stbpu simulate --format
/// json` prints (same field order, same `{:.6}` rate formatting), so the
/// two commands' outputs can be compared byte-for-byte.
fn wire_report_to_json(r: &WireReport, seed: u64) -> String {
    format!(
        "{{\"workload\":{},\"model\":{},\"protection\":{},\"seed\":{seed},\
         \"oae\":{:.6},\"direction_rate\":{:.6},\"target_rate\":{:.6},\
         \"branches\":{},\"mispredictions\":{},\"evictions\":{},\
         \"flushes\":{},\"rerandomizations\":{}}}",
        escape(&r.workload),
        escape(&r.model),
        escape(&r.protection),
        r.oae,
        r.direction_rate,
        r.target_rate,
        r.branches,
        r.mispredictions,
        r.evictions,
        r.flushes,
        r.rerandomizations,
    )
}

//! The single source of truth for `stbpu` help text.
//!
//! Every subcommand's usage string lives in [`SUBCOMMANDS`]; `stbpu
//! --help`, `stbpu help <cmd>` and `<cmd> --help` all print from here, and
//! the model/workload catalogs are generated live from the
//! [`stbpu_engine::ModelRegistry`] and `stbpu_trace::profiles` tables —
//! so help can never drift from what is actually registered.

use stbpu_engine::ModelRegistry;
use stbpu_trace::profiles;

/// One subcommand's help entry.
pub struct Sub {
    /// Subcommand name.
    pub name: &'static str,
    /// One-line summary for the main help screen.
    pub summary: &'static str,
    /// Full usage text (flags and examples).
    pub help: &'static str,
}

/// Every subcommand, in help order.
pub const SUBCOMMANDS: &[Sub] = &[
    Sub {
        name: "simulate",
        summary: "run one model over one workload, streaming",
        help: "\
usage: stbpu simulate --model SPEC [--workload NAME | --trace-file PATH] [options]

  --model SPEC          registry model spec (e.g. skl, st_skl@r=0.01); see the
                        model catalog below
  --workload NAME       named workload profile (default 541.leela)
  --trace-file PATH     line-format trace file instead of a generated workload
  --protection P        unprotected|stbpu|ucode1|ucode2|conservative|auto
                        (default auto: st_* models run under stbpu, the
                        conservative model under conservative, others
                        unprotected)
  --branches N          branches to generate (default 120000; ignored for
                        trace files, which replay their stored stream)
  --seed S              trace + secret-token seed (default 42)
  --threads T           hardware-thread provision (default: from the source)
  --interval N          also record OAE-over-time windows of N branches
  --warmup F            fractional warm-up (default 0.1)
  --warmup-branches N   absolute warm-up budget (works on hint-less sources)
  --format F            human|json|csv (default human)
  --progress            streaming progress on stderr (sequential path only)
  --shards N            two-pass sharded run: pass 1 fast-forwards to the
                        N-1 shard boundaries and checkpoints them, pass 2
                        simulates the shards from those warm checkpoints —
                        output is bit-identical to the sequential run
                        (CI diffs the two)
  --checkpoint-dir DIR  with --shards: cache boundary checkpoints in DIR
                        so repeat runs skip pass 1 (keyed on every knob
                        that affects the stream)
  --resume-from FILE    resume a .stck checkpoint to the end of its
                        workload; model/protection/seed come from the
                        checkpoint (--model is not needed)
  --phases FILE         SimPoint estimation: simulate only the .stbp
                        file's representative slices and reconstruct the
                        whole-trace report as the branch-weighted sum
                        (stream/seed/branches come from the file; any
                        --workload/--trace-file overrides the base
                        stream; zero warm-up always)
  --compare-full        with --phases: also run the full simulation and
                        report the estimated-vs-full error on stderr

examples:
  stbpu simulate --model st_skl@r=0.05 --workload 505.mcf --branches 1000000
  stbpu simulate --model skl --trace-file capture.trace --warmup-branches 500 --format json
  stbpu simulate --model st_skl@r=0.05 --branches 1000000 --shards 4 --format json
  stbpu simulate --resume-from boundary.stck --branches 1000000 --format json
  stbpu simulate --model st_skl@r=0.05 --phases leela.stbp --format json
  stbpu simulate --model skl --phases leela.stbp --compare-full
",
    },
    Sub {
        name: "grid",
        summary: "run a workloads x scenarios x seeds experiment grid",
        help: "\
usage: stbpu grid [--spec FILE] [--suite NAME] [grid flags] [output flags]

Declare the grid in a TOML/JSON spec file (--spec; same keys as the
flags), inline, or by naming a workload suite; inline flags override the
spec file, and a suite fills whatever both left unset.

  --spec FILE           TOML or JSON experiment spec (see README)
  --suite NAME          named workloads x scenarios bundle
                        (paper|spec-like|adversarial|stress; see the suite
                        catalog below)
  --workloads A,B       named workload profiles
  --trace-files P,Q     trace files as workloads (line or binary .stbt,
                        auto-detected by magic)
  --scenarios M:P,...   scenario cells, each 'model:protection'
                        (e.g. skl:unprotected,st_skl@r=0.05:stbpu)
  --fig3                shorthand for the five Figure 3 scheme cells
  --seeds 1,2,3         seeds (each workload x seed pair is one suite)
  --branches N          branches per generated stream (default 20000)
  --warmup F            fractional warm-up
  --warmup-branches N   absolute warm-up budget
  --interval N          attach OAE-over-time windows of N branches
  --threads T           explicit hardware-thread provision
  --name NAME           experiment name (labels only)
  --format F            csv|json (default csv)
  --out FILE            write results to FILE instead of stdout
  --summary             also print per-scenario mean/geomean OAE to stderr
  --checkpoint-dir DIR  crash-safe mode: persist per-suite results and
                        in-flight cell checkpoints in DIR; a killed run
                        rerun with the same flags resumes where it died
                        and produces byte-identical output. DIR is bound
                        to one grid shape (fingerprinted manifest).
  --checkpoint-every N  in-flight cell checkpoint cadence in branches
                        (default 1000000; requires --checkpoint-dir)

examples:
  stbpu grid --workloads 505.mcf,541.leela --fig3 --branches 8000
  stbpu grid --suite paper --branches 4000 --summary
  stbpu grid --spec sweep.toml --format json --out sweep.json
",
    },
    Sub {
        name: "attack",
        summary: "execute the Table I attack surface + monitor telemetry",
        help: "\
usage: stbpu attack [--seed S] [--no-surface] [--no-telemetry] [options]

Runs the executed Table I collision-attack surface (baseline vs STBPU,
cell by cell), then records attacker-observable monitor telemetry — the
branch-indexed timeline of secret-token re-randomizations and policy
flushes — over a realistic workload stream.

  --seed S              attack + trace seed (default 42)
  --no-surface          skip the Table I surface
  --no-telemetry        skip the telemetry timelines
  --model SPEC          ST model for the re-randomization timeline
                        (default st_skl@r=0.001 — aggressive thresholds so
                        the rhythm is visible at small branch counts)
  --workload NAME       telemetry workload (default 541.leela; the flush
                        timeline always uses apache2_prefork_c128)
  --branches N          telemetry stream length (default 100000)
  --json                machine-readable telemetry (marks arrays) on stdout

examples:
  stbpu attack
  stbpu attack --no-surface --model st_tage64@r=0.0005 --branches 500000 --json
",
    },
    Sub {
        name: "trace",
        summary: "generate, inspect, convert and phase-cluster trace files",
        help: "\
usage: stbpu trace generate --workload NAME --out FILE [--branches N] [--seed S] [--format F]
       stbpu trace inspect FILE [--json]     ('-' reads a stream from stdin)
       stbpu trace convert IN OUT [--name NAME] [--format F] [--from F]
       stbpu trace simpoint (--workload NAME | --trace-file PATH) --out FILE.stbp [options]

Three on-disk trace formats exist: the line text format, the compact
binary .stbt format (magic \"STBT\"; ~5x smaller, far faster to ingest)
and the CBP championship import format (magic \"CBPT\"; fixed 18-byte
branch records, the real-trace frontend) — byte-level specs in the
README. Inputs are auto-detected by magic; outputs follow the
destination extension (.stbt = binary, .cbp = CBP), with
--format line|binary|cbp|auto overriding.

generate streams a synthetic workload to a trace file in O(1) memory
(any --branches works). inspect streams a file of any format and
reports the detected format, file size, declared metadata, exact
event/branch counts and scan throughput (records/s); on a .stbp phase
file (magic \"STBP\") it reports phase count, slice size, per-phase
weights and embedded-checkpoint presence instead. convert re-serializes
between formats — normalizing headers (branches/threads recomputed) and
optionally renaming the trace; --from line|binary|cbp asserts the input
format (exits loudly on a mismatch instead of trusting auto-detection).
line <-> binary round trips are lossless and byte-identical, and
cbp -> .stbt -> cbp reproduces any valid .cbp byte-for-byte; converting
*into* cbp is lossy (thread ids, non-branch events and gaps drop).

simpoint runs the SimPoint pipeline: one streaming basic-block-vector
pass over the stream, seeded k-means over the slices, one weighted
representative slice per phase, and a .stbp phase file out (README has
the byte-level spec). `stbpu simulate --phases` then estimates
whole-trace metrics from the representatives alone.

simpoint options:
  --branches N          branches for generated workloads (default 120000)
  --seed S              stream seed (default 42)
  --slice-branches N    slice size in branches (default 100000)
  --k-max K             largest k the BIC scan considers (default 8)
  --k K                 skip the scan, force exactly K clusters
  --cluster-seed S      k-means RNG seed (default 42)
  --embed-model SPEC    also cut and embed one warm .stck checkpoint per
                        phase while simulating SPEC (pins the file to
                        that model/protection/seed; omit for a
                        model-independent file)
  --protection P        protection for --embed-model (default auto)

examples:
  stbpu trace generate --workload apache2_prefork_c128 --branches 2000000 --out apache.stbt
  stbpu trace inspect apache.stbt --json
  stbpu trace convert apache.stbt apache.trace
  stbpu trace convert --from cbp capture.cbp capture.stbt
  stbpu trace simpoint --workload 541.leela --branches 10000000 --out leela.stbp
  stbpu trace inspect leela.stbp
",
    },
    Sub {
        name: "checkpoint",
        summary: "inspect and create .stck simulation checkpoints",
        help: "\
usage: stbpu checkpoint inspect FILE [--json]
       stbpu checkpoint create --model SPEC --at-branches N --out FILE [options]

A .stck checkpoint (magic \"STCK\"; see the README byte-level spec)
freezes one simulation mid-stream: model spec, workload label,
protection, seed, stream position and the full session + model state
blobs, tailed by an FNV-1a checksum. `stbpu simulate --resume-from`
continues one to the end of its workload; the sharded driver and the
grid crash-resume layer read and write the same format.

inspect decodes FILE (verifying version and checksum) and prints its
metadata and blob sizes. create runs the fast-forward pass over a
workload and snapshots immediately after branch N retires:

  --model SPEC          registry model spec (required)
  --workload NAME       named workload profile (default 541.leela)
  --trace-file PATH     trace file instead of a generated workload
  --protection P        protection policy (default auto)
  --at-branches N       snapshot position, in retired branches (required)
  --out FILE            where the .stck file goes (required)
  --branches N          stream length for generated workloads
                        (default 120000; must be >= --at-branches)
  --seed S              trace + token seed (default 42)
  --threads T           hardware-thread provision (default: from source)
  --interval N          interval cadence baked into the session state
  --warmup F            fractional warm-up (default 0.1)
  --warmup-branches N   absolute warm-up budget

examples:
  stbpu checkpoint create --model st_skl@r=0.05 --at-branches 60000 --out half.stck
  stbpu checkpoint inspect half.stck --json
  stbpu simulate --resume-from half.stck --format json
",
    },
    Sub {
        name: "figures",
        summary: "reproduce the paper's figures and tables",
        help: "\
usage: stbpu figures NAME... | --all [--quick] [options]

Each figure prints exactly what its historical `cargo run --bin` harness
printed — the implementations are shared, so outputs are bit-identical
for identical knobs. With several figures a `== name ==` banner goes to
stderr between them; stdout stays pure figure output.

  --all                 run every figure/table (see list below)
  --quick               deterministic CI-sized knobs (8000 branches,
                        seed 42, scaled-down pipeline figures)
  --branches N          override branches per workload
  --seed S              override the seed
  --workload NAME       oae_over_time focus workload
  --windows N           oae_over_time window count
  --list                list figure names and exit

examples:
  stbpu figures fig3
  stbpu figures --all --quick
",
    },
    Sub {
        name: "bench",
        summary: "deterministic perf harness with machine-readable output",
        help: "\
usage: stbpu bench [--suite NAME] [--quick] [--json] [--out-dir DIR] [baseline flags]

Streams a fixed scheme suite (baseline, stbpu, ucode1, conservative,
st_tage64) over one generated workload, measuring wall-clock time,
branches/second and OAE per scheme. Each scheme writes a
BENCH_<name>.json record into --out-dir so CI can archive perf
trajectories; OAE is deterministic for a fixed seed and is the value the
baseline gate compares.

  --suite NAME          default: one batched run per scheme.
                        throughput: batched AND single-event runs per
                        scheme — hard-fails unless both paths are
                        bit-identical, emits one BENCH_throughput.json
                        (branches/s per path, batch speedup), and treats
                        --check drift as warn-only notes (wall-clock is
                        machine-dependent)
                        ingest: writes one trace to disk in both formats
                        (line + binary .stbt), measures parse-only and
                        parse+simulate branches/s per format — hard-fails
                        unless line and binary produce bit-identical
                        reports — and emits one BENCH_ingest.json (file
                        sizes, size ratio, ingest speedup)
                        shard: times the sequential run, then sharded
                        runs at N=2 and N=4 (pass-1 cut cost, cold and
                        warm pass-2 wall time, checkpoint save/load
                        throughput) — hard-fails unless every sharded
                        report is bit-identical to the sequential one —
                        and emits one BENCH_shard.json (scaling curve,
                        warm-resume speedup, core count)
                        serve: spawns the streaming daemon on loopback,
                        drives concurrent socket clients through it —
                        hard-fails unless every streamed report is
                        bit-identical to an offline run — and emits one
                        BENCH_serve.json (sessions/s, aggregate branches/s,
                        p50/p99 flush-to-report latency)
                        simpoint: distills the workload into a .stbp
                        phase file (one BBV + k-means pass), estimates
                        every scheme from the representative slices, and
                        — unless --estimate-only — runs each scheme in
                        full too, hard-failing if any |estimated − full|
                        OAE exceeds the documented 0.02 bound or the
                        speedup falls below 10x at paper scale; emits one
                        BENCH_simpoint.json
  --quick               200k branches per scheme (default 2M;
                        ingest suite defaults to a 10M-branch trace,
                        shard/simpoint suites to 10M branches / 1M with
                        --quick)
  --branches N          explicit branch count (overrides --quick/default)
  --seed S              trace + token seed (default 42)
  --workload NAME       workload profile (default 541.leela)
  --clients N           serve suite: concurrent socket clients (default 8)
  --sessions N          serve suite: sessions per client (default 2)
  --out-dir DIR         where BENCH_*.json records go (default .)
  --json                print the combined record array on stdout
  --check FILE          fail (exit 1) if any scheme's OAE drifts from the
                        committed baseline beyond --tolerance
                        (throughput suite: warn-only branches/s notes;
                        simpoint suite: compares estimated OAE against
                        the committed ci/simpoint-reference.json)
  --update-baseline FILE  write/refresh the baseline file instead
                        (throughput suite also refreshes its throughput
                        section; the default suite preserves it)
  --estimate-only       simpoint suite: skip the full reference runs —
                        the cheap per-PR CI gate shape (estimates are
                        deterministic, so --check still gates exactly)
  --update-reference FILE  simpoint suite: write/refresh the estimation
                        reference file instead of checking it
  --tolerance T         OAE drift tolerance for --check (default 1e-9)

examples:
  stbpu bench --quick --json --out-dir bench-artifacts --check ci/baseline.json
  stbpu bench --quick --update-baseline ci/baseline.json
  stbpu bench --suite throughput --quick --check ci/baseline.json
  stbpu bench --suite ingest --quick --check ci/baseline.json
  stbpu bench --suite shard --quick --out-dir bench-artifacts
  stbpu bench --suite serve --quick --out-dir bench-artifacts
  stbpu bench --suite simpoint --estimate-only --check ci/simpoint-reference.json
",
    },
    Sub {
        name: "serve",
        summary: "streaming TCP simulation daemon (and its socket self-test)",
        help: "\
usage: stbpu serve [--listen ADDR] [daemon options]
       stbpu serve --client [--connect ADDR] [self-test options]

Daemon mode binds a TCP listener and accepts sessions over a
length-prefixed binary protocol (see the README frame spec): a client
sends Hello{model, protection, workload, seed, warmup, interval},
streams raw .stbt record bytes in TraceChunk frames, and receives
IntervalRecord frames as windows complete plus one FinalReport after
Flush — bit-identical to running `stbpu simulate` offline on the same
stream. Per-connection quotas bound sessions and buffered bytes;
overload answers with advisory Backpressure/Resume frames and TCP
pushback, never a dropped session.

daemon options:
  --listen ADDR         bind address (default 127.0.0.1:4588)
  --workers N           worker threads (default: one per core, max 8)
  --max-sessions N      live sessions per connection (default 16)
  --max-buffered N      buffered chunk bytes per connection (default
                        8 MiB, minimum one 1 MiB frame)
  --idle-timeout-ms N   idle session reap timeout (default 30000)
  --write-timeout-ms N  per-write timeout to a client socket; a client
                        that stops reading loses its connection after
                        at most this long (default 10000)

self-test options (--client):
  --connect ADDR        target a running daemon (default: spawn one
                        in-process on loopback)
  --clients N           concurrent socket clients (default 2)
  --workload NAME       workload profile (default 541.leela)
  --model SPEC          model spec (default st_skl)
  --protection P        protection policy (default auto)
  --branches N          branches per session (default 60000)
  --seed S              trace + token seed (default 42)
  --warmup-branches N   warm-up budget (default branches/10)
  --interval N          also stream OAE interval windows of N branches
  --json                print the streamed report as `stbpu simulate
                        --format json` would (byte-identical for the
                        same flags — CI diffs the two)

every self-test client hard-fails unless its streamed report is
bit-identical to one offline reference run of the same events.

examples:
  stbpu serve --listen 0.0.0.0:4588
  stbpu serve --client --clients 4 --branches 100000
  stbpu serve --client --connect 10.0.0.7:4588 --json
",
    },
    Sub {
        name: "analyze",
        summary: "workspace static-analysis gate (determinism, lock-scope, panic-freedom)",
        help: "\
usage: stbpu analyze [--format human|json] [--root DIR] [--allowlist FILE] [--out FILE]
       stbpu analyze --list-lints

Walks every workspace crate's src/ tree through the hand-rolled lint
engine in crates/analyze and reports positioned diagnostics
(file:line:col, lint id, rationale). Exit 0 means clean; any finding not
covered by the checked-in allowlist exits 1 — CI runs this as a hard
gate. Lints: lock-scope (no blocking I/O while a Mutex guard is live),
determinism (no HashMap/HashSet iteration where order can reach
serialized output), wall-clock (no Instant::now/SystemTime in
OAE-affecting crates), panic-freedom (no unwrap/expect/panic!/unchecked
indexing in serve request/decode paths). #[cfg(test)] scopes are always
skipped.

Findings are suppressible only via ci/analyze-allow.toml, where every
entry names a lint, file, source pattern and a written justification
(see CONTRIBUTING.md). Stale entries warn but do not fail.

  --format F            human|json (default human; json is the CI
                        artifact schema)
  --root DIR            workspace root (default: walk up from the
                        working directory to the [workspace] manifest)
  --allowlist FILE      allowlist path (default <root>/ci/analyze-allow.toml;
                        a missing file is an empty allowlist)
  --out FILE            write the report to FILE instead of stdout
  --list-lints          print the lint catalog (id, invariant, rationale,
                        path scope) and exit

examples:
  stbpu analyze
  stbpu analyze --format json --out bench-artifacts/analyze-report.json
  stbpu analyze --list-lints
",
    },
    Sub {
        name: "list",
        summary: "list registered models, workloads, suites and figures",
        help: "\
usage: stbpu list [models|workloads|suites|figures]

Prints the live catalogs (everything name-resolvable from the shell).
With no operand, prints all four.
",
    },
];

/// Looks up a subcommand's help entry.
pub fn sub(name: &str) -> Option<&'static Sub> {
    SUBCOMMANDS.iter().find(|s| s.name == name)
}

/// Prints the top-level help: subcommands plus the live model catalog and
/// workload listing.
pub fn print_main() {
    println!("stbpu — STBPU reproduction driver: figures, attacks, workloads, benchmarks");
    println!();
    println!("usage: stbpu <command> [args]   (stbpu help <command> for details)");
    println!();
    println!("commands:");
    for s in SUBCOMMANDS {
        println!("  {:<10} {}", s.name, s.summary);
    }
    println!();
    print_models();
    println!();
    print_workloads();
}

/// Prints the live model catalog from the standard registry.
pub fn print_models() {
    let registry = ModelRegistry::standard();
    println!("models (every spec accepts a seed; ST models take @r=..., gshare @bits=...):");
    for (name, summary, alias) in registry.catalog() {
        if !alias {
            println!("  {name:<16} {summary}");
        }
    }
    let aliases = registry.alias_names().join(", ");
    println!("  aliases: {aliases}");
}

/// Prints the live workload-suite catalog.
pub fn print_suites() {
    println!("workload suites (grid --suite NAME; workloads x scenarios bundles):");
    for s in stbpu_engine::WorkloadSuite::all() {
        println!(
            "  {:<12} {} ({} workloads x {} scenarios, default {} branches)",
            s.name,
            s.summary,
            s.workload_names().len(),
            s.scenario_specs().len(),
            s.branches
        );
    }
}

/// Prints the live workload-profile listing.
pub fn print_workloads() {
    println!(
        "workloads ({} SPEC CPU 2017 profiles, {} application profiles):",
        profiles::SPEC.len(),
        profiles::APPS.len()
    );
    print_name_columns(profiles::SPEC.iter().map(|p| p.name));
    print_name_columns(profiles::APPS.iter().map(|p| p.name));
}

fn print_name_columns<'a>(names: impl Iterator<Item = &'a str>) {
    let names: Vec<&str> = names.collect();
    for row in names.chunks(3) {
        let mut line = String::from(" ");
        for n in row {
            line.push_str(&format!(" {n:<24}"));
        }
        println!("{}", line.trim_end());
    }
}

/// Prints the figure catalog (from the shared bench registry).
pub fn print_figures() {
    println!("figures:");
    for f in stbpu_bench::figures::ALL {
        println!("  {:<14} {}", f.name, f.summary);
    }
}

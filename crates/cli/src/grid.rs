//! `stbpu grid` — declarative experiment grids from flags, spec files, or
//! named workload suites (`--suite paper|spec-like|adversarial|stress`).

use crate::args::Args;
use crate::Failure;
use stbpu_engine::{ExperimentSpec, WorkloadSuite};

pub fn run(rest: &[String]) -> Result<(), Failure> {
    let mut a = Args::new(rest);
    let mut spec = match a.opt("--spec")? {
        Some(path) => ExperimentSpec::load(std::path::Path::new(&path)).map_err(Failure::from)?,
        None => ExperimentSpec::default(),
    };
    let suite = match a.opt("--suite")? {
        Some(name) => Some(WorkloadSuite::resolve(&name).map_err(Failure::from)?),
        None => None,
    };

    // Inline flags override (or extend an empty) spec.
    if let Some(w) = a.opt_list("--workloads")? {
        spec.workloads = w;
    }
    if let Some(f) = a.opt_list("--trace-files")? {
        spec.trace_files = f;
    }
    if let Some(s) = a.opt_list("--scenarios")? {
        spec.scenarios = s;
    }
    if a.flag("--fig3") {
        if !spec.scenarios.is_empty() {
            return Err(Failure::Usage(
                "--fig3 conflicts with scenarios given via --scenarios or the spec file"
                    .to_string(),
            ));
        }
        spec.scenarios = vec![
            "skl:unprotected".to_string(),
            "st_skl@r=0.05:stbpu".to_string(),
            "skl:ucode1".to_string(),
            "skl:ucode2".to_string(),
            "conservative:conservative".to_string(),
        ];
    }
    if let Some(seeds) = a.opt_list("--seeds")? {
        spec.seeds = seeds
            .iter()
            .map(|s| {
                s.parse()
                    .map_err(|_| format!("flag '--seeds': '{s}' is not an integer"))
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(b) = a.opt_parse("--branches", "an integer")? {
        spec.branches = Some(b);
    }
    if let Some(w) = a.opt_parse("--warmup", "a number")? {
        spec.warmup = Some(w);
    }
    if let Some(w) = a.opt_parse("--warmup-branches", "an integer")? {
        spec.warmup_branches = Some(w);
    }
    if let Some(i) = a.opt_parse("--interval", "an integer")? {
        spec.interval = Some(i);
    }
    if let Some(t) = a.opt_parse("--threads", "an integer")? {
        spec.threads = Some(t);
    }
    if let Some(n) = a.opt("--name")? {
        spec.name = Some(n);
    }
    let json = match a.opt("--format")?.as_deref() {
        None | Some("csv") => false,
        Some("json") => true,
        Some(other) => {
            return Err(Failure::Usage(format!(
                "unknown format '{other}' (csv|json)"
            )))
        }
    };
    let checkpoint_dir = a.opt("--checkpoint-dir")?;
    let checkpoint_every: Option<u64> = a.opt_parse("--checkpoint-every", "an integer")?;
    let out = a.opt("--out")?;
    let summary = a.flag("--summary");
    a.finish_empty()?;

    if checkpoint_every.is_some() && checkpoint_dir.is_none() {
        return Err(Failure::Usage(
            "--checkpoint-every requires --checkpoint-dir".to_string(),
        ));
    }

    // A suite supplies defaults for whatever the spec file and inline
    // flags left unset, so `--suite paper --branches 4000` scales the
    // whole battery down without respelling its workloads.
    if let Some(s) = suite {
        if spec.workloads.is_empty() && spec.trace_files.is_empty() {
            spec.workloads = s.workload_names().iter().map(|w| w.to_string()).collect();
        }
        if spec.scenarios.is_empty() {
            spec.scenarios = s.scenario_specs().iter().map(|x| x.to_string()).collect();
        }
        if spec.seeds.is_empty() {
            spec.seeds = s.seeds.to_vec();
        }
        if spec.branches.is_none() {
            spec.branches = Some(s.branches);
        }
        if spec.name.is_none() {
            spec.name = Some(s.name.to_string());
        }
    }

    let mut experiment = spec.to_experiment().map_err(Failure::from)?;
    if let Some(dir) = checkpoint_dir {
        experiment = experiment.checkpoint_dir(dir);
    }
    if let Some(every) = checkpoint_every {
        experiment = experiment.checkpoint_every(every);
    }
    let set = experiment.run().map_err(Failure::from)?;

    let body = if json { set.to_json() } else { set.to_csv() };
    match out {
        Some(path) => {
            std::fs::write(&path, &body)?;
            eprintln!("wrote {} records to {path}", set.records().len());
        }
        None => print!("{body}"),
    }

    if summary {
        let scenarios = spec.scenarios;
        eprintln!("{:<34} {:>10} {:>10}", "scenario", "mean OAE", "geomean");
        for (i, (m, g)) in set
            .mean_oae_by_scenario()
            .iter()
            .zip(set.geomean_oae_by_scenario())
            .enumerate()
        {
            let label = scenarios.get(i).map(String::as_str).unwrap_or("?");
            eprintln!("{label:<34} {m:>10.6} {g:>10.6}");
        }
    }
    Ok(())
}

//! The `stbpu` command-line driver.
//!
//! One binary covers the whole reproduction surface: `simulate` (one
//! model × one workload, streaming), `grid` (declarative experiment
//! grids, inline or from TOML/JSON spec files, or named workload suites),
//! `attack` (the executed Table I surface + monitor telemetry), `trace`
//! (generate / inspect / convert trace files in the line or binary
//! `.stbt` format), `figures` (every paper figure/table,
//! shared bit-identically with the `cargo run --bin` shims), `bench`
//! (the deterministic perf harness CI's regression gate runs on) and
//! `serve` (the streaming TCP daemon plus its socket self-test).
//!
//! Model and workload names resolve through the live
//! [`stbpu_engine::ModelRegistry`] and `stbpu_trace::profiles` tables, so
//! every registered predictor × mapper × BTB composition and every trace
//! profile is reachable from the shell without recompiling. The library
//! crate exists so integration tests can exercise parsing and dispatch;
//! the `stbpu` binary is a two-line wrapper over [`run`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze_cmd;
pub mod args;
mod attack;
mod bench_cmd;
mod checkpoint_cmd;
mod figures_cmd;
mod grid;
mod help;
mod serve_cmd;
mod simulate;
mod trace_cmd;

use stbpu_engine::EngineError;

/// Why a subcommand failed, deciding the process exit code.
#[derive(Debug)]
pub enum Failure {
    /// Bad arguments / unknown names — exit 2.
    Usage(String),
    /// The work itself failed (I/O, simulation, drift) — exit 1.
    Runtime(String),
}

impl Failure {
    fn exit_code(&self) -> i32 {
        match self {
            Failure::Usage(_) => 2,
            Failure::Runtime(_) => 1,
        }
    }

    fn message(&self) -> &str {
        match self {
            Failure::Usage(m) | Failure::Runtime(m) => m,
        }
    }
}

impl From<String> for Failure {
    fn from(msg: String) -> Self {
        Failure::Usage(msg)
    }
}

impl From<std::io::Error> for Failure {
    fn from(e: std::io::Error) -> Self {
        Failure::Runtime(e.to_string())
    }
}

impl From<stbpu_trace::SourceError> for Failure {
    fn from(e: stbpu_trace::SourceError) -> Self {
        Failure::Runtime(e.to_string())
    }
}

impl From<EngineError> for Failure {
    fn from(e: EngineError) -> Self {
        match e {
            // Name/spec mistakes are usage errors; append the live
            // workload catalog where the engine's message has no
            // suggestion list of its own.
            EngineError::UnknownWorkload(w) => Failure::Usage(format!(
                "unknown workload profile '{w}'\nknown workloads: {}",
                known_workloads().join(", ")
            )),
            EngineError::UnknownSuite(s) => Failure::Usage(format!(
                "unknown workload suite '{s}'\nknown suites: {}",
                stbpu_engine::WorkloadSuite::names().join(", ")
            )),
            e @ (EngineError::UnknownModel { .. }
            | EngineError::BadParam { .. }
            | EngineError::UnknownProtection(_)
            | EngineError::InvalidScenario(_)
            | EngineError::EmptyGrid(_)
            | EngineError::Spec(_)) => Failure::Usage(e.to_string()),
            e @ (EngineError::WorkloadSource(_)
            | EngineError::Sim(_)
            | EngineError::Checkpoint(_)
            | EngineError::Shard(_)
            | EngineError::Phase(_)) => Failure::Runtime(e.to_string()),
        }
    }
}

/// Every registered workload-profile name, in table order.
pub fn known_workloads() -> Vec<&'static str> {
    stbpu_trace::profiles::fig3_workloads()
        .iter()
        .map(|p| p.name)
        .collect()
}

/// Parses and runs one invocation (`argv` excludes the program name).
/// Returns the process exit code; errors are printed to stderr.
pub fn run(argv: &[String]) -> i32 {
    let (cmd, rest) = match argv.first().map(String::as_str) {
        None | Some("--help") | Some("-h") => {
            help::print_main();
            return 0;
        }
        Some("help") => {
            match argv.get(1).map(String::as_str) {
                None => help::print_main(),
                Some(name) => match help::sub(name) {
                    Some(s) => print!("{}", s.help),
                    None => {
                        eprintln!("stbpu: no such command '{name}'");
                        return 2;
                    }
                },
            }
            return 0;
        }
        Some(cmd) => (cmd, &argv[1..]),
    };

    if rest.iter().any(|t| t == "--help" || t == "-h") {
        match help::sub(cmd) {
            Some(s) => {
                print!("{}", s.help);
                if matches!(cmd, "simulate" | "grid" | "bench") {
                    println!();
                    help::print_models();
                    println!();
                    help::print_workloads();
                }
                if cmd == "grid" {
                    println!();
                    help::print_suites();
                }
                if cmd == "figures" {
                    println!();
                    help::print_figures();
                }
                return 0;
            }
            None => {
                eprintln!("stbpu: no such command '{cmd}'");
                return 2;
            }
        }
    }

    let result = match cmd {
        "simulate" => simulate::run(rest),
        "grid" => grid::run(rest),
        "attack" => attack::run(rest),
        "trace" => trace_cmd::run(rest),
        "figures" => figures_cmd::run(rest),
        "bench" => bench_cmd::run(rest),
        "checkpoint" => checkpoint_cmd::run(rest),
        "serve" => serve_cmd::run(rest),
        "analyze" => analyze_cmd::run(rest),
        "list" => list(rest),
        other => {
            eprintln!(
                "stbpu: no such command '{other}' (commands: {}; see stbpu --help)",
                help::SUBCOMMANDS
                    .iter()
                    .map(|s| s.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            return 2;
        }
    };

    match result {
        Ok(()) => 0,
        Err(f) => {
            eprintln!("stbpu {cmd}: {}", f.message());
            if matches!(f, Failure::Usage(_)) {
                eprintln!("(see stbpu help {cmd})");
            }
            f.exit_code()
        }
    }
}

fn list(rest: &[String]) -> Result<(), Failure> {
    let what = args::Args::new(rest).finish()?;
    let all = what.is_empty();
    for w in if all {
        vec!["models", "workloads", "suites", "figures"]
    } else {
        what.iter().map(String::as_str).collect()
    } {
        match w {
            "models" => help::print_models(),
            "workloads" => help::print_workloads(),
            "suites" => help::print_suites(),
            "figures" => help::print_figures(),
            other => {
                return Err(Failure::Usage(format!(
                    "unknown catalog '{other}' (models|workloads|suites|figures)"
                )))
            }
        }
        if all {
            println!();
        }
    }
    Ok(())
}

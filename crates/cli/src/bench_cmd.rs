//! `stbpu bench` — the deterministic perf harness behind CI's regression
//! gate.
//!
//! A fixed scheme suite streams one generated workload through a
//! `SimSession` per scheme, measuring wall-clock time, branches/second
//! and OAE. Every scheme writes a `BENCH_<name>.json` record (archived by
//! CI as a perf-trajectory artifact); OAE is bit-deterministic for a
//! fixed (workload, branches, seed) configuration, so `--check` can gate
//! regressions against the committed `ci/baseline.json` with a tight
//! tolerance while wall-clock numbers remain informational.

use crate::args::Args;
use crate::Failure;
use stbpu_engine::minijson::{escape, Json};
use stbpu_engine::{ModelRegistry, Workload};
use stbpu_sim::{Protection, SessionOptions, SimSession, Warmup};
use std::io::Write;
use std::time::Instant;

/// The benchmark suite: one representative scheme per protection class,
/// plus the heaviest predictor (TAGE64) under secret tokens.
const SCHEMES: &[(&str, &str, Protection)] = &[
    ("baseline", "skl", Protection::Unprotected),
    ("stbpu", "st_skl@r=0.05", Protection::Stbpu),
    ("ucode1", "skl", Protection::Ucode1),
    ("conservative", "conservative", Protection::Conservative),
    ("st_tage64", "st_tage64", Protection::Stbpu),
];

/// One measured scheme.
struct Record {
    name: &'static str,
    model: String,
    protection: &'static str,
    elapsed_s: f64,
    branches_per_s: f64,
    oae: f64,
    branches: u64,
}

impl Record {
    fn to_json(&self, workload: &str, requested: usize, seed: u64) -> String {
        format!(
            "{{\"name\":\"{}\",\"model\":{},\"protection\":\"{}\",\"workload\":{},\
             \"branches\":{},\"requested_branches\":{requested},\"seed\":{seed},\
             \"elapsed_s\":{:.6},\"branches_per_s\":{:.0},\"oae\":{}}}",
            self.name,
            escape(&self.model),
            self.protection,
            escape(workload),
            self.branches,
            self.elapsed_s,
            self.branches_per_s,
            self.oae,
        )
    }
}

pub fn run(rest: &[String]) -> Result<(), Failure> {
    let mut a = Args::new(rest);
    let quick = a.flag("--quick");
    let json = a.flag("--json");
    let out_dir = a.opt("--out-dir")?.unwrap_or_else(|| ".".to_string());
    let branches: usize = a
        .opt_parse("--branches", "an integer")?
        .unwrap_or(if quick { 200_000 } else { 2_000_000 });
    let seed: u64 = a.opt_parse("--seed", "an integer")?.unwrap_or(42);
    let workload = a
        .opt("--workload")?
        .unwrap_or_else(|| "541.leela".to_string());
    let check = a.opt("--check")?;
    let update = a.opt("--update-baseline")?;
    let tolerance: f64 = a.opt_parse("--tolerance", "a number")?.unwrap_or(1e-9);
    a.finish_empty()?;
    if check.is_some() && update.is_some() {
        return Err(Failure::Usage(
            "--check and --update-baseline are mutually exclusive".to_string(),
        ));
    }

    let w = Workload::Named(workload.clone());
    w.validate().map_err(Failure::from)?;
    let registry = ModelRegistry::standard();

    let mut records = Vec::new();
    for &(name, model_spec, policy) in SCHEMES {
        let mut model = registry.build(model_spec, seed).map_err(Failure::from)?;
        let mut source = w.open(seed, branches).map_err(Failure::from)?;
        let mut session = SimSession::new(
            model.as_mut(),
            policy,
            SessionOptions {
                warmup: Warmup::Branches(0),
                ..SessionOptions::default()
            },
        )
        .map_err(|e| Failure::from(stbpu_engine::EngineError::from(e)))?;
        let start = Instant::now();
        session
            .run(source.as_mut())
            .map_err(|e| Failure::Runtime(e.to_string()))?;
        let report = session.finish();
        let elapsed_s = start.elapsed().as_secs_f64();
        records.push(Record {
            name,
            model: report.model,
            protection: report.protection,
            elapsed_s,
            branches_per_s: report.branches as f64 / elapsed_s.max(1e-12),
            oae: report.oae,
            branches: report.branches,
        });
    }

    // Per-scheme BENCH_<name>.json artifacts.
    std::fs::create_dir_all(&out_dir)?;
    for r in &records {
        let path = format!("{out_dir}/BENCH_{}.json", r.name);
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", r.to_json(&workload, branches, seed))?;
    }

    if json {
        let rows: Vec<String> = records
            .iter()
            .map(|r| r.to_json(&workload, branches, seed))
            .collect();
        println!("[{}]", rows.join(","));
    } else {
        println!("stbpu bench — {workload}, {branches} branches/scheme, seed {seed}");
        println!(
            "{:<14} {:<18} {:>10} {:>14} {:>10}",
            "scheme", "model", "elapsed", "branches/s", "OAE"
        );
        for r in &records {
            println!(
                "{:<14} {:<18} {:>9.3}s {:>14.0} {:>10.6}",
                r.name, r.model, r.elapsed_s, r.branches_per_s, r.oae
            );
        }
        eprintln!("wrote BENCH_<scheme>.json records to {out_dir}/");
    }

    if let Some(path) = update {
        write_baseline(&path, &workload, branches, seed, &records)?;
        eprintln!("baseline written to {path}");
    }
    if let Some(path) = check {
        check_baseline(&path, &workload, branches, seed, tolerance, &records)?;
        eprintln!("baseline check passed ({path}, tolerance {tolerance:e})");
    }
    Ok(())
}

/// Writes the OAE baseline file `--check` gates against. OAE values use
/// Rust's shortest round-trip float formatting, so the parsed values
/// compare exactly.
fn write_baseline(
    path: &str,
    workload: &str,
    branches: usize,
    seed: u64,
    records: &[Record],
) -> Result<(), Failure> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let schemes: Vec<String> = records
        .iter()
        .map(|r| format!("    \"{}\": {}", r.name, r.oae))
        .collect();
    let body = format!(
        "{{\n  \"workload\": {},\n  \"branches\": {branches},\n  \"seed\": {seed},\n  \"schemes\": {{\n{}\n  }}\n}}\n",
        escape(workload),
        schemes.join(",\n")
    );
    std::fs::write(path, body)?;
    Ok(())
}

/// Verifies the run configuration matches the baseline and every scheme's
/// OAE is within `tolerance`; all drifts are reported before failing.
fn check_baseline(
    path: &str,
    workload: &str,
    branches: usize,
    seed: u64,
    tolerance: f64,
    records: &[Record],
) -> Result<(), Failure> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| Failure::Runtime(format!("read baseline {path}: {e}")))?;
    let doc =
        Json::parse(&text).map_err(|e| Failure::Runtime(format!("parse baseline {path}: {e}")))?;
    let field_err = |what: &str| Failure::Runtime(format!("baseline {path}: missing/bad {what}"));

    let base_workload = doc
        .get("workload")
        .and_then(Json::as_str)
        .ok_or_else(|| field_err("workload"))?;
    let base_branches = doc
        .get("branches")
        .and_then(Json::as_u64)
        .ok_or_else(|| field_err("branches"))?;
    let base_seed = doc
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or_else(|| field_err("seed"))?;
    if (base_workload, base_branches, base_seed) != (workload, branches as u64, seed) {
        return Err(Failure::Runtime(format!(
            "baseline {path} was recorded for ({base_workload}, {base_branches} branches, \
             seed {base_seed}) but this run used ({workload}, {branches} branches, seed {seed}); \
             rerun with matching flags or refresh it via --update-baseline (see CONTRIBUTING.md)"
        )));
    }
    let schemes = doc.get("schemes").ok_or_else(|| field_err("schemes"))?;

    let mut drifted = Vec::new();
    for r in records {
        let Some(expected) = schemes.get(r.name).and_then(Json::as_f64) else {
            drifted.push(format!("scheme '{}' missing from baseline", r.name));
            continue;
        };
        let delta = (r.oae - expected).abs();
        if delta > tolerance {
            drifted.push(format!(
                "scheme '{}': OAE {} drifted from baseline {} (|Δ| = {delta:.3e} > {tolerance:e})",
                r.name, r.oae, expected
            ));
        }
    }
    if let Some(fields) = schemes.fields() {
        for (name, _) in fields {
            if !records.iter().any(|r| r.name == name.as_str()) {
                drifted.push(format!("baseline scheme '{name}' was not measured"));
            }
        }
    }
    if !drifted.is_empty() {
        return Err(Failure::Runtime(format!(
            "OAE baseline gate failed:\n  {}\n(if the change is intentional, refresh via \
             `stbpu bench --quick --update-baseline {path}` and commit the diff)",
            drifted.join("\n  ")
        )));
    }
    Ok(())
}

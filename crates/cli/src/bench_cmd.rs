//! `stbpu bench` — the deterministic perf harness behind CI's regression
//! gate.
//!
//! Three suites share one fixed scheme set (a fourth, `serve`, drives
//! the socket daemon instead — see [`run_serve`]):
//!
//! * `--suite default` streams each scheme once through a batched
//!   `SimSession`, measuring wall-clock time, branches/second and OAE.
//!   Every scheme writes a `BENCH_<name>.json` record (archived by CI as
//!   a perf-trajectory artifact); OAE is bit-deterministic for a fixed
//!   (workload, branches, seed) configuration, so `--check` gates
//!   regressions against the committed `ci/baseline.json` with a tight
//!   tolerance while wall-clock numbers remain informational.
//! * `--suite throughput` runs each scheme through both the batched
//!   session path (`run`, internal event buffer, no-observer fast path)
//!   and the unbatched reference path (`next_event` + `feed` per event),
//!   hard-fails unless both produce bit-identical results, and emits
//!   `BENCH_throughput.json` with branches/s for each path. Against a
//!   baseline (`--check`) throughput drift produces *warn-only* notes —
//!   wall-clock is machine-dependent, so the trajectory accumulates
//!   before anything gates on it.
//! * `--suite ingest` writes one generated trace to disk in both on-disk
//!   formats (line text and binary `.stbt`), measures parse-only and
//!   parse+simulate branches/s per format, hard-fails unless both files
//!   ingest to bit-identical reports, and emits `BENCH_ingest.json`
//!   (file sizes, size ratio, ingest speedup).
//! * `--suite shard` times the sequential run against two-pass sharded
//!   runs at N = 2 and 4 (cold and checkpoint-cache-warm), hard-fails
//!   unless every sharded report is bit-identical to the sequential one,
//!   measures `.stck` save/load throughput, and emits `BENCH_shard.json`
//!   (scaling curve, warm-resume speedup, core count) — see [`run_shard`].

use crate::args::Args;
use crate::Failure;
use stbpu_engine::minijson::{escape, Json};
use stbpu_engine::{ModelRegistry, Workload};
use stbpu_sim::{Protection, SessionOptions, SimReport, SimSession, Warmup};
use std::io::Write;
use std::time::Instant;

/// The benchmark suite: one representative scheme per protection class,
/// the heaviest direction predictor (TAGE64) under secret tokens, and the
/// CBP-class family (TAGE-SC-L + ITTAGE, and the ITTAGE-only ablation) in
/// both unprotected and secret-token form.
const SCHEMES: &[(&str, &str, Protection)] = &[
    ("baseline", "skl", Protection::Unprotected),
    ("stbpu", "st_skl@r=0.05", Protection::Stbpu),
    ("ucode1", "skl", Protection::Ucode1),
    ("conservative", "conservative", Protection::Conservative),
    ("st_tage64", "st_tage64", Protection::Stbpu),
    ("tagescl", "tagescl", Protection::Unprotected),
    ("st_tagescl", "st_tagescl", Protection::Stbpu),
    ("ittage", "ittage", Protection::Unprotected),
    ("st_ittage", "st_ittage", Protection::Stbpu),
];

/// Relative branches/s drift that triggers a (warn-only) throughput note.
const THROUGHPUT_NOTE_FRAC: f64 = 0.10;

/// The documented absolute OAE error bound for phase-based estimation
/// (README "Phase clustering"): the simpoint suite hard-fails any scheme
/// whose |estimated − full| OAE exceeds it, and the CI reference gate
/// inherits it as the widest acceptable drift.
const SIMPOINT_OAE_ERROR_BOUND: f64 = 0.02;

/// One measured scheme.
struct Record {
    name: &'static str,
    model: String,
    protection: &'static str,
    elapsed_s: f64,
    branches_per_s: f64,
    oae: f64,
    branches: u64,
    /// Unbatched reference path (throughput suite only).
    single_branches_per_s: Option<f64>,
}

impl Record {
    fn to_json(&self, workload: &str, requested: usize, seed: u64) -> String {
        let single = match self.single_branches_per_s {
            Some(s) => format!(
                ",\"single_branches_per_s\":{:.0},\"batch_speedup\":{:.3}",
                s,
                self.branches_per_s / s.max(1e-12)
            ),
            None => String::new(),
        };
        format!(
            "{{\"name\":\"{}\",\"model\":{},\"protection\":\"{}\",\"workload\":{},\
             \"branches\":{},\"requested_branches\":{requested},\"seed\":{seed},\
             \"elapsed_s\":{:.6},\"branches_per_s\":{:.0},\"oae\":{}{single}}}",
            self.name,
            escape(&self.model),
            self.protection,
            escape(workload),
            self.branches,
            self.elapsed_s,
            self.branches_per_s,
            self.oae,
        )
    }
}

/// Which measurement suite runs.
#[derive(Clone, Copy, PartialEq)]
enum Suite {
    Default,
    Throughput,
    Ingest,
    Shard,
    Serve,
    Simpoint,
}

/// Runs one scheme to completion; `batched` selects the batched session
/// path (`run`) or the unbatched per-event reference (`next_event` +
/// `feed`). Both must produce bit-identical reports.
fn measure(
    registry: &ModelRegistry,
    model_spec: &str,
    policy: Protection,
    w: &Workload,
    seed: u64,
    branches: usize,
    batched: bool,
) -> Result<(SimReport, f64), Failure> {
    let mut model = registry.build(model_spec, seed).map_err(Failure::from)?;
    let mut source = w.open(seed, branches).map_err(Failure::from)?;
    let mut session = SimSession::new(
        &mut model,
        policy,
        SessionOptions {
            warmup: Warmup::Branches(0),
            ..SessionOptions::default()
        },
    )
    .map_err(|e| Failure::from(stbpu_engine::EngineError::from(e)))?;
    let start = Instant::now();
    if batched {
        session
            .run(source.as_mut())
            .map_err(|e| Failure::Runtime(e.to_string()))?;
    } else {
        // The pre-batching hot loop, kept as the reference the batched
        // path must reproduce bit-for-bit.
        while let Some(ev) = source
            .next_event()
            .map_err(|e| Failure::Runtime(e.to_string()))?
        {
            session
                .feed(&ev)
                .map_err(|e| Failure::Runtime(e.to_string()))?;
        }
    }
    let report = session.finish();
    let elapsed_s = start.elapsed().as_secs_f64();
    Ok((report, elapsed_s))
}

/// Asserts two runs of the same scheme produced bit-identical results.
fn assert_identical(name: &str, batched: &SimReport, single: &SimReport) -> Result<(), Failure> {
    let same = batched.oae == single.oae
        && batched.branches == single.branches
        && batched.mispredictions == single.mispredictions
        && batched.evictions == single.evictions
        && batched.flushes == single.flushes
        && batched.rerandomizations == single.rerandomizations;
    if same {
        Ok(())
    } else {
        Err(Failure::Runtime(format!(
            "scheme '{name}': batched and single-event paths diverged \
             (batched OAE {} / {} branches vs single OAE {} / {} branches) — \
             the batching fast path is broken",
            batched.oae, batched.branches, single.oae, single.branches
        )))
    }
}

pub fn run(rest: &[String]) -> Result<(), Failure> {
    let mut a = Args::new(rest);
    let quick = a.flag("--quick");
    let json = a.flag("--json");
    let suite = match a.opt("--suite")?.as_deref() {
        None | Some("default") => Suite::Default,
        Some("throughput") => Suite::Throughput,
        Some("ingest") => Suite::Ingest,
        Some("shard") => Suite::Shard,
        Some("serve") => Suite::Serve,
        Some("simpoint") => Suite::Simpoint,
        Some(other) => {
            return Err(Failure::Usage(format!(
                "unknown suite '{other}' (default|throughput|ingest|shard|serve|simpoint)"
            )))
        }
    };
    let clients_opt: Option<usize> = a.opt_parse("--clients", "an integer")?;
    let sessions_opt: Option<usize> = a.opt_parse("--sessions", "an integer")?;
    if suite != Suite::Serve && (clients_opt.is_some() || sessions_opt.is_some()) {
        return Err(Failure::Usage(
            "--clients/--sessions apply only to the serve suite".to_string(),
        ));
    }
    let estimate_only = a.flag("--estimate-only");
    let update_reference = a.opt("--update-reference")?;
    if suite != Suite::Simpoint && (estimate_only || update_reference.is_some()) {
        return Err(Failure::Usage(
            "--estimate-only/--update-reference apply only to the simpoint suite".to_string(),
        ));
    }
    let out_dir = a.opt("--out-dir")?.unwrap_or_else(|| ".".to_string());
    // The ingest suite defaults to the paper-scale 10M-branch trace the
    // format was built for; everything else keeps the 2M default.
    let default_branches = match (suite, quick) {
        // The serve suite streams branches × clients × sessions, so its
        // per-session defaults sit well below the single-run suites.
        (Suite::Serve, true) => 50_000,
        (Suite::Serve, false) => 200_000,
        // The shard and simpoint suites are the paper-scale 10M-branch
        // comparisons; --quick keeps the same shape at CI size.
        (Suite::Shard | Suite::Simpoint, true) => 1_000_000,
        (Suite::Shard | Suite::Simpoint, false) => 10_000_000,
        (_, true) => 200_000,
        (Suite::Ingest, false) => 10_000_000,
        (_, false) => 2_000_000,
    };
    let branches: usize = a
        .opt_parse("--branches", "an integer")?
        .unwrap_or(default_branches);
    let seed: u64 = a.opt_parse("--seed", "an integer")?.unwrap_or(42);
    let workload = a
        .opt("--workload")?
        .unwrap_or_else(|| "541.leela".to_string());
    let check = a.opt("--check")?;
    let update = a.opt("--update-baseline")?;
    let tolerance: f64 = a.opt_parse("--tolerance", "a number")?.unwrap_or(1e-9);
    a.finish_empty()?;
    if check.is_some() && update.is_some() {
        return Err(Failure::Usage(
            "--check and --update-baseline are mutually exclusive".to_string(),
        ));
    }

    let w = Workload::Named(workload.clone());
    w.validate().map_err(Failure::from)?;
    let registry = ModelRegistry::standard();

    if suite == Suite::Serve {
        if update.is_some() {
            return Err(Failure::Usage(
                "--update-baseline applies to the default/throughput suites; the serve \
                 suite hard-gates every streamed report bit-identical against an offline \
                 run in-process"
                    .to_string(),
            ));
        }
        return run_serve(
            &workload,
            branches,
            seed,
            clients_opt.unwrap_or(8),
            sessions_opt.unwrap_or(2),
            &out_dir,
            json,
            check.as_deref(),
        );
    }

    if suite == Suite::Simpoint {
        if update.is_some() {
            return Err(Failure::Usage(
                "--update-baseline applies to the default/throughput suites; the simpoint \
                 suite refreshes its own reference via --update-reference"
                    .to_string(),
            ));
        }
        return run_simpoint(
            &registry,
            &workload,
            branches,
            seed,
            &out_dir,
            json,
            check.as_deref(),
            update_reference.as_deref(),
            tolerance,
            estimate_only,
        );
    }

    if suite == Suite::Shard {
        if update.is_some() {
            return Err(Failure::Usage(
                "--update-baseline applies to the default/throughput suites; the shard \
                 suite hard-gates every sharded report bit-identical against the \
                 sequential run in-process"
                    .to_string(),
            ));
        }
        return run_shard(
            &registry,
            &workload,
            branches,
            seed,
            &out_dir,
            json,
            check.as_deref(),
        );
    }

    if suite == Suite::Ingest {
        if update.is_some() {
            return Err(Failure::Usage(
                "--update-baseline applies to the default/throughput suites; the ingest \
                 suite hard-gates on line vs binary OAE equality and checks OAE against \
                 the default-suite baseline via --check"
                    .to_string(),
            ));
        }
        return run_ingest(
            &registry,
            &workload,
            branches,
            seed,
            &out_dir,
            json,
            check.as_deref(),
            tolerance,
        );
    }

    let mut records = Vec::new();
    for &(name, model_spec, policy) in SCHEMES {
        let (report, elapsed_s) = measure(&registry, model_spec, policy, &w, seed, branches, true)?;
        let single_branches_per_s = if suite == Suite::Throughput {
            let (single, single_s) =
                measure(&registry, model_spec, policy, &w, seed, branches, false)?;
            assert_identical(name, &report, &single)?;
            Some(single.branches as f64 / single_s.max(1e-12))
        } else {
            None
        };
        records.push(Record {
            name,
            model: report.model,
            protection: report.protection,
            elapsed_s,
            branches_per_s: report.branches as f64 / elapsed_s.max(1e-12),
            oae: report.oae,
            branches: report.branches,
            single_branches_per_s,
        });
    }

    std::fs::create_dir_all(&out_dir)?;
    let rows: Vec<String> = records
        .iter()
        .map(|r| r.to_json(&workload, branches, seed))
        .collect();
    match suite {
        Suite::Default => {
            // Per-scheme BENCH_<name>.json artifacts.
            for r in &records {
                let path = format!("{out_dir}/BENCH_{}.json", r.name);
                let mut f = std::fs::File::create(&path)?;
                writeln!(f, "{}", r.to_json(&workload, branches, seed))?;
            }
        }
        Suite::Throughput => {
            // One combined BENCH_throughput.json trajectory record.
            let path = format!("{out_dir}/BENCH_throughput.json");
            let mut f = std::fs::File::create(&path)?;
            writeln!(
                f,
                "{{\"suite\":\"throughput\",\"workload\":{},\"branches\":{branches},\
                 \"seed\":{seed},\"schemes\":[{}]}}",
                escape(&workload),
                rows.join(",")
            )?;
        }
        Suite::Ingest | Suite::Shard | Suite::Serve | Suite::Simpoint => {
            unreachable!("these suites return early")
        }
    }

    if json {
        println!("[{}]", rows.join(","));
    } else {
        println!(
            "stbpu bench ({}) — {workload}, {branches} branches/scheme, seed {seed}",
            match suite {
                Suite::Default => "default suite",
                Suite::Throughput => "throughput suite: batched vs single-event",
                Suite::Ingest | Suite::Shard | Suite::Serve | Suite::Simpoint =>
                    unreachable!("these suites return early"),
            }
        );
        match suite {
            Suite::Default => {
                println!(
                    "{:<14} {:<18} {:>10} {:>14} {:>10}",
                    "scheme", "model", "elapsed", "branches/s", "OAE"
                );
                for r in &records {
                    println!(
                        "{:<14} {:<18} {:>9.3}s {:>14.0} {:>10.6}",
                        r.name, r.model, r.elapsed_s, r.branches_per_s, r.oae
                    );
                }
                eprintln!("wrote BENCH_<scheme>.json records to {out_dir}/");
            }
            Suite::Throughput => {
                println!(
                    "{:<14} {:<18} {:>14} {:>14} {:>8} {:>10}",
                    "scheme", "model", "batched br/s", "single br/s", "speedup", "OAE"
                );
                for r in &records {
                    let single = r.single_branches_per_s.unwrap_or(0.0);
                    println!(
                        "{:<14} {:<18} {:>14.0} {:>14.0} {:>7.2}x {:>10.6}",
                        r.name,
                        r.model,
                        r.branches_per_s,
                        single,
                        r.branches_per_s / single.max(1e-12),
                        r.oae
                    );
                }
                eprintln!("wrote BENCH_throughput.json to {out_dir}/ (paths bit-identical)");
            }
            Suite::Ingest | Suite::Shard | Suite::Serve | Suite::Simpoint => {
                unreachable!("these suites return early")
            }
        }
    }

    if let Some(path) = update {
        write_baseline(&path, &workload, branches, seed, &records, suite)?;
        eprintln!("baseline written to {path}");
    }
    if let Some(path) = check {
        match suite {
            Suite::Default => {
                check_baseline(&path, &workload, branches, seed, tolerance, &records)?;
                eprintln!("baseline check passed ({path}, tolerance {tolerance:e})");
            }
            Suite::Throughput => {
                // Wall-clock is machine-dependent: drift produces notes,
                // never a failing exit, so the trajectory can accumulate
                // before the gate hardens (see CONTRIBUTING.md).
                throughput_drift_notes("throughput", &path, &records);
            }
            Suite::Ingest | Suite::Shard | Suite::Serve | Suite::Simpoint => {
                unreachable!("these suites return early")
            }
        }
    }
    Ok(())
}

/// One scheme of the ingest suite: parse+simulate throughput for the
/// same trace ingested from the line file vs the binary `.stbt` file.
struct IngestRecord {
    name: &'static str,
    model: String,
    protection: &'static str,
    oae: f64,
    line_branches_per_s: f64,
    bin_branches_per_s: f64,
}

/// Drains a trace file through the batched [`stbpu_trace::EventSource`]
/// path without simulating, returning (branches, elapsed seconds) — the
/// pure ingest cost of the format.
fn scan_file(path: &std::path::Path) -> Result<(u64, f64), Failure> {
    use stbpu_trace::EventSource;
    let mut src =
        stbpu_trace::open_trace_file(path).map_err(|e| Failure::Runtime(e.to_string()))?;
    let mut branches = 0u64;
    let start = Instant::now();
    src.for_each_batch(4_096, |batch| {
        branches += batch
            .iter()
            .filter(|ev| matches!(ev, stbpu_trace::TraceEvent::Branch { .. }))
            .count() as u64;
        Ok::<(), Failure>(())
    })?;
    Ok((branches, start.elapsed().as_secs_f64()))
}

/// The ingest suite: one generated workload written to disk in both
/// formats, then (a) parse-only scan throughput per format — the headline
/// `ingest_speedup`, which the binary format must win by a wide margin —
/// and (b) parse+simulate throughput per scheme per format, hard-failing
/// unless line and binary ingest produce bit-identical reports.
/// Wall-clock per-scheme numbers are sim-bound for heavy predictors, so
/// the parse-only pair is the format comparison; both are recorded in
/// `BENCH_ingest.json`.
#[allow(clippy::too_many_arguments)]
fn run_ingest(
    registry: &ModelRegistry,
    workload: &str,
    branches: usize,
    seed: u64,
    out_dir: &str,
    json: bool,
    check: Option<&str>,
    tolerance: f64,
) -> Result<(), Failure> {
    let dir = std::env::temp_dir().join(format!("stbpu-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let result = run_ingest_in(
        registry, workload, branches, seed, out_dir, json, check, tolerance, &dir,
    );
    let _ = std::fs::remove_dir_all(&dir);
    result
}

#[allow(clippy::too_many_arguments)]
fn run_ingest_in(
    registry: &ModelRegistry,
    workload: &str,
    branches: usize,
    seed: u64,
    out_dir: &str,
    json: bool,
    check: Option<&str>,
    tolerance: f64,
    dir: &std::path::Path,
) -> Result<(), Failure> {
    use stbpu_trace::{EventSource, TraceFileFormat, TraceFileWriter, TraceGenerator};
    use std::io::BufWriter;

    let profile = stbpu_trace::profiles::by_name(workload).ok_or_else(|| {
        Failure::from(stbpu_engine::EngineError::UnknownWorkload(workload.into()))
    })?;
    let line_path = dir.join("ingest.trace");
    let bin_path = dir.join("ingest.stbt");

    // One generator stream feeds both writers, so the two files hold the
    // exact same events.
    eprintln!("ingest suite: writing {branches}-branch trace in both formats…");
    let mut source = TraceGenerator::new(profile, seed).into_source(branches);
    let mut lw = TraceFileWriter::new(
        TraceFileFormat::Line,
        BufWriter::new(std::fs::File::create(&line_path)?),
    );
    let mut bw = TraceFileWriter::new(
        TraceFileFormat::Binary,
        BufWriter::new(std::fs::File::create(&bin_path)?),
    );
    lw.header(source.name(), source.branch_hint(), source.thread_count())?;
    bw.header(source.name(), source.branch_hint(), source.thread_count())?;
    source.for_each_batch(4_096, |batch| {
        for ev in batch {
            lw.event(ev)?;
            bw.event(ev)?;
        }
        Ok::<(), Failure>(())
    })?;
    lw.flush()?;
    bw.flush()?;
    drop(lw);
    drop(bw);
    let line_bytes = std::fs::metadata(&line_path)?.len();
    let bin_bytes = std::fs::metadata(&bin_path)?.len();
    let size_ratio = bin_bytes as f64 / (line_bytes as f64).max(1.0);

    // Parse-only scan: the format's ingest cost with simulation factored
    // out entirely.
    let (line_scanned, line_scan_s) = scan_file(&line_path)?;
    let (bin_scanned, bin_scan_s) = scan_file(&bin_path)?;
    if line_scanned != bin_scanned {
        return Err(Failure::Runtime(format!(
            "line and binary files disagree on branch count ({line_scanned} vs {bin_scanned}) \
             — the binary encoder is broken"
        )));
    }
    let line_parse_bps = line_scanned as f64 / line_scan_s.max(1e-12);
    let bin_parse_bps = bin_scanned as f64 / bin_scan_s.max(1e-12);
    let ingest_speedup = bin_parse_bps / line_parse_bps.max(1e-12);

    // Parse+simulate per scheme, both formats, bit-identical or bust.
    let line_w = Workload::File(line_path.clone());
    let bin_w = Workload::File(bin_path.clone());
    let mut records = Vec::new();
    for &(name, model_spec, policy) in SCHEMES {
        let (line_report, line_s) =
            measure(registry, model_spec, policy, &line_w, seed, branches, true)?;
        let (bin_report, bin_s) =
            measure(registry, model_spec, policy, &bin_w, seed, branches, true)?;
        let same = line_report.oae == bin_report.oae
            && line_report.branches == bin_report.branches
            && line_report.mispredictions == bin_report.mispredictions
            && line_report.evictions == bin_report.evictions
            && line_report.flushes == bin_report.flushes
            && line_report.rerandomizations == bin_report.rerandomizations;
        if !same {
            return Err(Failure::Runtime(format!(
                "scheme '{name}': line and binary ingest diverged (line OAE {} / {} branches \
                 vs binary OAE {} / {} branches) — the .stbt round trip is lossy",
                line_report.oae, line_report.branches, bin_report.oae, bin_report.branches
            )));
        }
        records.push(IngestRecord {
            name,
            model: bin_report.model,
            protection: bin_report.protection,
            oae: bin_report.oae,
            line_branches_per_s: line_report.branches as f64 / line_s.max(1e-12),
            bin_branches_per_s: bin_report.branches as f64 / bin_s.max(1e-12),
        });
    }

    // One combined BENCH_ingest.json trajectory record.
    let scheme_rows: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "{{\"name\":\"{}\",\"model\":{},\"protection\":\"{}\",\"oae\":{},\
                 \"line_branches_per_s\":{:.0},\"binary_branches_per_s\":{:.0},\
                 \"speedup\":{:.3}}}",
                r.name,
                escape(&r.model),
                r.protection,
                r.oae,
                r.line_branches_per_s,
                r.bin_branches_per_s,
                r.bin_branches_per_s / r.line_branches_per_s.max(1e-12),
            )
        })
        .collect();
    let body = format!(
        "{{\"suite\":\"ingest\",\"workload\":{},\"branches\":{branches},\"seed\":{seed},\
         \"line_bytes\":{line_bytes},\"binary_bytes\":{bin_bytes},\"size_ratio\":{size_ratio:.4},\
         \"line_branches_per_s\":{line_parse_bps:.0},\"binary_branches_per_s\":{bin_parse_bps:.0},\
         \"ingest_speedup\":{ingest_speedup:.3},\"schemes\":[{}]}}",
        escape(workload),
        scheme_rows.join(",")
    );
    std::fs::create_dir_all(out_dir)?;
    let path = format!("{out_dir}/BENCH_ingest.json");
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{body}")?;

    if json {
        println!("{body}");
    } else {
        println!(
            "stbpu bench (ingest suite: line vs binary .stbt) — {workload}, \
             {branches} branches, seed {seed}"
        );
        println!(
            "files:  line {:.1} MB, binary {:.1} MB ({:.1}% of line)",
            line_bytes as f64 / 1e6,
            bin_bytes as f64 / 1e6,
            size_ratio * 100.0
        );
        println!(
            "ingest (parse-only): line {:.2}M branches/s, binary {:.2}M branches/s — \
             {ingest_speedup:.1}x",
            line_parse_bps / 1e6,
            bin_parse_bps / 1e6
        );
        println!(
            "{:<14} {:<18} {:>14} {:>14} {:>8} {:>10}",
            "scheme", "model", "line br/s", "binary br/s", "speedup", "OAE"
        );
        for r in &records {
            println!(
                "{:<14} {:<18} {:>14.0} {:>14.0} {:>7.2}x {:>10.6}",
                r.name,
                r.model,
                r.line_branches_per_s,
                r.bin_branches_per_s,
                r.bin_branches_per_s / r.line_branches_per_s.max(1e-12),
                r.oae
            );
        }
        eprintln!("wrote BENCH_ingest.json to {out_dir}/ (line/binary bit-identical per scheme)");
    }

    // The OAE values must also match the default-suite baseline when the
    // run configuration does: file replay is the same stream the
    // generator feeds the default suite.
    if let Some(path) = check {
        let as_records: Vec<Record> = records
            .iter()
            .map(|r| Record {
                name: r.name,
                model: r.model.clone(),
                protection: r.protection,
                elapsed_s: 0.0,
                branches_per_s: r.bin_branches_per_s,
                oae: r.oae,
                branches: branches as u64,
                single_branches_per_s: None,
            })
            .collect();
        check_baseline(path, workload, branches, seed, tolerance, &as_records)?;
        eprintln!("baseline check passed ({path}, tolerance {tolerance:e})");
    }
    Ok(())
}

/// The shard suite: the sequential reference run, then two-pass sharded
/// runs at N = 2 and N = 4 — cold (pass 1 cuts checkpoints, pass 2
/// simulates shards) and warm (boundary checkpoints reused from the
/// cache, pass 1 skipped). Every sharded report is hard-gated
/// bit-identical to the sequential one. The headline `warm_resume_speedup`
/// is sequential wall time over the time to resume the cached
/// last-boundary checkpoint (3/4 of the stream at 4 shards) to the end —
/// the re-simulation work the checkpoint layer avoids on a rerun,
/// meaningful on any core count (the measured `cores` is recorded so
/// pass-2 wall numbers are interpretable). Also measures checkpoint
/// save/load throughput over the real boundary blobs. Emits one
/// `BENCH_shard.json` trajectory record.
fn run_shard(
    registry: &ModelRegistry,
    workload: &str,
    branches: usize,
    seed: u64,
    out_dir: &str,
    json: bool,
    check: Option<&str>,
) -> Result<(), Failure> {
    let dir = std::env::temp_dir().join(format!("stbpu-shard-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let result = run_shard_in(
        registry, workload, branches, seed, out_dir, json, check, &dir,
    );
    let _ = std::fs::remove_dir_all(&dir);
    result
}

#[allow(clippy::too_many_arguments)]
fn run_shard_in(
    registry: &ModelRegistry,
    workload: &str,
    branches: usize,
    seed: u64,
    out_dir: &str,
    json: bool,
    check: Option<&str>,
    dir: &std::path::Path,
) -> Result<(), Failure> {
    use stbpu_engine::{cut_checkpoints, run_sequential, run_sharded, ShardConfig};
    use stbpu_sim::Checkpoint;

    const MODEL: &str = "st_skl@r=0.05";
    const SHARD_COUNTS: &[usize] = &[2, 4];
    let policy = Protection::Stbpu;
    let warmup = Warmup::Fraction(0.1);
    let w = Workload::Named(workload.to_string());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Untimed warm-up: the first simulation in a process pays one-off
    // costs (heap growth, page faults) that measured 3-4x on this
    // workload; every timed run below starts from a warmed process.
    eprintln!("shard suite: untimed process warm-up…");
    let warm_branches = (branches / 10).clamp(10_000.min(branches), branches);
    run_sequential(
        registry,
        MODEL,
        policy,
        seed,
        &w,
        warm_branches,
        warmup,
        None,
        None,
    )
    .map_err(Failure::from)?;

    eprintln!("shard suite: sequential reference over {branches} branches…");
    let start = Instant::now();
    let (seq_report, _) = run_sequential(
        registry, MODEL, policy, seed, &w, branches, warmup, None, None,
    )
    .map_err(Failure::from)?;
    let seq_s = start.elapsed().as_secs_f64();

    struct ShardPoint {
        shards: usize,
        pass1_s: f64,
        cold_s: f64,
        warm_s: f64,
    }
    let mut points = Vec::new();
    let mut ckpt_bytes = 0u64;
    let mut ckpt_count = 0usize;
    let mut save_s = 0.0f64;
    let mut load_s = 0.0f64;
    let mut last_cp: Option<Checkpoint> = None;
    for &n in SHARD_COUNTS {
        let cfg = ShardConfig {
            shards: n,
            warmup,
            interval: None,
            threads: None,
            checkpoint_dir: Some(dir.join(format!("n{n}"))),
        };
        eprintln!("shard suite: N={n} cold (pass 1 + pass 2)…");
        let start = Instant::now();
        let cold = run_sharded(registry, MODEL, policy, seed, &w, branches, &cfg)
            .map_err(Failure::from)?;
        let cold_s = start.elapsed().as_secs_f64();
        assert_identical(&format!("shard x{n} (cold)"), &seq_report, &cold.report)?;
        if cold.cache_hits != 0 {
            return Err(Failure::Runtime(format!(
                "cold N={n} run reported {} cache hits from an empty cache",
                cold.cache_hits
            )));
        }

        eprintln!("shard suite: N={n} warm (cached checkpoints, pass 1 skipped)…");
        let start = Instant::now();
        let warm = run_sharded(registry, MODEL, policy, seed, &w, branches, &cfg)
            .map_err(Failure::from)?;
        let warm_s = start.elapsed().as_secs_f64();
        assert_identical(&format!("shard x{n} (warm)"), &seq_report, &warm.report)?;
        if warm.cache_hits != n - 1 {
            return Err(Failure::Runtime(format!(
                "warm N={n} run reused {} of {} cached boundary checkpoints",
                warm.cache_hits,
                n - 1
            )));
        }

        // Pass 1 in isolation, re-cutting the exact boundaries the run
        // used; its checkpoints also feed the save/load measurement.
        let start = Instant::now();
        let cps = cut_checkpoints(
            registry, MODEL, policy, seed, &w, branches, &cfg, &warm.cuts,
        )
        .map_err(Failure::from)?;
        let pass1_s = start.elapsed().as_secs_f64();
        last_cp = cps.last().cloned().or(last_cp);
        for (i, cp) in cps.iter().enumerate() {
            let path = dir.join(format!("meas-n{n}-{i}.stck"));
            let start = Instant::now();
            cp.save(&path)
                .map_err(|e| Failure::Runtime(e.to_string()))?;
            save_s += start.elapsed().as_secs_f64();
            ckpt_bytes += std::fs::metadata(&path)?.len();
            ckpt_count += 1;
            let start = Instant::now();
            let back = Checkpoint::load(&path).map_err(|e| Failure::Runtime(e.to_string()))?;
            load_s += start.elapsed().as_secs_f64();
            if back.branches_seen != cp.branches_seen {
                return Err(Failure::Runtime(format!(
                    "checkpoint {} round trip changed branches_seen ({} vs {})",
                    path.display(),
                    back.branches_seen,
                    cp.branches_seen
                )));
            }
        }

        points.push(ShardPoint {
            shards: n,
            pass1_s,
            cold_s,
            warm_s,
        });
    }

    let save_mbps = ckpt_bytes as f64 / 1e6 / save_s.max(1e-12);
    let load_mbps = ckpt_bytes as f64 / 1e6 / load_s.max(1e-12);

    // The headline: a rerun that resumes the cached last-boundary
    // checkpoint (at 3/4 of the stream for 4 shards) vs re-simulating
    // from branch 0 — the work the checkpoint layer actually avoids,
    // meaningful on any core count.
    let last_cp =
        last_cp.ok_or_else(|| Failure::Runtime("pass 1 produced no checkpoints".to_string()))?;
    eprintln!(
        "shard suite: resuming the cached checkpoint at branch {}…",
        last_cp.branches_seen
    );
    let mut source = w.open(seed, branches).map_err(Failure::from)?;
    let start = Instant::now();
    let (resume_report, _) =
        stbpu_engine::resume_to_end(registry, &last_cp, source.as_mut()).map_err(Failure::from)?;
    let resume_s = start.elapsed().as_secs_f64();
    assert_identical("resume from last boundary", &seq_report, &resume_report)?;
    let warm_resume_speedup = seq_s / resume_s.max(1e-12);

    let shard_rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"shards\":{},\"pass1_s\":{:.6},\"cold_s\":{:.6},\"warm_s\":{:.6},\
                 \"cold_speedup\":{:.3},\"warm_speedup\":{:.3}}}",
                p.shards,
                p.pass1_s,
                p.cold_s,
                p.warm_s,
                seq_s / p.cold_s.max(1e-12),
                seq_s / p.warm_s.max(1e-12),
            )
        })
        .collect();
    let body = format!(
        "{{\"suite\":\"shard\",\"workload\":{},\"model\":{},\"protection\":\"{}\",\
         \"branches\":{branches},\"seed\":{seed},\"cores\":{cores},\"oae\":{},\
         \"sequential_s\":{seq_s:.6},\"shards\":[{}],\
         \"checkpoints\":{ckpt_count},\"checkpoint_bytes\":{ckpt_bytes},\
         \"checkpoint_save_mb_per_s\":{save_mbps:.1},\"checkpoint_load_mb_per_s\":{load_mbps:.1},\
         \"resume_last_shard_s\":{resume_s:.6},\"warm_resume_speedup\":{warm_resume_speedup:.3}}}",
        escape(workload),
        escape(MODEL),
        policy.label(),
        seq_report.oae,
        shard_rows.join(",")
    );
    std::fs::create_dir_all(out_dir)?;
    let path = format!("{out_dir}/BENCH_shard.json");
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{body}")?;

    if json {
        println!("{body}");
    } else {
        println!(
            "stbpu bench (shard suite: sequential vs two-pass sharded) — {workload}, \
             {branches} branches, seed {seed}, {cores} core(s)"
        );
        println!("sequential: {seq_s:.3}s (OAE {:.6})", seq_report.oae);
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>9} {:>9}",
            "shards", "pass1", "cold", "warm", "cold-x", "warm-x"
        );
        for p in &points {
            println!(
                "{:>6} {:>9.3}s {:>9.3}s {:>9.3}s {:>8.2}x {:>8.2}x",
                p.shards,
                p.pass1_s,
                p.cold_s,
                p.warm_s,
                seq_s / p.cold_s.max(1e-12),
                seq_s / p.warm_s.max(1e-12),
            );
        }
        println!(
            "checkpoints: {ckpt_count} blobs, {:.1} KB total — save {save_mbps:.0} MB/s, \
             load {load_mbps:.0} MB/s",
            ckpt_bytes as f64 / 1e3
        );
        println!(
            "warm-resume speedup (rerun from the cached branch-{} checkpoint vs from \
             branch 0): {warm_resume_speedup:.2}x ({resume_s:.3}s vs {seq_s:.3}s)",
            last_cp.branches_seen
        );
        eprintln!("wrote BENCH_shard.json to {out_dir}/ (every sharded report bit-identical)");
    }

    // Like serve: correctness is hard-gated in-run; wall-clock never
    // gates against a baseline.
    if let Some(path) = check {
        eprintln!(
            "shard suite note (warn-only): no baseline gate for shard wall-clock \
             ({path} not consulted); bit-parity was hard-gated in-run"
        );
    }
    Ok(())
}

/// One scheme of the simpoint suite.
struct SimpointRecord {
    name: &'static str,
    model: String,
    protection: String,
    est_oae: f64,
    est_s: f64,
    full_oae: Option<f64>,
    full_s: Option<f64>,
}

/// The simpoint suite: the workload is staged to a `.stbt` trace file
/// once (both pipelines then start from the same on-disk trace, the
/// setting phase estimation targets), one BBV + k-means pass distills it
/// into a phase file, every scheme is estimated from the representative
/// slices alone, and — unless `--estimate-only` — every scheme also runs
/// in full so the suite can hard-gate the absolute OAE error (bound
/// [`SIMPOINT_OAE_ERROR_BOUND`]). The headline gate is deterministic:
/// the simulated-branch speedup `total / (Σ representatives + warm-up)`
/// must be ≥ 10x at paper scale (≥10M branches) — the suite caps `k` at
/// 6 so ≤ 9 of ~100 slices are ever simulated. Wall-clock speedup is
/// reported alongside but never gates (this repo benches on shared
/// 1-core runners). Estimates are bit-deterministic for a fixed
/// configuration, so `--check` compares them exactly (within
/// `--tolerance`) against the committed `ci/simpoint-reference.json` —
/// the per-PR full-scale figure gate — and `--update-reference`
/// refreshes that file. Emits one `BENCH_simpoint.json` trajectory
/// record.
#[allow(clippy::too_many_arguments)]
fn run_simpoint(
    registry: &ModelRegistry,
    workload: &str,
    branches: usize,
    seed: u64,
    out_dir: &str,
    json: bool,
    check: Option<&str>,
    update_reference: Option<&str>,
    tolerance: f64,
    estimate_only: bool,
) -> Result<(), Failure> {
    let dir = std::env::temp_dir().join(format!("stbpu-simpoint-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let result = run_simpoint_in(
        registry,
        workload,
        branches,
        seed,
        out_dir,
        json,
        check,
        update_reference,
        tolerance,
        estimate_only,
        &dir,
    );
    let _ = std::fs::remove_dir_all(&dir);
    result
}

#[allow(clippy::too_many_arguments)]
fn run_simpoint_in(
    registry: &ModelRegistry,
    workload: &str,
    branches: usize,
    seed: u64,
    out_dir: &str,
    json: bool,
    check: Option<&str>,
    update_reference: Option<&str>,
    tolerance: f64,
    estimate_only: bool,
    dir: &std::path::Path,
) -> Result<(), Failure> {
    use stbpu_engine::{build_phase_file, run_phase_file, run_sequential, PhaseBuildOptions};
    use stbpu_phases::ClusterConfig;
    use stbpu_trace::{EventSource, TraceFileFormat, TraceFileWriter, TraceGenerator};
    use std::io::BufWriter;

    // Stage the workload to a binary trace file once: every pipeline
    // below (BBV pass, per-phase estimates, full references) then reads
    // the same on-disk `.stbt`, which is the setting phase estimation is
    // for — a trace that already exists and decodes far faster than it
    // simulates.
    let profile = stbpu_trace::profiles::by_name(workload).ok_or_else(|| {
        Failure::from(stbpu_engine::EngineError::UnknownWorkload(workload.into()))
    })?;
    let bin_path = dir.join("simpoint.stbt");
    eprintln!(
        "simpoint suite: staging {branches}-branch trace to {}…",
        bin_path.display()
    );
    let stage_start = Instant::now();
    {
        let mut source = TraceGenerator::new(profile, seed).into_source(branches);
        let mut bw = TraceFileWriter::new(
            TraceFileFormat::Binary,
            BufWriter::new(std::fs::File::create(&bin_path)?),
        );
        bw.header(source.name(), source.branch_hint(), source.thread_count())?;
        source.for_each_batch(4_096, |batch| {
            for ev in batch {
                bw.event(ev)?;
            }
            Ok::<(), Failure>(())
        })?;
        bw.flush()?;
    }
    let stage_s = stage_start.elapsed().as_secs_f64();
    let w = Workload::File(bin_path.clone());

    // ~100 slices at any scale (clamped to the canonical 100k-branch
    // slice at paper size), with k capped at 6: each cold phase costs
    // 1.5 slices (half-slice warm-up + representative), so at most 9 of
    // ~100 slices are simulated — a ≥11x simulated-branch speedup by
    // construction.
    let slice_branches =
        ((branches as u64) / 100).clamp(1_000, stbpu_trace::DEFAULT_SLICE_BRANCHES);

    eprintln!(
        "simpoint suite: BBV + clustering over {branches} branches \
         ({slice_branches} branches/slice)…"
    );
    let start = Instant::now();
    let opts = PhaseBuildOptions {
        slice_branches,
        cluster: ClusterConfig {
            k_max: 6,
            ..ClusterConfig::default()
        },
        ..PhaseBuildOptions::default()
    };
    let pf = build_phase_file(registry, seed, &w, branches, &opts).map_err(Failure::from)?;
    let bbv_s = start.elapsed().as_secs_f64();
    let phases = pf.phases.len();

    let mut records: Vec<SimpointRecord> = Vec::new();
    let (mut est_total_s, mut full_total_s) = (0.0f64, 0.0f64);
    let mut simulated = pf.simulated_branches();
    for &(name, model_spec, policy) in SCHEMES {
        eprintln!("simpoint suite: estimating {name} from {phases} phases…");
        let start = Instant::now();
        let run = run_phase_file(registry, model_spec, policy, &pf, &w).map_err(Failure::from)?;
        let est_s = start.elapsed().as_secs_f64();
        est_total_s += est_s;
        // Includes warm-up branches; identical across schemes (all cold).
        simulated = run.simulated_branches;

        let (full_oae, full_s) = if estimate_only {
            (None, None)
        } else {
            eprintln!("simpoint suite: full reference run for {name}…");
            let start = Instant::now();
            let (full, _) = run_sequential(
                registry,
                model_spec,
                policy,
                seed,
                &w,
                branches,
                Warmup::Branches(0),
                None,
                None,
            )
            .map_err(Failure::from)?;
            let full_s = start.elapsed().as_secs_f64();
            full_total_s += full_s;
            let err = (run.report.oae - full.oae).abs();
            if err > SIMPOINT_OAE_ERROR_BOUND {
                return Err(Failure::Runtime(format!(
                    "scheme '{name}': estimated OAE {} is {err:.4} away from the full run's {} \
                     — beyond the documented {SIMPOINT_OAE_ERROR_BOUND} bound (see README \
                     \"Phase clustering\")",
                    run.report.oae, full.oae
                )));
            }
            (Some(full.oae), Some(full_s))
        };
        records.push(SimpointRecord {
            name,
            model: run.report.model,
            protection: run.report.protection.to_string(),
            est_oae: run.report.oae,
            est_s,
            full_oae,
            full_s,
        });
    }

    // The gated speedup is the deterministic one: how many branches the
    // estimate simulates versus the full run. Wall-clock speedup is
    // reported for context but never gates — it depends on the runner,
    // the core count, and how sim-bound the scheme mix is.
    let branch_speedup = branches as f64 / (simulated as f64).max(1.0);
    if branches >= 10_000_000 && branch_speedup < 10.0 {
        return Err(Failure::Runtime(format!(
            "simpoint simulated-branch speedup {branch_speedup:.2}x is below the 10x floor at \
             paper scale: {simulated} of {branches} branches simulated"
        )));
    }
    let wall_speedup = if estimate_only {
        None
    } else {
        Some(full_total_s / (bbv_s + est_total_s).max(1e-12))
    };

    let scheme_rows: Vec<String> = records
        .iter()
        .map(|r| {
            let full = match (r.full_oae, r.full_s) {
                (Some(oae), Some(s)) => format!(
                    ",\"full_oae\":{oae},\"full_s\":{s:.6},\"abs_oae_error\":{:.9}",
                    (r.est_oae - oae).abs()
                ),
                _ => String::new(),
            };
            format!(
                "{{\"name\":\"{}\",\"model\":{},\"protection\":\"{}\",\
                 \"estimated_oae\":{},\"estimate_s\":{:.6}{full}}}",
                r.name,
                escape(&r.model),
                r.protection,
                r.est_oae,
                r.est_s,
            )
        })
        .collect();
    let wall_field = match wall_speedup {
        Some(s) => format!(",\"full_total_s\":{full_total_s:.6},\"wall_speedup\":{s:.3}"),
        None => String::new(),
    };
    let body = format!(
        "{{\"suite\":\"simpoint\",\"workload\":{},\"branches\":{branches},\"seed\":{seed},\
         \"slice_branches\":{slice_branches},\"phases\":{phases},\
         \"simulated_branches\":{simulated},\"branch_speedup\":{branch_speedup:.3},\
         \"error_bound\":{SIMPOINT_OAE_ERROR_BOUND},\"stage_s\":{stage_s:.6},\
         \"bbv_s\":{bbv_s:.6},\"estimate_total_s\":{est_total_s:.6}{wall_field},\
         \"schemes\":[{}]}}",
        escape(workload),
        scheme_rows.join(",")
    );
    std::fs::create_dir_all(out_dir)?;
    let path = format!("{out_dir}/BENCH_simpoint.json");
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{body}")?;

    if json {
        println!("{body}");
    } else {
        println!(
            "stbpu bench (simpoint suite: phase estimation vs full simulation) — {workload}, \
             {branches} branches, seed {seed}"
        );
        println!(
            "phase file: {phases} phases over {} slices of {slice_branches} branches — \
             simulating {simulated} branches incl. warm-up ({:.1}% of the stream, \
             {branch_speedup:.1}x); stage {stage_s:.3}s, BBV+cluster {bbv_s:.3}s",
            branches as u64 / slice_branches.max(1),
            simulated as f64 * 100.0 / (branches as f64).max(1.0)
        );
        println!(
            "{:<14} {:<18} {:>12} {:>9} {:>12} {:>9} {:>11}",
            "scheme", "model", "est OAE", "est", "full OAE", "full", "|OAE err|"
        );
        for r in &records {
            match (r.full_oae, r.full_s) {
                (Some(oae), Some(s)) => println!(
                    "{:<14} {:<18} {:>12.6} {:>8.3}s {:>12.6} {:>8.3}s {:>11.2e}",
                    r.name,
                    r.model,
                    r.est_oae,
                    r.est_s,
                    oae,
                    s,
                    (r.est_oae - oae).abs()
                ),
                _ => println!(
                    "{:<14} {:<18} {:>12.6} {:>8.3}s {:>12} {:>9} {:>11}",
                    r.name, r.model, r.est_oae, r.est_s, "-", "-", "-"
                ),
            }
        }
        match wall_speedup {
            Some(s) => println!(
                "speedup: {branch_speedup:.1}x simulated-branch (gated), {s:.1}x wall-clock \
                 (full {full_total_s:.3}s vs BBV {bbv_s:.3}s + estimates {est_total_s:.3}s; \
                 error bound {SIMPOINT_OAE_ERROR_BOUND})"
            ),
            None => println!(
                "speedup: {branch_speedup:.1}x simulated-branch (gated); estimate-only run, no \
                 full references (wall-clock speedup/error not measured this run)"
            ),
        }
        eprintln!("wrote BENCH_simpoint.json to {out_dir}/");
    }

    if let Some(path) = update_reference {
        write_simpoint_reference(path, workload, branches, seed, slice_branches, &records)?;
        eprintln!("simpoint reference written to {path}");
    }
    if let Some(path) = check {
        check_simpoint_reference(
            path,
            workload,
            branches,
            seed,
            slice_branches,
            tolerance,
            &records,
        )?;
        eprintln!("simpoint reference check passed ({path}, tolerance {tolerance:e})");
    }
    Ok(())
}

/// Writes the `ci/simpoint-reference.json` file the per-PR estimation
/// gate compares against. Estimated OAE uses shortest round-trip float
/// formatting, so a later parse compares exactly.
fn write_simpoint_reference(
    path: &str,
    workload: &str,
    branches: usize,
    seed: u64,
    slice_branches: u64,
    records: &[SimpointRecord],
) -> Result<(), Failure> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let schemes: Vec<String> = records
        .iter()
        .map(|r| format!("    \"{}\": {}", r.name, r.est_oae))
        .collect();
    let body = format!(
        "{{\n  \"workload\": {},\n  \"branches\": {branches},\n  \"seed\": {seed},\n  \
         \"slice_branches\": {slice_branches},\n  \"error_bound\": {SIMPOINT_OAE_ERROR_BOUND},\n  \
         \"schemes\": {{\n{}\n  }}\n}}\n",
        escape(workload),
        schemes.join(",\n")
    );
    std::fs::write(path, body)?;
    Ok(())
}

/// Verifies the run configuration matches the committed simpoint
/// reference and every scheme's estimated OAE is within `tolerance`
/// (estimates are bit-deterministic, so drift means behavior changed).
fn check_simpoint_reference(
    path: &str,
    workload: &str,
    branches: usize,
    seed: u64,
    slice_branches: u64,
    tolerance: f64,
    records: &[SimpointRecord],
) -> Result<(), Failure> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| Failure::Runtime(format!("read simpoint reference {path}: {e}")))?;
    let doc = Json::parse(&text)
        .map_err(|e| Failure::Runtime(format!("parse simpoint reference {path}: {e}")))?;
    let field_err = |what: &str| Failure::Runtime(format!("reference {path}: missing/bad {what}"));

    let ref_workload = doc
        .get("workload")
        .and_then(Json::as_str)
        .ok_or_else(|| field_err("workload"))?;
    let ref_branches = doc
        .get("branches")
        .and_then(Json::as_u64)
        .ok_or_else(|| field_err("branches"))?;
    let ref_seed = doc
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or_else(|| field_err("seed"))?;
    let ref_slice = doc
        .get("slice_branches")
        .and_then(Json::as_u64)
        .ok_or_else(|| field_err("slice_branches"))?;
    if (ref_workload, ref_branches, ref_seed, ref_slice)
        != (workload, branches as u64, seed, slice_branches)
    {
        return Err(Failure::Runtime(format!(
            "reference {path} was recorded for ({ref_workload}, {ref_branches} branches, seed \
             {ref_seed}, {ref_slice} branches/slice) but this run used ({workload}, {branches} \
             branches, seed {seed}, {slice_branches} branches/slice); rerun with matching flags \
             or refresh it (see CONTRIBUTING.md)"
        )));
    }
    let schemes = doc.get("schemes").ok_or_else(|| field_err("schemes"))?;

    let mut drifted = Vec::new();
    for r in records {
        let Some(expected) = schemes.get(r.name).and_then(Json::as_f64) else {
            drifted.push(format!("scheme '{}' missing from reference", r.name));
            continue;
        };
        let delta = (r.est_oae - expected).abs();
        if delta > tolerance {
            drifted.push(format!(
                "scheme '{}': estimated OAE {} drifted from reference {} \
                 (|Δ| = {delta:.3e} > {tolerance:e})",
                r.name, r.est_oae, expected
            ));
        }
    }
    if let Some(fields) = schemes.fields() {
        for (name, _) in fields {
            if !records.iter().any(|r| r.name == name.as_str()) {
                drifted.push(format!("reference scheme '{name}' was not measured"));
            }
        }
    }
    if !drifted.is_empty() {
        return Err(Failure::Runtime(format!(
            "simpoint estimation gate failed:\n  {}\n(if the change is intentional, refresh via \
             `stbpu bench --suite simpoint --estimate-only --update-reference {path}` with the \
             same scale flags and commit the diff — see CONTRIBUTING.md)",
            drifted.join("\n  ")
        )));
    }
    Ok(())
}

/// The serve suite: the socket daemon on loopback, a concurrent client
/// fleet over real TCP, and a hard in-run bit-parity gate (every
/// streamed report vs one offline run of the same events — see
/// [`stbpu_serve::run_bench`]). Emits one `BENCH_serve.json` trajectory
/// record; wall-clock numbers are machine-dependent and never gate.
#[allow(clippy::too_many_arguments)]
fn run_serve(
    workload: &str,
    branches: usize,
    seed: u64,
    clients: usize,
    sessions_per_client: usize,
    out_dir: &str,
    json: bool,
    check: Option<&str>,
) -> Result<(), Failure> {
    let cfg = stbpu_serve::BenchConfig {
        clients,
        sessions_per_client,
        branches,
        workload: workload.to_string(),
        seed,
        ..stbpu_serve::BenchConfig::default()
    };
    eprintln!(
        "serve suite: {clients} clients x {sessions_per_client} sessions x {branches} \
         branches over loopback…"
    );
    let r = stbpu_serve::run_bench(&cfg).map_err(Failure::Runtime)?;

    let body = format!(
        "{{\"suite\":\"serve\",\"workload\":{},\"model\":{},\"protection\":\"{}\",\
         \"branches\":{branches},\"seed\":{seed},\"clients\":{},\"sessions\":{},\
         \"total_branches\":{},\"elapsed_s\":{:.6},\"sessions_per_s\":{:.3},\
         \"branches_per_s\":{:.0},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"oae\":{}}}",
        escape(workload),
        escape(&cfg.model),
        cfg.protection,
        r.clients,
        r.sessions,
        r.total_branches,
        r.elapsed_s,
        r.sessions_per_s,
        r.branches_per_s,
        r.p50_ms,
        r.p99_ms,
        r.oae,
    );
    std::fs::create_dir_all(out_dir)?;
    let path = format!("{out_dir}/BENCH_serve.json");
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{body}")?;

    if json {
        println!("{body}");
    } else {
        println!(
            "stbpu bench (serve suite: daemon + socket clients) — {workload}, \
             {branches} branches/session, seed {seed}"
        );
        println!(
            "{} sessions over {} clients in {:.3}s (every report bit-identical to the \
             offline run, OAE {:.6})",
            r.sessions, r.clients, r.elapsed_s, r.oae
        );
        println!(
            "throughput: {:.1} sessions/s, {:.2}M branches/s aggregate",
            r.sessions_per_s,
            r.branches_per_s / 1e6
        );
        println!(
            "flush-to-report latency: p50 {:.2} ms, p99 {:.2} ms",
            r.p50_ms, r.p99_ms
        );
        eprintln!("wrote BENCH_serve.json to {out_dir}/");
    }

    // Socket throughput has no baseline section yet; correctness is
    // hard-gated in-run, so --check degrades to a named warn-only note
    // instead of pretending to compare anything.
    if let Some(path) = check {
        eprintln!(
            "serve suite note (warn-only): no baseline gate for socket throughput \
             ({path} not consulted); bit-parity was hard-gated in-run"
        );
    }
    Ok(())
}

/// Writes the baseline file `--check` gates against. OAE values use
/// Rust's shortest round-trip float formatting, so the parsed values
/// compare exactly. The throughput suite refreshes the `throughput`
/// section (batched branches/s per scheme); the default suite preserves
/// whatever throughput section the file already carries.
fn write_baseline(
    path: &str,
    workload: &str,
    branches: usize,
    seed: u64,
    records: &[Record],
    suite: Suite,
) -> Result<(), Failure> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let throughput: Vec<(String, f64)> = match suite {
        Suite::Throughput => records
            .iter()
            .map(|r| (r.name.to_string(), r.branches_per_s))
            .collect(),
        Suite::Ingest | Suite::Shard | Suite::Serve | Suite::Simpoint => {
            unreachable!("these suites never write a baseline")
        }
        // Carry over the existing section so a default-suite refresh
        // does not silently drop the throughput trajectory. An existing
        // but unreadable/unparsable file is still overwritten (the whole
        // point of --update-baseline is recovering from drift), but with
        // a loud note that the trajectory was not preserved.
        Suite::Default => match std::fs::read_to_string(path) {
            Ok(text) => match Json::parse(&text) {
                Ok(doc) => doc
                    .get("throughput")
                    .and_then(|t| t.fields())
                    .map(|fields| {
                        fields
                            .iter()
                            .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f)))
                            .collect()
                    })
                    .unwrap_or_default(),
                Err(e) => {
                    eprintln!(
                        "note: existing baseline {path} did not parse ({e}); any throughput \
                         section is dropped — re-record it via \
                         `stbpu bench --suite throughput --quick --update-baseline {path}`"
                    );
                    Vec::new()
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => {
                eprintln!(
                    "note: existing baseline {path} could not be read ({e}); any throughput \
                     section is dropped — re-record it via \
                     `stbpu bench --suite throughput --quick --update-baseline {path}`"
                );
                Vec::new()
            }
        },
    };
    let schemes: Vec<String> = records
        .iter()
        .map(|r| format!("    \"{}\": {}", r.name, r.oae))
        .collect();
    let throughput_block = if throughput.is_empty() {
        String::new()
    } else {
        let rows: Vec<String> = throughput
            .iter()
            .map(|(name, bps)| format!("    \"{name}\": {bps:.0}"))
            .collect();
        format!(",\n  \"throughput\": {{\n{}\n  }}", rows.join(",\n"))
    };
    let body = format!(
        "{{\n  \"workload\": {},\n  \"branches\": {branches},\n  \"seed\": {seed},\n  \"schemes\": {{\n{}\n  }}{throughput_block}\n}}\n",
        escape(workload),
        schemes.join(",\n")
    );
    std::fs::write(path, body)?;
    Ok(())
}

/// Prints warn-only branches/s drift notes against the baseline's
/// `throughput` section. Never fails: wall-clock depends on the machine,
/// so the trajectory must accumulate before the gate hardens. Every note
/// names the suite that produced it, so interleaved CI logs from several
/// suites stay attributable.
fn throughput_drift_notes(suite: &str, path: &str, records: &[Record]) {
    let doc = match std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|text| Json::parse(&text).map_err(|e| e.to_string()))
    {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("{suite} suite note (warn-only): cannot read baseline {path}: {e}");
            return;
        }
    };
    let Some(section) = doc.get("throughput") else {
        eprintln!(
            "{suite} suite note (warn-only): baseline {path} has no throughput section yet; \
             refresh via `stbpu bench --suite throughput --quick --update-baseline {path}`"
        );
        return;
    };
    let mut notes = 0usize;
    for r in records {
        let Some(expected) = section.get(r.name).and_then(Json::as_f64) else {
            eprintln!(
                "{suite} suite note (warn-only): scheme '{}' missing from baseline",
                r.name
            );
            notes += 1;
            continue;
        };
        let drift = (r.branches_per_s - expected) / expected.max(1e-12);
        if drift.abs() > THROUGHPUT_NOTE_FRAC {
            eprintln!(
                "{suite} suite note (warn-only): scheme '{}' at {:.0} branches/s, {:+.1}% vs \
                 baseline {:.0}",
                r.name,
                r.branches_per_s,
                drift * 100.0,
                expected
            );
            notes += 1;
        }
    }
    if notes == 0 {
        eprintln!(
            "{suite} suite throughput check passed ({path}, all schemes within {:.0}% of \
             baseline, warn-only)",
            THROUGHPUT_NOTE_FRAC * 100.0
        );
    }
}

/// Verifies the run configuration matches the baseline and every scheme's
/// OAE is within `tolerance`; all drifts are reported before failing.
fn check_baseline(
    path: &str,
    workload: &str,
    branches: usize,
    seed: u64,
    tolerance: f64,
    records: &[Record],
) -> Result<(), Failure> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| Failure::Runtime(format!("read baseline {path}: {e}")))?;
    let doc =
        Json::parse(&text).map_err(|e| Failure::Runtime(format!("parse baseline {path}: {e}")))?;
    let field_err = |what: &str| Failure::Runtime(format!("baseline {path}: missing/bad {what}"));

    let base_workload = doc
        .get("workload")
        .and_then(Json::as_str)
        .ok_or_else(|| field_err("workload"))?;
    let base_branches = doc
        .get("branches")
        .and_then(Json::as_u64)
        .ok_or_else(|| field_err("branches"))?;
    let base_seed = doc
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or_else(|| field_err("seed"))?;
    if (base_workload, base_branches, base_seed) != (workload, branches as u64, seed) {
        return Err(Failure::Runtime(format!(
            "baseline {path} was recorded for ({base_workload}, {base_branches} branches, \
             seed {base_seed}) but this run used ({workload}, {branches} branches, seed {seed}); \
             rerun with matching flags or refresh it via --update-baseline (see CONTRIBUTING.md)"
        )));
    }
    let schemes = doc.get("schemes").ok_or_else(|| field_err("schemes"))?;

    let mut drifted = Vec::new();
    for r in records {
        let Some(expected) = schemes.get(r.name).and_then(Json::as_f64) else {
            drifted.push(format!("scheme '{}' missing from baseline", r.name));
            continue;
        };
        let delta = (r.oae - expected).abs();
        if delta > tolerance {
            drifted.push(format!(
                "scheme '{}': OAE {} drifted from baseline {} (|Δ| = {delta:.3e} > {tolerance:e})",
                r.name, r.oae, expected
            ));
        }
    }
    if let Some(fields) = schemes.fields() {
        for (name, _) in fields {
            if !records.iter().any(|r| r.name == name.as_str()) {
                drifted.push(format!("baseline scheme '{name}' was not measured"));
            }
        }
    }
    if !drifted.is_empty() {
        return Err(Failure::Runtime(format!(
            "OAE baseline gate failed:\n  {}\n(if the change is intentional, refresh via \
             `stbpu bench --quick --update-baseline {path}` and commit the diff)",
            drifted.join("\n  ")
        )));
    }
    Ok(())
}

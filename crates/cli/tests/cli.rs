//! Integration tests driving the real `stbpu` binary
//! (`CARGO_BIN_EXE_stbpu`): round-trip parity with direct engine calls,
//! exit-code contracts for unknown names, and help-output completeness.

use stbpu_engine::{Experiment, ModelRegistry, Scenario};
use stbpu_sim::Protection;
use std::path::PathBuf;
use std::process::{Command, Output};

fn stbpu(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_stbpu"))
        .args(args)
        .env_remove("STBPU_BRANCHES")
        .env_remove("STBPU_SEED")
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stbpu-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

// --- round-trip parity with direct engine calls -----------------------

#[test]
fn simulate_json_is_bit_identical_to_engine_run() {
    let out = stbpu(&[
        "simulate",
        "--model",
        "st_skl@r=0.05",
        "--workload",
        "505.mcf",
        "--branches",
        "6000",
        "--seed",
        "11",
        "--format",
        "json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let set = Experiment::new("ref")
        .workload("505.mcf")
        .scenario(Scenario::new("st_skl@r=0.05", Protection::Stbpu))
        .branches(6000)
        .seed(11)
        .run()
        .unwrap();
    let expected = stbpu_engine::report_to_json(&set.records()[0].report, 11);
    assert_eq!(stdout(&out).trim(), expected);
}

#[test]
fn grid_csv_is_bit_identical_to_engine_run() {
    let out = stbpu(&[
        "grid",
        "--workloads",
        "505.mcf,541.leela",
        "--scenarios",
        "skl:unprotected,st_skl@r=0.05:stbpu",
        "--seeds",
        "1,2",
        "--branches",
        "3000",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let set = Experiment::new("ref")
        .workloads(["505.mcf", "541.leela"])
        .scenario(Scenario::new("skl", Protection::Unprotected))
        .scenario(Scenario::new("st_skl@r=0.05", Protection::Stbpu))
        .seeds([1, 2])
        .branches(3000)
        .run()
        .unwrap();
    assert_eq!(stdout(&out), set.to_csv());
}

#[test]
fn spec_file_grid_matches_inline_flags() {
    let spec_path = scratch("grid.toml");
    std::fs::write(
        &spec_path,
        "name = \"spec\"\nworkloads = [\"525.x264\"]\n\
         scenarios = [\"skl:unprotected\", \"skl:ucode1\"]\n\
         seeds = [3]\nbranches = 2500\n",
    )
    .unwrap();
    let via_spec = stbpu(&["grid", "--spec", spec_path.to_str().unwrap()]);
    assert!(via_spec.status.success(), "{}", stderr(&via_spec));
    let via_flags = stbpu(&[
        "grid",
        "--workloads",
        "525.x264",
        "--scenarios",
        "skl:unprotected,skl:ucode1",
        "--seeds",
        "3",
        "--branches",
        "2500",
    ]);
    assert!(via_flags.status.success(), "{}", stderr(&via_flags));
    assert_eq!(stdout(&via_spec), stdout(&via_flags));
}

#[test]
fn trace_file_round_trip_is_bit_identical_to_generator() {
    let trace_path = scratch("roundtrip.trace");
    let gen = stbpu(&[
        "trace",
        "generate",
        "--workload",
        "541.leela",
        "--branches",
        "4000",
        "--seed",
        "9",
        "--out",
        trace_path.to_str().unwrap(),
    ]);
    assert!(gen.status.success(), "{}", stderr(&gen));

    let common = ["--model", "skl", "--seed", "9", "--format", "json"];
    let via_file = stbpu(
        &[
            &["simulate", "--trace-file", trace_path.to_str().unwrap()],
            &common[..],
        ]
        .concat(),
    );
    assert!(via_file.status.success(), "{}", stderr(&via_file));
    let via_generator = stbpu(
        &[
            &["simulate", "--workload", "541.leela", "--branches", "4000"],
            &common[..],
        ]
        .concat(),
    );
    assert!(via_generator.status.success(), "{}", stderr(&via_generator));
    assert_eq!(stdout(&via_file), stdout(&via_generator));

    // convert re-serializes bit-identically (headers normalized).
    let converted = scratch("converted.trace");
    let conv = stbpu(&[
        "trace",
        "convert",
        trace_path.to_str().unwrap(),
        converted.to_str().unwrap(),
    ]);
    assert!(conv.status.success(), "{}", stderr(&conv));
    assert_eq!(
        std::fs::read_to_string(&trace_path).unwrap(),
        std::fs::read_to_string(&converted).unwrap()
    );
}

#[test]
fn figures_subcommand_matches_knob_scaled_output() {
    // table2 is deterministic and scale-independent: the CLI must print
    // exactly what the shared implementation prints.
    let out = stbpu(&["figures", "table2"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.starts_with("Table II"), "{text}");
    for fn_name in ["R1", "R2", "R3", "R4", "Rt", "Rp"] {
        assert!(text.contains(fn_name), "missing {fn_name}");
    }
}

// --- exit codes and suggestion lists ----------------------------------

#[test]
fn unknown_model_exits_nonzero_with_suggestions() {
    let out = stbpu(&["simulate", "--model", "warp_drive"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown model 'warp_drive'"), "{err}");
    // The registry's full suggestion list is part of the message.
    for name in ModelRegistry::standard().names() {
        assert!(err.contains(name), "suggestion list missing {name}: {err}");
    }
}

#[test]
fn unknown_workload_exits_nonzero_with_suggestions() {
    let out = stbpu(&["simulate", "--model", "skl", "--workload", "warp"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown workload profile 'warp'"), "{err}");
    for known in ["505.mcf", "541.leela", "apache2_prefork_c128"] {
        assert!(err.contains(known), "{err}");
    }

    let out = stbpu(&[
        "grid",
        "--workloads",
        "warp",
        "--scenarios",
        "skl:unprotected",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("unknown workload"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn unknown_command_flag_and_figure_exit_nonzero() {
    assert_eq!(stbpu(&["warp"]).status.code(), Some(2));
    assert_eq!(
        stbpu(&["simulate", "--model", "skl", "--brnaches", "5"])
            .status
            .code(),
        Some(2)
    );
    let out = stbpu(&["figures", "fig99"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("fig3"), "{}", stderr(&out));
}

#[test]
fn bad_model_params_exit_nonzero() {
    let out = stbpu(&["simulate", "--model", "st_skl@r=zero"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("bad parameters"), "{}", stderr(&out));
}

// --- help completeness ------------------------------------------------

#[test]
fn main_help_lists_every_registered_scheme_and_subcommand() {
    let out = stbpu(&["--help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    let registry = ModelRegistry::standard();
    for name in registry.names() {
        assert!(text.contains(name), "help missing model {name}");
    }
    for alias in registry.alias_names() {
        assert!(text.contains(alias), "help missing alias {alias}");
    }
    for sub in [
        "simulate", "grid", "attack", "trace", "figures", "bench", "list",
    ] {
        assert!(text.contains(sub), "help missing subcommand {sub}");
    }
    // Workload catalogs are live too.
    for workload in ["505.mcf", "mysql_256con_50s", "chrome-1jetstream"] {
        assert!(text.contains(workload), "help missing workload {workload}");
    }
}

#[test]
fn subcommand_help_includes_model_catalog() {
    let out = stbpu(&["simulate", "--help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("--model"), "{text}");
    for name in ModelRegistry::standard().names() {
        assert!(text.contains(name), "simulate --help missing {name}");
    }
    let out = stbpu(&["help", "figures"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("--quick"));
}

#[test]
fn figures_list_covers_all_ten_harnesses() {
    let out = stbpu(&["figures", "--list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for f in stbpu_bench::figures::ALL {
        assert!(text.contains(f.name), "missing {}", f.name);
    }
}

// --- bench + baseline gate --------------------------------------------

#[test]
fn bench_baseline_round_trip_and_drift_detection() {
    let dir = scratch("bench-out");
    let baseline = scratch("baseline.json");
    let dir_s = dir.to_str().unwrap();
    let base_s = baseline.to_str().unwrap();
    let config = [
        "bench",
        "--branches",
        "10000",
        "--seed",
        "5",
        "--out-dir",
        dir_s,
        "--json",
    ];

    // Record a baseline, then a fresh identical run must pass the gate.
    let rec = stbpu(&[&config[..], &["--update-baseline", base_s]].concat());
    assert!(rec.status.success(), "{}", stderr(&rec));
    let json = stdout(&rec);
    assert!(json.starts_with('[') && json.contains("\"oae\":"), "{json}");
    for scheme in [
        "baseline",
        "stbpu",
        "ucode1",
        "conservative",
        "st_tage64",
        "tagescl",
        "st_tagescl",
        "ittage",
        "st_ittage",
    ] {
        assert!(
            dir.join(format!("BENCH_{scheme}.json")).is_file(),
            "missing BENCH_{scheme}.json"
        );
    }
    let check = stbpu(&[&config[..], &["--check", base_s]].concat());
    assert!(check.status.success(), "{}", stderr(&check));
    assert!(stderr(&check).contains("baseline check passed"));

    // Tampering with one scheme's OAE must fail the gate with the drift
    // named.
    let text = std::fs::read_to_string(&baseline).unwrap();
    let tampered = text.replacen("\"stbpu\": 0.", "\"stbpu\": 1.", 1);
    assert_ne!(text, tampered, "tamper point not found in {text}");
    std::fs::write(&baseline, tampered).unwrap();
    let fail = stbpu(&[&config[..], &["--check", base_s]].concat());
    assert_eq!(fail.status.code(), Some(1));
    let err = stderr(&fail);
    assert!(err.contains("scheme 'stbpu'"), "{err}");
    assert!(err.contains("--update-baseline"), "{err}");

    // A config mismatch is refused outright.
    let mismatch = stbpu(&[
        "bench",
        "--branches",
        "9999",
        "--seed",
        "5",
        "--out-dir",
        dir_s,
        "--check",
        base_s,
    ]);
    assert_eq!(mismatch.status.code(), Some(1));
    assert!(
        stderr(&mismatch).contains("was recorded for"),
        "{}",
        stderr(&mismatch)
    );
}

#[test]
fn bench_output_is_deterministic_for_fixed_seed() {
    let dir = scratch("bench-det");
    let run = |n: &str| {
        let out = stbpu(&[
            "bench",
            "--branches",
            "8000",
            "--seed",
            "7",
            "--out-dir",
            dir.join(n).to_str().unwrap(),
            "--json",
        ]);
        assert!(out.status.success(), "{}", stderr(&out));
        stdout(&out)
    };
    let (a, b) = (run("a"), run("b"));
    // Strip the wall-clock fields; everything else must be identical.
    let strip = |s: &str| {
        s.split(',')
            .filter(|f| !f.contains("elapsed_s") && !f.contains("branches_per_s"))
            .collect::<Vec<_>>()
            .join(",")
    };
    assert_eq!(strip(&a), strip(&b));
}

#[test]
fn bench_throughput_suite_emits_trajectory_and_warn_only_drift() {
    let dir = scratch("bench-tp");
    let baseline = scratch("baseline-tp.json");
    let dir_s = dir.to_str().unwrap();
    let base_s = baseline.to_str().unwrap();
    let config = [
        "bench",
        "--suite",
        "throughput",
        "--branches",
        "8000",
        "--seed",
        "5",
        "--out-dir",
        dir_s,
        "--json",
    ];

    // The suite runs batched AND single-event paths (bit-identity is a
    // hard internal check — a divergence exits 1) and emits one combined
    // trajectory record with both rates.
    let rec = stbpu(&[&config[..], &["--update-baseline", base_s]].concat());
    assert!(rec.status.success(), "{}", stderr(&rec));
    let json = stdout(&rec);
    assert!(
        json.contains("\"single_branches_per_s\":") && json.contains("\"batch_speedup\":"),
        "{json}"
    );
    let record = std::fs::read_to_string(dir.join("BENCH_throughput.json")).expect("trajectory");
    let doc = stbpu_engine::minijson::Json::parse(record.trim()).expect("valid JSON");
    assert_eq!(
        doc.get("suite").and_then(|s| s.as_str()),
        Some("throughput")
    );
    assert_eq!(doc.get("schemes").unwrap().as_array().unwrap().len(), 9);

    // The baseline gained a throughput section…
    let base_doc =
        stbpu_engine::minijson::Json::parse(&std::fs::read_to_string(&baseline).unwrap()).unwrap();
    assert!(
        base_doc
            .get("throughput")
            .and_then(|t| t.get("st_tage64"))
            .and_then(|v| v.as_f64())
            .is_some(),
        "throughput section missing"
    );

    // …and wildly-wrong throughput values produce warn-only notes, not a
    // failing exit (wall-clock is machine-dependent; see CONTRIBUTING.md).
    // Rewrite the section with values no real run can be within 10 % of,
    // so the drift-note path definitely fires (not just the pass note).
    let text = std::fs::read_to_string(&baseline).unwrap();
    let idx = text.find("\"throughput\"").unwrap();
    let tampered = format!(
        "{}\"throughput\": {{\n    \"baseline\": 1,\n    \"stbpu\": 1,\n    \"ucode1\": 1,\n    \
         \"conservative\": 1,\n    \"st_tage64\": 1\n  }}\n}}\n",
        &text[..idx]
    );
    std::fs::write(&baseline, &tampered).unwrap();
    let warn = stbpu(&[&config[..], &["--check", base_s]].concat());
    assert!(warn.status.success(), "{}", stderr(&warn));
    let warn_err = stderr(&warn);
    assert!(
        warn_err.contains("throughput suite note (warn-only)") && warn_err.contains("% vs"),
        "expected suite-named drift notes: {warn_err}"
    );

    // OAE tampering in the default suite still fails hard — the throughput
    // section does not weaken the accuracy gate.
    let check = stbpu(&[
        "bench",
        "--branches",
        "8000",
        "--seed",
        "5",
        "--out-dir",
        dir_s,
        "--check",
        base_s,
    ]);
    assert!(check.status.success(), "{}", stderr(&check));
}

// --- attack telemetry --------------------------------------------------

#[test]
fn attack_json_telemetry_is_machine_readable() {
    let out = stbpu(&["attack", "--branches", "20000", "--json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let doc = stbpu_engine::minijson::Json::parse(stdout(&out).trim()).expect("valid JSON");
    let st = doc.get("stbpu").expect("stbpu section");
    assert!(st.get("rerandomizations").unwrap().as_u64().unwrap() > 0);
    assert!(!st.get("marks").unwrap().as_array().unwrap().is_empty());
    let uc = doc.get("ucode1").expect("ucode1 section");
    assert!(uc.get("flushes").unwrap().as_u64().unwrap() > 0);
}

// --- binary .stbt format: round trips, golden gate, ingest suite -------

#[test]
fn stbt_round_trips_are_byte_identical_and_simulate_identically() {
    let stbt = scratch("fmt.stbt");
    let line = scratch("fmt.trace");
    let back = scratch("fmt-back.stbt");
    let gen = stbpu(&[
        "trace",
        "generate",
        "--workload",
        "505.mcf",
        "--branches",
        "5000",
        "--seed",
        "3",
        "--out",
        stbt.to_str().unwrap(),
    ]);
    assert!(gen.status.success(), "{}", stderr(&gen));
    // The .stbt extension alone selects the binary format.
    let header = std::fs::read(&stbt).unwrap();
    assert_eq!(&header[..4], b"STBT");

    // binary -> line -> binary is byte-identical.
    for (from, to) in [(&stbt, &line), (&line, &back)] {
        let conv = stbpu(&[
            "trace",
            "convert",
            from.to_str().unwrap(),
            to.to_str().unwrap(),
        ]);
        assert!(conv.status.success(), "{}", stderr(&conv));
    }
    assert_eq!(
        std::fs::read(&stbt).unwrap(),
        std::fs::read(&back).unwrap(),
        "binary -> line -> binary drifted"
    );

    // Simulating either file is bit-identical: same stream, same report.
    let common = [
        "--model",
        "st_skl@r=0.05",
        "--seed",
        "3",
        "--format",
        "json",
    ];
    let via_bin = stbpu(
        &[
            &["simulate", "--trace-file", stbt.to_str().unwrap()],
            &common[..],
        ]
        .concat(),
    );
    let via_line = stbpu(
        &[
            &["simulate", "--trace-file", line.to_str().unwrap()],
            &common[..],
        ]
        .concat(),
    );
    assert!(via_bin.status.success(), "{}", stderr(&via_bin));
    assert_eq!(stdout(&via_bin), stdout(&via_line));

    // inspect reports the detected format, size and scan rate.
    let ins = stbpu(&["trace", "inspect", stbt.to_str().unwrap(), "--json"]);
    assert!(ins.status.success(), "{}", stderr(&ins));
    let doc = stbpu_engine::minijson::Json::parse(stdout(&ins).trim()).expect("valid JSON");
    assert_eq!(doc.get("format").unwrap().as_str().unwrap(), "binary");
    assert_eq!(
        doc.get("bytes").unwrap().as_u64().unwrap(),
        std::fs::metadata(&stbt).unwrap().len()
    );
    assert_eq!(doc.get("branches").unwrap().as_u64().unwrap(), 5000);
    assert!(doc.get("records_per_s").unwrap().as_f64().unwrap() > 0.0);
    let ins_line = stbpu(&["trace", "inspect", line.to_str().unwrap(), "--json"]);
    let doc = stbpu_engine::minijson::Json::parse(stdout(&ins_line).trim()).expect("valid JSON");
    assert_eq!(doc.get("format").unwrap().as_str().unwrap(), "line");
}

/// The committed golden fixture is the local mirror of CI's
/// format-stability gate: any byte or OAE drift means the on-disk format
/// changed without a version bump + fixture refresh (see CONTRIBUTING.md).
#[test]
fn golden_stbt_fixture_is_format_stable() {
    let repo = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let golden = repo.join("ci/golden.stbt");
    let golden_oae = repo.join("ci/golden-oae.json");
    let line = scratch("golden.trace");
    let back = scratch("golden-back.stbt");

    for (from, to) in [
        (golden.to_str().unwrap(), line.to_str().unwrap()),
        (line.to_str().unwrap(), back.to_str().unwrap()),
    ] {
        let conv = stbpu(&["trace", "convert", from, to]);
        assert!(conv.status.success(), "{}", stderr(&conv));
    }
    assert_eq!(
        std::fs::read(&golden).unwrap(),
        std::fs::read(&back).unwrap(),
        "golden .stbt no longer round-trips byte-identically — if the format \
         change is intentional, bump binfmt::VERSION and refresh the fixture \
         (see CONTRIBUTING.md)"
    );

    let sim = stbpu(&[
        "simulate",
        "--model",
        "st_skl@r=0.05",
        "--trace-file",
        golden.to_str().unwrap(),
        "--warmup-branches",
        "0",
        "--seed",
        "42",
        "--format",
        "json",
    ]);
    assert!(sim.status.success(), "{}", stderr(&sim));
    assert_eq!(
        stdout(&sim).trim(),
        std::fs::read_to_string(&golden_oae).unwrap().trim(),
        "golden .stbt OAE drifted from ci/golden-oae.json"
    );
}

/// The committed golden `.cbp` fixture is the local mirror of CI's CBP
/// stable-leg gate: the championship container must convert through
/// `.stbt` and back byte-identically, `--from` must assert the detected
/// input format, and simulating the fixture with the CBP-class predictor
/// must reproduce the committed report.
#[test]
fn golden_cbp_fixture_is_format_stable() {
    let repo = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let golden = repo.join("ci/golden.cbp");
    let golden_oae = repo.join("ci/golden-cbp-oae.json");
    let stbt = scratch("golden-cbp.stbt");
    let back = scratch("golden-back.cbp");

    // The input-format assertion holds for the fixture…
    let conv = stbpu(&[
        "trace",
        "convert",
        "--from",
        "cbp",
        golden.to_str().unwrap(),
        stbt.to_str().unwrap(),
    ]);
    assert!(conv.status.success(), "{}", stderr(&conv));
    assert_eq!(&std::fs::read(&stbt).unwrap()[..4], b"STBT");
    // …and fails loudly when asserted against the wrong container.
    let wrong = stbpu(&[
        "trace",
        "convert",
        "--from",
        "cbp",
        stbt.to_str().unwrap(),
        back.to_str().unwrap(),
    ]);
    assert_eq!(wrong.status.code(), Some(1));
    assert!(stderr(&wrong).contains("--from cbp"), "{}", stderr(&wrong));

    let conv = stbpu(&[
        "trace",
        "convert",
        "--from",
        "binary",
        stbt.to_str().unwrap(),
        back.to_str().unwrap(),
    ]);
    assert!(conv.status.success(), "{}", stderr(&conv));
    assert_eq!(
        std::fs::read(&golden).unwrap(),
        std::fs::read(&back).unwrap(),
        "golden .cbp no longer round-trips byte-identically through .stbt — \
         if the format change is intentional, bump cbp::VERSION and refresh \
         the fixture (see CONTRIBUTING.md)"
    );

    let sim = stbpu(&[
        "simulate",
        "--model",
        "tagescl",
        "--trace-file",
        golden.to_str().unwrap(),
        "--warmup-branches",
        "0",
        "--seed",
        "42",
        "--format",
        "json",
    ]);
    assert!(sim.status.success(), "{}", stderr(&sim));
    assert_eq!(
        stdout(&sim).trim(),
        std::fs::read_to_string(&golden_oae).unwrap().trim(),
        "golden .cbp OAE drifted from ci/golden-cbp-oae.json"
    );
}

#[test]
fn bench_ingest_suite_gates_formats_and_reports_speedup() {
    let dir = scratch("ingest-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let out = stbpu(&[
        "bench",
        "--suite",
        "ingest",
        "--branches",
        "20000",
        "--seed",
        "6",
        "--json",
        "--out-dir",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let doc = stbpu_engine::minijson::Json::parse(stdout(&out).trim()).expect("valid JSON");
    assert_eq!(doc.get("suite").unwrap().as_str().unwrap(), "ingest");
    // The .stbt file must be dramatically smaller than the line file
    // (acceptance: <= 40% — in practice ~20%).
    assert!(doc.get("size_ratio").unwrap().as_f64().unwrap() < 0.4);
    assert!(doc.get("ingest_speedup").unwrap().as_f64().unwrap() > 1.0);
    let schemes = doc.get("schemes").unwrap().as_array().unwrap();
    assert_eq!(schemes.len(), 9);
    for s in schemes {
        assert!(s.get("line_branches_per_s").unwrap().as_f64().unwrap() > 0.0);
        assert!(s.get("binary_branches_per_s").unwrap().as_f64().unwrap() > 0.0);
    }
    // The emitted artifact matches stdout.
    let record = std::fs::read_to_string(dir.join("BENCH_ingest.json")).unwrap();
    assert_eq!(record.trim(), stdout(&out).trim());
    // --update-baseline is a usage error for this suite.
    let upd = stbpu(&[
        "bench",
        "--suite",
        "ingest",
        "--quick",
        "--update-baseline",
        "x.json",
    ]);
    assert_eq!(upd.status.code(), Some(2));
}

// --- workload suites ---------------------------------------------------

#[test]
fn grid_suite_runs_the_named_bundle() {
    let out_path = scratch("suite.csv");
    let out = stbpu(&[
        "grid",
        "--suite",
        "stress",
        "--branches",
        "1000",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let csv = std::fs::read_to_string(&out_path).unwrap();
    // 6 workloads x 5 scenarios x 1 seed + header.
    assert_eq!(csv.lines().count(), 31, "{csv}");
    for workload in ["apache2_prefork_c512", "mysql_256con_50s", "502.gcc"] {
        assert!(csv.contains(workload), "missing {workload}");
    }

    // Inline flags still override the suite's bundle.
    let narrowed = stbpu(&[
        "grid",
        "--suite",
        "stress",
        "--workloads",
        "541.leela",
        "--branches",
        "1000",
    ]);
    assert!(narrowed.status.success(), "{}", stderr(&narrowed));
    let csv = stdout(&narrowed);
    assert_eq!(csv.lines().count(), 6, "{csv}");
    assert!(!csv.contains("502.gcc"));
}

#[test]
fn unknown_suite_exits_nonzero_with_catalog() {
    let out = stbpu(&["grid", "--suite", "warp"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown workload suite 'warp'"), "{err}");
    for name in ["paper", "spec-like", "adversarial", "stress", "realtrace"] {
        assert!(err.contains(name), "catalog missing {name}: {err}");
    }
    // The suites are listable.
    let list = stbpu(&["list", "suites"]);
    assert!(list.status.success());
    for name in ["paper", "spec-like", "adversarial", "stress", "realtrace"] {
        assert!(stdout(&list).contains(name), "list missing {name}");
    }
}

// --- the serve daemon, self-test and bench suite ----------------------

#[test]
fn serve_client_json_is_byte_identical_to_simulate() {
    // The self-test hard-gates every streamed report bit-identical to
    // its offline reference internally; this proves the printed JSON
    // also matches `stbpu simulate` byte for byte for the same flags —
    // the exact comparison the CI smoke step makes.
    let served = stbpu(&[
        "serve",
        "--client",
        "--clients",
        "2",
        "--branches",
        "8000",
        "--seed",
        "11",
        "--warmup-branches",
        "800",
        "--json",
    ]);
    assert!(served.status.success(), "{}", stderr(&served));
    let offline = stbpu(&[
        "simulate",
        "--model",
        "st_skl",
        "--workload",
        "541.leela",
        "--branches",
        "8000",
        "--seed",
        "11",
        "--warmup-branches",
        "800",
        "--format",
        "json",
    ]);
    assert!(offline.status.success(), "{}", stderr(&offline));
    assert_eq!(stdout(&served), stdout(&offline));
}

// --- sharded simulation, checkpoints and crash-resume ------------------

#[test]
fn simulate_shards_is_byte_identical_to_sequential() {
    let common = [
        "simulate",
        "--model",
        "st_skl@r=0.05",
        "--workload",
        "505.mcf",
        "--branches",
        "20000",
        "--seed",
        "11",
        "--interval",
        "5000",
        "--format",
        "json",
    ];
    let seq = stbpu(&common);
    assert!(seq.status.success(), "{}", stderr(&seq));
    let sharded = stbpu(&[&common[..], &["--shards", "4"]].concat());
    assert!(sharded.status.success(), "{}", stderr(&sharded));
    assert_eq!(stdout(&seq), stdout(&sharded), "sharded output drifted");

    // With a checkpoint cache, the second sharded run reuses every
    // boundary checkpoint (pass 1 skipped) and stays byte-identical.
    let cache = scratch("shard-cache");
    let cached = [&common[..], &["--shards", "4", "--checkpoint-dir"]].concat();
    let cold = stbpu(&[&cached[..], &[cache.to_str().unwrap()]].concat());
    assert!(cold.status.success(), "{}", stderr(&cold));
    let warm = stbpu(&[&cached[..], &[cache.to_str().unwrap()]].concat());
    assert!(warm.status.success(), "{}", stderr(&warm));
    assert!(
        stderr(&warm).contains("reused 3 cached boundary checkpoints"),
        "{}",
        stderr(&warm)
    );
    assert_eq!(stdout(&seq), stdout(&warm), "warm sharded output drifted");
}

#[test]
fn checkpoint_create_inspect_resume_round_trip() {
    let ck = scratch("mid.stck");
    let ck_s = ck.to_str().unwrap();
    let create = stbpu(&[
        "checkpoint",
        "create",
        "--model",
        "st_skl@r=0.05",
        "--workload",
        "541.leela",
        "--branches",
        "30000",
        "--seed",
        "7",
        "--at-branches",
        "12000",
        "--out",
        ck_s,
    ]);
    assert!(create.status.success(), "{}", stderr(&create));
    assert!(
        stderr(&create).contains("at branch 12000"),
        "{}",
        stderr(&create)
    );

    let ins = stbpu(&["checkpoint", "inspect", ck_s, "--json"]);
    assert!(ins.status.success(), "{}", stderr(&ins));
    let doc = stbpu_engine::minijson::Json::parse(stdout(&ins).trim()).expect("valid JSON");
    assert_eq!(
        doc.get("model_spec").unwrap().as_str().unwrap(),
        "st_skl@r=0.05"
    );
    assert_eq!(doc.get("workload").unwrap().as_str().unwrap(), "541.leela");
    assert_eq!(doc.get("branches_seen").unwrap().as_u64().unwrap(), 12_000);
    assert_eq!(doc.get("seed").unwrap().as_u64().unwrap(), 7);
    assert_eq!(
        doc.get("version").unwrap().as_u64().unwrap(),
        u64::from(stbpu_sim::STCK_VERSION)
    );

    // Resuming from the checkpoint reproduces the uninterrupted run byte
    // for byte (model/seed/workload all come from the checkpoint).
    let resumed = stbpu(&[
        "simulate",
        "--resume-from",
        ck_s,
        "--branches",
        "30000",
        "--format",
        "json",
    ]);
    assert!(resumed.status.success(), "{}", stderr(&resumed));
    let plain = stbpu(&[
        "simulate",
        "--model",
        "st_skl@r=0.05",
        "--workload",
        "541.leela",
        "--branches",
        "30000",
        "--seed",
        "7",
        "--format",
        "json",
    ]);
    assert!(plain.status.success(), "{}", stderr(&plain));
    assert_eq!(stdout(&resumed), stdout(&plain), "resume drifted");

    // Truncated checkpoints are runtime errors with a position, never
    // panics.
    let bytes = std::fs::read(&ck).unwrap();
    let cut = scratch("cut.stck");
    std::fs::write(&cut, &bytes[..bytes.len() / 2]).unwrap();
    let bad = stbpu(&["checkpoint", "inspect", cut.to_str().unwrap()]);
    assert_eq!(bad.status.code(), Some(1));
    assert!(
        stderr(&bad).contains("checkpoint error at byte"),
        "{}",
        stderr(&bad)
    );
}

#[test]
fn checkpoint_and_shard_flag_misuse_exits_two() {
    let out = stbpu(&["simulate", "--resume-from", "x.stck", "--shards", "4"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("mutually exclusive"),
        "{}",
        stderr(&out)
    );

    let out = stbpu(&[
        "grid",
        "--workloads",
        "505.mcf",
        "--scenarios",
        "skl:unprotected",
        "--checkpoint-every",
        "1000",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("--checkpoint-every requires --checkpoint-dir"),
        "{}",
        stderr(&out)
    );

    let out = stbpu(&["checkpoint", "warp"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("inspect|create"), "{}", stderr(&out));

    let out = stbpu(&["checkpoint"]);
    assert_eq!(out.status.code(), Some(2));

    let out = stbpu(&[
        "checkpoint",
        "create",
        "--model",
        "skl",
        "--at-branches",
        "10",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("--out is required"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn grid_checkpoint_dir_matches_plain_and_replays_identically() {
    let dir = scratch("grid-ck");
    let grid = [
        "grid",
        "--workloads",
        "505.mcf",
        "--scenarios",
        "skl:unprotected,st_skl@r=0.05:stbpu",
        "--seeds",
        "1,2",
        "--branches",
        "5000",
    ];
    let plain = stbpu(&grid);
    assert!(plain.status.success(), "{}", stderr(&plain));
    let ck_args = [
        &grid[..],
        &[
            "--checkpoint-dir",
            dir.to_str().unwrap(),
            "--checkpoint-every",
            "2000",
        ],
    ]
    .concat();
    let first = stbpu(&ck_args);
    assert!(first.status.success(), "{}", stderr(&first));
    assert_eq!(stdout(&plain), stdout(&first), "checkpointed grid drifted");
    // The completed-cell log now covers the whole grid: a second run
    // replays it instead of recomputing, to byte-identical output.
    let replay = stbpu(&ck_args);
    assert!(replay.status.success(), "{}", stderr(&replay));
    assert_eq!(stdout(&plain), stdout(&replay), "replayed grid drifted");
}

#[test]
fn bench_shard_suite_emits_trajectory_record() {
    let dir = scratch("shard-bench");
    let out = stbpu(&[
        "bench",
        "--suite",
        "shard",
        "--branches",
        "40000",
        "--seed",
        "5",
        "--out-dir",
        dir.to_str().unwrap(),
        "--json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let doc = stbpu_engine::minijson::Json::parse(stdout(&out).trim()).expect("valid JSON");
    assert_eq!(doc.get("suite").unwrap().as_str().unwrap(), "shard");
    assert_eq!(doc.get("branches").unwrap().as_u64().unwrap(), 40_000);
    let shards = doc.get("shards").unwrap().as_array().unwrap();
    assert_eq!(shards.len(), 2, "expected N=2 and N=4 entries");
    for entry in shards {
        assert!(entry.get("cold_s").unwrap().as_f64().unwrap() > 0.0);
        assert!(entry.get("warm_s").unwrap().as_f64().unwrap() > 0.0);
    }
    assert!(doc.get("sequential_s").unwrap().as_f64().unwrap() > 0.0);
    assert!(doc.get("warm_resume_speedup").unwrap().as_f64().unwrap() > 0.0);
    assert!(
        doc.get("checkpoint_save_mb_per_s")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0
    );
    let record = std::fs::read_to_string(dir.join("BENCH_shard.json")).expect("record written");
    assert_eq!(stdout(&out).trim(), record.trim());

    // Parity with the sequential reference is a hard internal gate, and
    // baseline recording belongs to the default suite alone.
    let upd = stbpu(&[
        "bench",
        "--suite",
        "shard",
        "--quick",
        "--update-baseline",
        "x.json",
    ]);
    assert_eq!(upd.status.code(), Some(2));
}

/// The committed golden `.stck` fixture mirrors CI's checkpoint
/// format-stability gate: any decode or resume drift means the on-disk
/// checkpoint format changed without a STCK_VERSION bump + fixture
/// refresh (see CONTRIBUTING.md).
#[test]
fn golden_stck_fixture_resumes_identically() {
    let repo = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let golden = repo.join("ci/golden.stck");
    let trace = repo.join("ci/golden.stbt");
    let expected = repo.join("ci/golden-resume.json");

    let ins = stbpu(&["checkpoint", "inspect", golden.to_str().unwrap(), "--json"]);
    assert!(ins.status.success(), "{}", stderr(&ins));
    let doc = stbpu_engine::minijson::Json::parse(stdout(&ins).trim()).expect("valid JSON");
    assert_eq!(
        doc.get("model_spec").unwrap().as_str().unwrap(),
        "st_skl@r=0.05"
    );
    assert_eq!(
        doc.get("version").unwrap().as_u64().unwrap(),
        u64::from(stbpu_sim::STCK_VERSION)
    );

    let sim = stbpu(&[
        "simulate",
        "--resume-from",
        golden.to_str().unwrap(),
        "--trace-file",
        trace.to_str().unwrap(),
        "--format",
        "json",
    ]);
    assert!(sim.status.success(), "{}", stderr(&sim));
    assert_eq!(
        stdout(&sim).trim(),
        std::fs::read_to_string(&expected).unwrap().trim(),
        "golden .stck resume drifted from ci/golden-resume.json — if the \
         format change is intentional, bump STCK_VERSION and refresh the \
         fixture (see CONTRIBUTING.md)"
    );
}

// --- phase clustering: trace simpoint, .stbp, bench simpoint -----------

fn stbpu_in(dir: &std::path::Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_stbpu"))
        .args(args)
        .current_dir(dir)
        .env_remove("STBPU_BRANCHES")
        .env_remove("STBPU_SEED")
        .output()
        .expect("binary runs")
}

#[test]
fn trace_simpoint_builds_deterministic_stbp_and_estimates_from_it() {
    let a = scratch("phases-a.stbp");
    let b = scratch("phases-b.stbp");
    let build = |out: &PathBuf| {
        let run = stbpu(&[
            "trace",
            "simpoint",
            "--workload",
            "505.mcf",
            "--branches",
            "30000",
            "--seed",
            "9",
            "--slice-branches",
            "1500",
            "--out",
            out.to_str().unwrap(),
        ]);
        assert!(run.status.success(), "{}", stderr(&run));
    };
    build(&a);
    build(&b);
    assert_eq!(
        std::fs::read(&a).unwrap(),
        std::fs::read(&b).unwrap(),
        "phase-file build is not deterministic"
    );

    // inspect understands the format instead of failing on unknown magic.
    let ins = stbpu(&["trace", "inspect", a.to_str().unwrap(), "--json"]);
    assert!(ins.status.success(), "{}", stderr(&ins));
    let doc = stbpu_engine::minijson::Json::parse(stdout(&ins).trim()).expect("valid JSON");
    assert_eq!(doc.get("format").unwrap().as_str().unwrap(), "stbp");
    assert_eq!(doc.get("total_branches").unwrap().as_u64().unwrap(), 30_000);
    assert_eq!(doc.get("slice_branches").unwrap().as_u64().unwrap(), 1_500);
    let phases = doc.get("phases").unwrap().as_u64().unwrap();
    assert!(phases >= 1, "no phases in {doc:?}");

    // Estimation through the workload layer, with the estimated-vs-full
    // error surfaced on demand.
    let est = stbpu(&[
        "simulate",
        "--model",
        "st_skl@r=0.05",
        "--phases",
        a.to_str().unwrap(),
        "--workload",
        "505.mcf",
        "--compare-full",
        "--format",
        "json",
    ]);
    assert!(est.status.success(), "{}", stderr(&est));
    let err = stderr(&est);
    assert!(err.contains("estimated vs full"), "{err}");
    assert!(err.contains("phase estimate:"), "{err}");
    let doc = stbpu_engine::minijson::Json::parse(stdout(&est).trim()).expect("valid JSON");
    assert_eq!(doc.get("branches").unwrap().as_u64().unwrap(), 30_000);
}

/// The committed golden `.stbp` fixture mirrors CI's phase-file
/// format-stability gate: regeneration from the golden trace must be
/// byte-identical, inspect must print the committed table, and the
/// phase-based estimate must reproduce the committed report. Any drift
/// means the `.stbp` format or the clustering changed without a
/// STBP_VERSION bump + fixture refresh (see CONTRIBUTING.md).
#[test]
fn golden_stbp_fixture_is_format_stable() {
    let repo = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let rebuilt = scratch("golden-rebuilt.stbp");
    let build = stbpu_in(
        &repo,
        &[
            "trace",
            "simpoint",
            "--trace-file",
            "ci/golden.stbt",
            "--out",
            rebuilt.to_str().unwrap(),
            "--branches",
            "400",
            "--slice-branches",
            "50",
            "--k",
            "3",
        ],
    );
    assert!(build.status.success(), "{}", stderr(&build));
    assert_eq!(
        std::fs::read(repo.join("ci/golden.stbp")).unwrap(),
        std::fs::read(&rebuilt).unwrap(),
        "golden .stbp no longer regenerates byte-identically — if the \
         format or clustering change is intentional, bump STBP_VERSION \
         and refresh the fixture (see CONTRIBUTING.md)"
    );

    let ins = stbpu_in(&repo, &["trace", "inspect", "ci/golden.stbp"]);
    assert!(ins.status.success(), "{}", stderr(&ins));
    assert_eq!(
        stdout(&ins),
        std::fs::read_to_string(repo.join("ci/golden-simpoint.txt")).unwrap(),
        "golden .stbp inspect output drifted from ci/golden-simpoint.txt"
    );

    let est = stbpu_in(
        &repo,
        &[
            "simulate",
            "--phases",
            "ci/golden.stbp",
            "--trace-file",
            "ci/golden.stbt",
            "--model",
            "st_skl@r=0.05",
            "--format",
            "json",
        ],
    );
    assert!(est.status.success(), "{}", stderr(&est));
    assert_eq!(
        stdout(&est).trim(),
        std::fs::read_to_string(repo.join("ci/golden-phases.json"))
            .unwrap()
            .trim(),
        "golden .stbp estimate drifted from ci/golden-phases.json"
    );
}

#[test]
fn bench_simpoint_suite_reference_round_trip_and_drift_detection() {
    let dir = scratch("simpoint-bench");
    let reference = scratch("simpoint-ref.json");
    let dir_s = dir.to_str().unwrap();
    let ref_s = reference.to_str().unwrap();
    // Big enough that the 10k-branch cold-start warm-up floor doesn't
    // swamp the representatives (branch_speedup must exceed 1).
    let config = [
        "bench",
        "--suite",
        "simpoint",
        "--branches",
        "200000",
        "--seed",
        "5",
        "--estimate-only",
        "--out-dir",
        dir_s,
        "--json",
    ];

    let rec = stbpu(&[&config[..], &["--update-reference", ref_s]].concat());
    assert!(rec.status.success(), "{}", stderr(&rec));
    let doc = stbpu_engine::minijson::Json::parse(stdout(&rec).trim()).expect("valid JSON");
    assert_eq!(doc.get("suite").unwrap().as_str().unwrap(), "simpoint");
    assert!(doc.get("branch_speedup").unwrap().as_f64().unwrap() > 1.0);
    assert_eq!(doc.get("schemes").unwrap().as_array().unwrap().len(), 9);
    let record = std::fs::read_to_string(dir.join("BENCH_simpoint.json")).expect("record");
    assert_eq!(record.trim(), stdout(&rec).trim());

    // A fresh identical run passes the committed-reference gate…
    let check = stbpu(&[&config[..], &["--check", ref_s]].concat());
    assert!(check.status.success(), "{}", stderr(&check));
    assert!(
        stderr(&check).contains("simpoint reference check passed"),
        "{}",
        stderr(&check)
    );

    // …and a tampered estimate fails it, naming the scheme and the
    // refresh recipe.
    let text = std::fs::read_to_string(&reference).unwrap();
    let tampered = text.replacen("\"stbpu\": 0.", "\"stbpu\": 1.", 1);
    assert_ne!(text, tampered, "tamper point not found in {text}");
    std::fs::write(&reference, tampered).unwrap();
    let fail = stbpu(&[&config[..], &["--check", ref_s]].concat());
    assert_eq!(fail.status.code(), Some(1));
    let err = stderr(&fail);
    assert!(err.contains("scheme 'stbpu'"), "{err}");
    assert!(err.contains("--update-reference"), "{err}");
}

#[test]
fn simpoint_flag_misuse_exits_two() {
    // --phases excludes the sharding/resume machinery.
    let out = stbpu(&[
        "simulate", "--model", "skl", "--phases", "x.stbp", "--shards", "4",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("mutually exclusive"),
        "{}",
        stderr(&out)
    );

    // --compare-full means nothing without --phases.
    let out = stbpu(&["simulate", "--model", "skl", "--compare-full"]);
    assert_eq!(out.status.code(), Some(2));

    // --protection without --embed-model cannot pin a checkpoint.
    let out = stbpu(&[
        "trace",
        "simpoint",
        "--workload",
        "505.mcf",
        "--out",
        "x.stbp",
        "--protection",
        "stbpu",
    ]);
    assert_eq!(out.status.code(), Some(2));

    // The reference flags belong to the simpoint suite alone, and the
    // OAE baseline belongs to the default suite alone.
    let out = stbpu(&["bench", "--quick", "--update-reference", "x.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("simpoint"), "{}", stderr(&out));
    let out = stbpu(&[
        "bench",
        "--suite",
        "simpoint",
        "--quick",
        "--update-baseline",
        "x.json",
    ]);
    assert_eq!(out.status.code(), Some(2));
}

// --- the serve daemon, self-test and bench suite (continued) ----------

#[test]
fn bench_serve_suite_emits_trajectory_record() {
    let dir = scratch("serve-bench");
    let out = stbpu(&[
        "bench",
        "--suite",
        "serve",
        "--branches",
        "5000",
        "--clients",
        "2",
        "--sessions",
        "1",
        "--out-dir",
        dir.to_str().unwrap(),
        "--json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let record = std::fs::read_to_string(dir.join("BENCH_serve.json")).expect("record written");
    for field in [
        "\"suite\":\"serve\"",
        "\"clients\":2",
        "\"sessions\":2",
        "\"sessions_per_s\"",
        "\"branches_per_s\"",
        "\"p50_ms\"",
        "\"p99_ms\"",
        "\"oae\"",
    ] {
        assert!(record.contains(field), "missing {field} in {record}");
    }
    assert_eq!(stdout(&out).trim(), record.trim());

    // The fleet flags belong to the serve suite alone.
    let misuse = stbpu(&["bench", "--quick", "--clients", "4"]);
    assert_eq!(misuse.status.code(), Some(2));
    assert!(
        stderr(&misuse).contains("serve suite"),
        "{}",
        stderr(&misuse)
    );
}

//! Integration tests for `stbpu analyze` driving the real binary: the
//! live workspace must gate clean, every flag must honor the CLI
//! contracts, and — the acceptance criterion for the gate itself — a
//! workspace with the PR 6 write-under-mutex pattern reintroduced into
//! `crates/serve/src/server.rs` must fail with positioned diagnostics.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn stbpu_in(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_stbpu"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("binary runs")
}

fn stbpu(args: &[&str]) -> Output {
    stbpu_in(Path::new(env!("CARGO_MANIFEST_DIR")), args)
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

/// A throwaway single-crate workspace whose `crates/serve/src/server.rs`
/// holds whatever source the test plants there.
fn synthetic_workspace(name: &str, server_rs: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("stbpu-analyze-test-{}-{name}", std::process::id()));
    let src = root.join("crates").join("serve").join("src");
    std::fs::create_dir_all(&src).expect("scratch workspace");
    std::fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/serve\"]\n",
    )
    .expect("root manifest");
    std::fs::write(
        root.join("crates").join("serve").join("Cargo.toml"),
        "[package]\nname = \"stbpu-serve\"\nversion = \"0.0.0\"\n",
    )
    .expect("crate manifest");
    std::fs::write(src.join("server.rs"), server_rs).expect("server.rs");
    root
}

// --- the live workspace gates clean -----------------------------------

#[test]
fn analyze_exits_zero_on_the_workspace() {
    let out = stbpu(&["analyze"]);
    assert!(
        out.status.success(),
        "stdout:\n{}\nstderr:\n{}",
        stdout(&out),
        stderr(&out)
    );
    assert!(stdout(&out).contains("0 findings"), "{}", stdout(&out));
}

#[test]
fn analyze_finds_the_root_from_a_nested_working_directory() {
    // No --root: the command walks up from cwd (crates/cli) to the
    // [workspace] manifest.
    let nested = workspace_root().join("crates").join("serve");
    let out = stbpu_in(&nested, &["analyze"]);
    assert!(out.status.success(), "{}", stderr(&out));
}

#[test]
fn analyze_json_report_is_machine_readable() {
    let out = stbpu(&["analyze", "--format", "json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let json = stdout(&out);
    assert!(json.contains("\"clean\": true"), "{json}");
    assert!(json.contains("\"files_scanned\""), "{json}");
    assert!(json.contains("\"suppressed\""), "{json}");
}

#[test]
fn analyze_list_lints_prints_the_catalog() {
    let out = stbpu(&["analyze", "--list-lints"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    for lint in ["lock-scope", "determinism", "wall-clock", "panic-freedom"] {
        assert!(text.contains(lint), "missing {lint}:\n{text}");
    }
}

// --- the gate fails when the PR 6 bug comes back -----------------------

#[test]
fn analyze_fails_when_the_pr6_write_under_mutex_returns() {
    // The exact shape the PR 6 review fixed: socket writes issued while
    // the registry guard is live.
    let root = synthetic_workspace(
        "pr6",
        r#"
use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

struct State { frames: Vec<Vec<u8>> }

fn broadcast(state: &Mutex<State>, sock: &mut TcpStream) {
    let mut st = state.lock().unwrap_or_default();
    for frame in st.frames.drain(..) {
        let _ = sock.write_all(&frame);
    }
}
"#,
    );
    let out = stbpu(&["analyze", "--root", root.to_str().expect("utf-8 path")]);
    let _ = std::fs::remove_dir_all(&root);
    assert!(!out.status.success(), "the gate must fail");
    assert_eq!(out.status.code(), Some(1), "runtime failure, not usage");
    let text = stdout(&out);
    // Positioned diagnostic: file:line:col, the lint id, the guard name.
    assert!(
        text.contains("crates/serve/src/server.rs:11:"),
        "positioned at the write_all line:\n{text}"
    );
    assert!(text.contains("lock-scope"), "{text}");
    assert!(text.contains("`st`"), "names the live guard:\n{text}");
    assert!(
        stderr(&out).contains("non-allowlisted finding"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn analyze_passes_the_fixed_shape_of_the_same_workspace() {
    let root = synthetic_workspace(
        "pr6fixed",
        r#"
use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

struct State { frames: Vec<Vec<u8>> }

fn broadcast(state: &Mutex<State>, sock: &mut TcpStream) {
    let frames: Vec<Vec<u8>> = {
        let mut st = state.lock().unwrap_or_default();
        st.frames.drain(..).collect()
    };
    for frame in frames {
        let _ = sock.write_all(&frame);
    }
}
"#,
    );
    let out = stbpu(&["analyze", "--root", root.to_str().expect("utf-8 path")]);
    let _ = std::fs::remove_dir_all(&root);
    assert!(
        out.status.success(),
        "stdout:\n{}\nstderr:\n{}",
        stdout(&out),
        stderr(&out)
    );
}

// --- CLI contracts -----------------------------------------------------

#[test]
fn analyze_usage_errors_exit_two() {
    let out = stbpu(&["analyze", "--format", "yaml"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    let out = stbpu(&["analyze", "--frmat", "json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--frmat"), "{}", stderr(&out));
    let out = stbpu(&["analyze", "--root", "/nonexistent-stbpu-path"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
}

#[test]
fn analyze_help_is_wired() {
    let out = stbpu(&["help", "analyze"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("--list-lints"), "{}", stdout(&out));
    let out = stbpu(&["--help"]);
    assert!(
        stdout(&out).contains("analyze"),
        "main help must list the subcommand:\n{}",
        stdout(&out)
    );
}

#[test]
fn analyze_out_writes_the_report_file() {
    let dir = std::env::temp_dir().join(format!("stbpu-analyze-out-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("report.json");
    let out = stbpu(&[
        "analyze",
        "--format",
        "json",
        "--out",
        path.to_str().expect("utf-8 path"),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stdout(&out).is_empty(),
        "report went to the file, not stdout"
    );
    let written = std::fs::read_to_string(&path).expect("report file");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(written.contains("\"clean\": true"), "{written}");
}

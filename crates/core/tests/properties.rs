//! Property tests for the secret-token machinery.

use proptest::prelude::*;
use stbpu_bpu::{EntityId, Mapper};
use stbpu_core::{StConfig, StMapper, TokenManager};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Thresholds scale linearly in r and never reach zero.
    #[test]
    fn thresholds_scale(r in 1e-9f64..1.0) {
        let c = StConfig::with_r(r);
        prop_assert!(c.misp_threshold() >= 1);
        prop_assert!(c.eviction_threshold() >= 1);
        let c2 = StConfig::with_r((r * 2.0).min(1.0));
        prop_assert!(c2.misp_threshold() >= c.misp_threshold());
    }

    /// Exactly Γ misprediction events trigger one re-randomization, for
    /// any threshold.
    #[test]
    fn counter_fires_exactly_at_threshold(gamma in 1u64..500, seed in any::<u64>()) {
        let cfg = StConfig {
            r: 1.0,
            misp_complexity: gamma as f64,
            eviction_complexity: 1e12,
            separate_tage_register: false,
        };
        let mut mgr = TokenManager::new(cfg, seed);
        let e = EntityId::user(1);
        for i in 1..gamma {
            prop_assert!(!mgr.note_misprediction(e), "fired early at {i}");
        }
        prop_assert!(mgr.note_misprediction(e), "must fire at {gamma}");
        prop_assert_eq!(mgr.rerandomizations(), 1);
    }

    /// Re-randomization always changes the effective mapping of the
    /// current entity (over a sample of addresses).
    #[test]
    fn rerandomization_changes_mapping(seed in any::<u64>(), entity in 1u32..1000) {
        let mut m = StMapper::new(StConfig::default(), seed);
        m.set_entity(0, EntityId::user(entity));
        let sample: Vec<_> = (0..32u64).map(|i| 0x40_0000 + i * 0x1234).collect();
        let before: Vec<_> = sample.iter().map(|&pc| m.btb1(0, pc)).collect();
        m.force_rerandomize(0);
        let after: Vec<_> = sample.iter().map(|&pc| m.btb1(0, pc)).collect();
        prop_assert_ne!(before, after, "mapping must change");
        prop_assert_eq!(m.rerandomizations(), 1);
    }

    /// Token sharing is transitive through the canonical entity and
    /// re-keys the whole group at once.
    #[test]
    fn shared_group_rekeys_together(seed in any::<u64>()) {
        let mut mgr = TokenManager::new(StConfig::default(), seed);
        let parent = EntityId::user(1);
        let w1 = EntityId::user(2);
        let w2 = EntityId::user(3);
        mgr.share_token(w1, parent);
        mgr.share_token(w2, w1); // alias of an alias
        let t = mgr.token(parent);
        prop_assert_eq!(mgr.token(w1), t);
        prop_assert_eq!(mgr.token(w2), t);
        let t2 = mgr.rerandomize(w2);
        prop_assert_eq!(mgr.token(parent), t2);
        prop_assert_eq!(mgr.token(w1), t2);
    }

    /// Encryption with the current token round-trips through the mapper on
    /// both hardware threads, and thread tokens are independent when
    /// entities differ.
    #[test]
    fn mapper_encryption_roundtrip(seed in any::<u64>(), v in any::<u32>()) {
        let mut m = StMapper::new(StConfig::default(), seed);
        m.set_entity(0, EntityId::user(1));
        m.set_entity(1, EntityId::user(2));
        prop_assert_eq!(m.decrypt_target(0, m.encrypt_target(0, v)), v);
        prop_assert_eq!(m.decrypt_target(1, m.encrypt_target(1, v)), v);
    }
}

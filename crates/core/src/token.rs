//! Secret tokens (ST): the per-entity 64-bit keys of STBPU.

use rand::Rng;
use std::fmt;

/// A 64-bit secret token, split into ψ (remapping key) and φ (target
/// encryption key) as in Section IV-B.
///
/// The token lives in a special-purpose register readable and writable only
/// from privileged mode; the threat model assumes the attacker can never
/// learn it directly (Section III). Re-randomization fetches a fresh value
/// from the in-chip DRNG — modelled here by the caller's seeded PRNG.
///
/// ```
/// use stbpu_core::SecretToken;
/// let t = SecretToken::from_raw(0xaaaa_bbbb_cccc_dddd);
/// assert_eq!(t.psi(), 0xcccc_dddd);
/// assert_eq!(t.phi(), 0xaaaa_bbbb);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SecretToken(u64);

impl SecretToken {
    /// Builds a token from its raw 64-bit register value.
    pub fn from_raw(raw: u64) -> Self {
        SecretToken(raw)
    }

    /// Draws a fresh token from `rng` (the DRNG model).
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        SecretToken(rng.gen())
    }

    /// The raw register value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// ψ — the 32-bit remapping key (low half).
    pub fn psi(self) -> u32 {
        self.0 as u32
    }

    /// φ — the 32-bit target-encryption key (high half).
    pub fn phi(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Encrypts a stored 32-bit target with φ (a single XOR — Section IV-B
    /// argues stronger ciphers buy nothing under automatic
    /// re-randomization).
    pub fn encrypt(self, target32: u32) -> u32 {
        target32 ^ self.phi()
    }

    /// Decrypts a stored 32-bit target with φ.
    pub fn decrypt(self, stored: u32) -> u32 {
        stored ^ self.phi()
    }
}

impl fmt::Debug for SecretToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Do not leak the token value in debug output; show a short digest.
        let d = self.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 48;
        write!(f, "SecretToken(#{d:04x})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn halves_split_correctly() {
        let t = SecretToken::from_raw(0x1122_3344_5566_7788);
        assert_eq!(t.psi(), 0x5566_7788);
        assert_eq!(t.phi(), 0x1122_3344);
        assert_eq!(t.raw(), 0x1122_3344_5566_7788);
    }

    #[test]
    fn xor_roundtrip() {
        let t = SecretToken::from_raw(0xdead_beef_0bad_f00d);
        for v in [0u32, 1, 0xffff_ffff, 0x1234_5678] {
            assert_eq!(t.decrypt(t.encrypt(v)), v);
        }
    }

    #[test]
    fn cross_token_decrypt_garbles() {
        let a = SecretToken::from_raw(0x1111_2222_3333_4444);
        let b = SecretToken::from_raw(0x5555_6666_7777_8888);
        let v = 0x0040_1000u32;
        assert_ne!(b.decrypt(a.encrypt(v)), v, "τV = φa ⊕ τA ⊕ φv must differ");
    }

    #[test]
    fn random_tokens_differ_and_are_seed_deterministic() {
        let mut r1 = rand::rngs::StdRng::seed_from_u64(9);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(9);
        let a = SecretToken::random(&mut r1);
        let b = SecretToken::random(&mut r1);
        assert_ne!(a, b);
        assert_eq!(a, SecretToken::random(&mut r2));
    }

    #[test]
    fn debug_does_not_print_raw_value() {
        let t = SecretToken::from_raw(0x1234_5678_9abc_def0);
        let s = format!("{t:?}");
        assert!(!s.contains("123456789abcdef0"));
        assert!(!s.contains("9abcdef0"));
        assert!(s.starts_with("SecretToken"));
    }
}

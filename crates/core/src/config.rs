//! Re-randomization threshold configuration (Sections VI-5 and VII-A).

/// Attack complexities and the derived re-randomization thresholds.
///
/// Section VI derives, for each attack class, the least number of
/// monitorable events (mispredictions or BTB evictions) an attacker must
/// trigger for a 50 % success chance. The lowest complexities over all
/// attacks bound the thresholds:
///
/// * mispredictions: ≈ 8.38 × 10⁵ (BranchScope-style PHT reuse),
/// * evictions: ≈ 5.3 × 10⁵ (BTB eviction-based side channel).
///
/// The OS scales them by the **attack difficulty factor** `r`:
/// Γ = r · C. `r = 1` corresponds to an attack with 50 % success before
/// re-randomization; the paper selects `r = 0.05` as the default
/// (Γ_misp = 41 900, Γ_ev = 26 500), and Figure 6 sweeps `r` downward to
/// measure the cost of defending against hypothetical faster attacks.
#[derive(Clone, Copy, Debug)]
pub struct StConfig {
    /// Attack difficulty factor `r` (Section VII-A).
    pub r: f64,
    /// Lowest misprediction-based attack complexity C_misp.
    pub misp_complexity: f64,
    /// Lowest eviction-based attack complexity C_ev.
    pub eviction_complexity: f64,
    /// Whether the model has a separate threshold register for
    /// mispredictions provided by TAGE tagged components (TAGE models do,
    /// ST_SKLCond does not — Section VII-B2).
    pub separate_tage_register: bool,
}

/// BranchScope-style PHT reuse attack complexity (Section VI-5).
pub const MISP_COMPLEXITY: f64 = 8.38e5;
/// BTB eviction-based side channel complexity (Section VI-5).
pub const EVICTION_COMPLEXITY: f64 = 5.3e5;
/// The paper's default attack difficulty factor.
pub const DEFAULT_R: f64 = 0.05;

impl Default for StConfig {
    fn default() -> Self {
        StConfig {
            r: DEFAULT_R,
            misp_complexity: MISP_COMPLEXITY,
            eviction_complexity: EVICTION_COMPLEXITY,
            separate_tage_register: false,
        }
    }
}

impl StConfig {
    /// Configuration with a custom difficulty factor (Figure 6 sweeps).
    pub fn with_r(r: f64) -> Self {
        assert!(r > 0.0, "difficulty factor must be positive");
        StConfig {
            r,
            ..StConfig::default()
        }
    }

    /// Γ_misp = r · C_misp, floored at one event.
    pub fn misp_threshold(&self) -> u64 {
        ((self.r * self.misp_complexity).round() as u64).max(1)
    }

    /// Γ_ev = r · C_ev, floored at one event.
    pub fn eviction_threshold(&self) -> u64 {
        ((self.r * self.eviction_complexity).round() as u64).max(1)
    }

    /// Threshold for the separate TAGE-misprediction register (same base
    /// complexity — the analysis of Section VI-A2 notes attacks on the
    /// complex tables are strictly harder than on the base predictor).
    pub fn tage_misp_threshold(&self) -> u64 {
        self.misp_threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_threshold_numbers() {
        // Section VII-A: r = 0.1 → 8.3×10⁴ and 5.3×10⁴;
        //                r = 0.05 → 4.15×10⁴ and 2.65×10⁴.
        let r01 = StConfig::with_r(0.1);
        assert_eq!(r01.misp_threshold(), 83_800);
        assert_eq!(r01.eviction_threshold(), 53_000);
        let r005 = StConfig::with_r(0.05);
        assert_eq!(r005.misp_threshold(), 41_900);
        assert_eq!(r005.eviction_threshold(), 26_500);
    }

    #[test]
    fn default_is_r_005() {
        let d = StConfig::default();
        assert_eq!(d.misp_threshold(), 41_900);
        assert_eq!(d.eviction_threshold(), 26_500);
    }

    #[test]
    fn extreme_r_floors_at_one() {
        let c = StConfig::with_r(1e-12);
        assert_eq!(c.misp_threshold(), 1);
        assert_eq!(c.eviction_threshold(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_r_rejected() {
        let _ = StConfig::with_r(0.0);
    }
}

//! OS-side token management: per-entity tokens, monitoring MSRs and
//! re-randomization (Sections IV-A and IV-B).

use crate::config::StConfig;
use crate::token::SecretToken;
use rand::SeedableRng;
use stbpu_bpu::{EntityId, SnapError, StateReader, StateWriter};
use std::collections::BTreeMap;

/// The monitoring MSRs of one software entity: countdown registers
/// initialised to their thresholds; an observed event decrements the
/// matching counter and a zero triggers ST re-randomization (Section IV-B).
///
/// The registers are part of the process context — the OS saves and
/// restores them across context/mode switches, which the per-entity storage
/// here models directly.
#[derive(Clone, Copy, Debug)]
pub struct EventMonitor {
    /// Remaining mispredictions before re-randomization.
    pub misp_left: u64,
    /// Remaining TAGE-component mispredictions (only consulted when the
    /// model has the separate register).
    pub tage_misp_left: u64,
    /// Remaining BTB evictions before re-randomization.
    pub evictions_left: u64,
}

impl EventMonitor {
    /// Fresh counters at their thresholds.
    pub fn armed(cfg: &StConfig) -> Self {
        EventMonitor {
            misp_left: cfg.misp_threshold(),
            tage_misp_left: cfg.tage_misp_threshold(),
            evictions_left: cfg.eviction_threshold(),
        }
    }
}

#[derive(Clone, Debug)]
struct EntityState {
    token: SecretToken,
    monitor: EventMonitor,
    generation: u64,
}

/// Per-entity secret-token table with monitoring and re-randomization —
/// the privileged-software side of STBPU.
///
/// ```
/// use stbpu_bpu::EntityId;
/// use stbpu_core::{StConfig, TokenManager};
///
/// let mut mgr = TokenManager::new(StConfig::default(), 1);
/// let a = mgr.token(EntityId::user(1));
/// let b = mgr.token(EntityId::user(2));
/// assert_ne!(a, b, "separate entities get separate tokens");
/// assert_eq!(a, mgr.token(EntityId::user(1)), "tokens are stable until re-randomized");
/// ```
#[derive(Debug)]
pub struct TokenManager {
    cfg: StConfig,
    rng: rand::rngs::StdRng,
    // BTreeMaps so any future iteration over the tables is ordered —
    // token state feeds OAE-gated output downstream.
    entities: BTreeMap<EntityId, EntityState>,
    /// Selective history sharing: alias → canonical entity (Section IV-A).
    aliases: BTreeMap<EntityId, EntityId>,
    rerandomizations: u64,
    generations: u64,
}

impl TokenManager {
    /// Creates a manager with a deterministic DRNG model.
    pub fn new(cfg: StConfig, seed: u64) -> Self {
        TokenManager {
            cfg,
            rng: rand::rngs::StdRng::seed_from_u64(seed ^ 0x57_42_50_55),
            entities: BTreeMap::new(),
            aliases: BTreeMap::new(),
            rerandomizations: 0,
            generations: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &StConfig {
        &self.cfg
    }

    fn canonical(&self, e: EntityId) -> EntityId {
        *self.aliases.get(&e).unwrap_or(&e)
    }

    fn state(&mut self, e: EntityId) -> &mut EntityState {
        let e = self.canonical(e);
        let cfg = self.cfg;
        self.generations += 1;
        let gen = self.generations;
        let rng = &mut self.rng;
        self.entities.entry(e).or_insert_with(|| EntityState {
            token: SecretToken::random(rng),
            monitor: EventMonitor::armed(&cfg),
            generation: gen,
        })
    }

    /// The current token of `entity` (allocating one on first use).
    pub fn token(&mut self, entity: EntityId) -> SecretToken {
        self.state(entity).token
    }

    /// A generation stamp that changes whenever `entity`'s mapping changes.
    pub fn generation(&mut self, entity: EntityId) -> u64 {
        self.state(entity).generation
    }

    /// Snapshot of the entity's monitoring registers.
    pub fn monitor(&mut self, entity: EntityId) -> EventMonitor {
        self.state(entity).monitor
    }

    /// Declares that `alias` shares `canonical`'s token — the OS's
    /// selective history sharing for multi-process services (Section IV-A).
    ///
    /// # Panics
    ///
    /// Panics if `alias` already has private state (sharing must be set up
    /// before the alias runs).
    pub fn share_token(&mut self, alias: EntityId, canonical: EntityId) {
        assert!(
            !self.entities.contains_key(&alias),
            "cannot alias an entity that already has a token"
        );
        let c = self.canonical(canonical);
        self.aliases.insert(alias, c);
    }

    /// Forces re-randomization of `entity`'s token and re-arms its
    /// counters. Returns the new token.
    pub fn rerandomize(&mut self, entity: EntityId) -> SecretToken {
        let e = self.canonical(entity);
        let cfg = self.cfg;
        let token = SecretToken::random(&mut self.rng);
        self.generations += 1;
        let gen = self.generations;
        let st = self.entities.entry(e).or_insert_with(|| EntityState {
            token,
            monitor: EventMonitor::armed(&cfg),
            generation: gen,
        });
        st.token = token;
        st.monitor = EventMonitor::armed(&cfg);
        st.generation = gen;
        self.rerandomizations += 1;
        token
    }

    /// Records a misprediction event; re-randomizes and returns `true` when
    /// the counter hits zero.
    pub fn note_misprediction(&mut self, entity: EntityId) -> bool {
        let st = self.state(entity);
        st.monitor.misp_left = st.monitor.misp_left.saturating_sub(1);
        if st.monitor.misp_left == 0 {
            self.rerandomize(entity);
            true
        } else {
            false
        }
    }

    /// Records a TAGE-component misprediction. Uses the separate register
    /// when the model has one, otherwise falls through to the main MISP
    /// register.
    pub fn note_tage_misprediction(&mut self, entity: EntityId) -> bool {
        if !self.cfg.separate_tage_register {
            return self.note_misprediction(entity);
        }
        let st = self.state(entity);
        st.monitor.tage_misp_left = st.monitor.tage_misp_left.saturating_sub(1);
        if st.monitor.tage_misp_left == 0 {
            self.rerandomize(entity);
            true
        } else {
            false
        }
    }

    /// Records a BTB eviction event; re-randomizes and returns `true` when
    /// the counter hits zero.
    pub fn note_eviction(&mut self, entity: EntityId) -> bool {
        let st = self.state(entity);
        st.monitor.evictions_left = st.monitor.evictions_left.saturating_sub(1);
        if st.monitor.evictions_left == 0 {
            self.rerandomize(entity);
            true
        } else {
            false
        }
    }

    /// Total re-randomizations performed.
    pub fn rerandomizations(&self) -> u64 {
        self.rerandomizations
    }

    /// Serializes the DRNG state, every entity's token/monitor/generation,
    /// the alias table and the global counters for checkpointing. The
    /// configuration is construction-time state and is not stored.
    pub fn save_state(&self, w: &mut StateWriter) {
        for word in self.rng.state() {
            w.u64(word);
        }
        w.usize(self.entities.len());
        for (e, st) in &self.entities {
            w.u32(e.0);
            w.u64(st.token.raw());
            w.u64(st.monitor.misp_left);
            w.u64(st.monitor.tage_misp_left);
            w.u64(st.monitor.evictions_left);
            w.u64(st.generation);
        }
        w.usize(self.aliases.len());
        for (a, c) in &self.aliases {
            w.u32(a.0);
            w.u32(c.0);
        }
        w.u64(self.rerandomizations);
        w.u64(self.generations);
    }

    /// Restores state saved by [`TokenManager::save_state`] into a manager
    /// constructed with the same configuration and seed.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = r.u64()?;
        }
        self.rng = rand::rngs::StdRng::from_state(rng_state);
        let n = r.usize()?;
        self.entities = BTreeMap::new();
        for _ in 0..n {
            let e = EntityId(r.u32()?);
            let token = SecretToken::from_raw(r.u64()?);
            let monitor = EventMonitor {
                misp_left: r.u64()?,
                tage_misp_left: r.u64()?,
                evictions_left: r.u64()?,
            };
            let generation = r.u64()?;
            self.entities.insert(
                e,
                EntityState {
                    token,
                    monitor,
                    generation,
                },
            );
        }
        let na = r.usize()?;
        self.aliases = BTreeMap::new();
        for _ in 0..na {
            let a = EntityId(r.u32()?);
            let c = EntityId(r.u32()?);
            self.aliases.insert(a, c);
        }
        self.rerandomizations = r.u64()?;
        self.generations = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr_with_thresholds(misp: f64, ev: f64) -> TokenManager {
        let cfg = StConfig {
            r: 1.0,
            misp_complexity: misp,
            eviction_complexity: ev,
            separate_tage_register: false,
        };
        TokenManager::new(cfg, 42)
    }

    #[test]
    fn misp_counter_triggers_at_threshold() {
        let mut m = mgr_with_thresholds(3.0, 100.0);
        let e = EntityId::user(1);
        let t0 = m.token(e);
        assert!(!m.note_misprediction(e));
        assert!(!m.note_misprediction(e));
        assert!(m.note_misprediction(e), "third event hits the threshold");
        assert_ne!(m.token(e), t0);
        assert_eq!(m.rerandomizations(), 1);
        // Counters re-armed.
        assert_eq!(m.monitor(e).misp_left, 3);
    }

    #[test]
    fn eviction_counter_independent_of_misp() {
        let mut m = mgr_with_thresholds(100.0, 2.0);
        let e = EntityId::user(1);
        assert!(!m.note_misprediction(e));
        assert!(!m.note_eviction(e));
        assert!(m.note_eviction(e));
        assert_eq!(m.rerandomizations(), 1);
    }

    #[test]
    fn counters_are_per_entity_context() {
        let mut m = mgr_with_thresholds(2.0, 2.0);
        let a = EntityId::user(1);
        let b = EntityId::user(2);
        assert!(!m.note_misprediction(a));
        // B's events don't advance A's register.
        assert!(!m.note_misprediction(b));
        assert!(m.note_misprediction(a));
        assert_eq!(m.rerandomizations(), 1);
    }

    #[test]
    fn rerandomizing_one_entity_keeps_others() {
        let mut m = mgr_with_thresholds(1e9, 1e9);
        let a = EntityId::user(1);
        let b = EntityId::user(2);
        let tb = m.token(b);
        m.rerandomize(a);
        assert_eq!(m.token(b), tb, "other entities' tokens must survive");
    }

    #[test]
    fn shared_tokens_for_spawned_workers() {
        let mut m = mgr_with_thresholds(1e9, 1e9);
        let parent = EntityId::user(1);
        let worker = EntityId::user(7);
        m.share_token(worker, parent);
        assert_eq!(m.token(worker), m.token(parent));
        // Re-randomizing the parent moves the whole group.
        let t2 = m.rerandomize(parent);
        assert_eq!(m.token(worker), t2);
    }

    #[test]
    fn separate_tage_register_when_enabled() {
        let cfg = StConfig {
            r: 1.0,
            misp_complexity: 100.0,
            eviction_complexity: 100.0,
            separate_tage_register: true,
        };
        let mut m = TokenManager::new(cfg, 5);
        let e = EntityId::user(1);
        // TAGE mispredictions drain only the TAGE register...
        for _ in 0..99 {
            assert!(!m.note_tage_misprediction(e));
        }
        assert_eq!(m.monitor(e).misp_left, 100, "main register untouched");
        assert!(m.note_tage_misprediction(e));
    }

    #[test]
    fn without_separate_register_tage_events_hit_main() {
        let mut m = mgr_with_thresholds(2.0, 100.0);
        let e = EntityId::user(1);
        assert!(!m.note_tage_misprediction(e));
        assert!(m.note_tage_misprediction(e));
    }

    #[test]
    fn deterministic_across_seeds() {
        let mut a = TokenManager::new(StConfig::default(), 9);
        let mut b = TokenManager::new(StConfig::default(), 9);
        assert_eq!(a.token(EntityId::user(3)), b.token(EntityId::user(3)));
    }

    #[test]
    #[should_panic(expected = "cannot alias")]
    fn late_alias_rejected() {
        let mut m = mgr_with_thresholds(10.0, 10.0);
        let w = EntityId::user(5);
        let _ = m.token(w);
        m.share_token(w, EntityId::user(1));
    }
}

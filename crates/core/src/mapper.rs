//! The secret-token [`Mapper`]: keyed remapping + target encryption +
//! event monitoring, per hardware thread.

use crate::config::StConfig;
use crate::manager::TokenManager;
use crate::token::SecretToken;
use stbpu_bpu::{BtbCoord, EntityId, Mapper, SnapError, StateReader, StateWriter, MAX_THREADS};
use stbpu_remap::RemapSet;

/// The STBPU mapping policy: every structure address is produced by the
/// canonical remapping circuits R1..4,t,p keyed with ψ of the entity
/// currently running on the issuing hardware thread, and stored targets are
/// XOR-encrypted with that entity's φ (Section IV-B).
///
/// All remapping functions consume the *full 48-bit* branch address —
/// crucial for stopping same-address-space attacks \[78\].
///
/// ```
/// use stbpu_bpu::{EntityId, Mapper};
/// use stbpu_core::{StConfig, StMapper};
///
/// let mut m = StMapper::new(StConfig::default(), 7);
/// m.set_entity(0, EntityId::user(1));
/// let a = m.btb1(0, 0x40_0000);
/// m.set_entity(0, EntityId::user(2));
/// let b = m.btb1(0, 0x40_0000);
/// assert_ne!(a, b, "different entities map the same branch differently");
/// ```
#[derive(Debug)]
pub struct StMapper {
    remaps: &'static RemapSet,
    mgr: TokenManager,
    current: [EntityId; MAX_THREADS],
    token: [SecretToken; MAX_THREADS],
    generation: [u64; MAX_THREADS],
}

impl StMapper {
    /// Creates a mapper with its own token manager, seeded DRNG model and
    /// the process-wide canonical remap circuits.
    pub fn new(cfg: StConfig, seed: u64) -> Self {
        let mut mgr = TokenManager::new(cfg, seed);
        let default_entity = EntityId::user(0);
        let token = mgr.token(default_entity);
        let generation = mgr.generation(default_entity);
        StMapper {
            remaps: RemapSet::standard(),
            mgr,
            current: [default_entity; MAX_THREADS],
            token: [token; MAX_THREADS],
            generation: [generation; MAX_THREADS],
        }
    }

    /// The token manager (OS interface: sharing, forced re-randomization).
    pub fn manager_mut(&mut self) -> &mut TokenManager {
        &mut self.mgr
    }

    /// The entity currently loaded on `tid`.
    pub fn current_entity(&self, tid: usize) -> EntityId {
        self.current[tid.min(MAX_THREADS - 1)]
    }

    /// The active configuration.
    pub fn config(&self) -> &StConfig {
        self.mgr.config()
    }

    /// Forces a re-randomization of the entity on thread `tid` (used by
    /// tests and by the OS "sensitive process" policy with Γ = 1).
    pub fn force_rerandomize(&mut self, tid: usize) {
        let tid = tid.min(MAX_THREADS - 1);
        let e = self.current[tid];
        self.mgr.rerandomize(e);
        self.refresh(tid);
    }

    fn refresh(&mut self, tid: usize) {
        let e = self.current[tid];
        self.token[tid] = self.mgr.token(e);
        self.generation[tid] = self.mgr.generation(e);
        // Another thread may be running the same entity: its cached token
        // must follow the re-randomization.
        for t in 0..MAX_THREADS {
            if t != tid && self.current[t] == e {
                self.token[t] = self.token[tid];
                self.generation[t] = self.generation[tid];
            }
        }
    }

    fn psi(&self, tid: usize) -> u32 {
        self.token[tid.min(MAX_THREADS - 1)].psi()
    }
}

impl Mapper for StMapper {
    fn btb1(&self, tid: usize, pc: u64) -> BtbCoord {
        let (index, tag, offset) = self.remaps.r1(self.psi(tid), pc);
        BtbCoord { index, tag, offset }
    }

    fn btb2_tag(&self, tid: usize, bhb: u64) -> u64 {
        self.remaps.r2(self.psi(tid), bhb)
    }

    fn pht1(&self, tid: usize, pc: u64) -> usize {
        self.remaps.r3(self.psi(tid), pc)
    }

    fn pht2(&self, tid: usize, pc: u64, ghr: u64) -> usize {
        // R4 consumes 16 GHR bits (Table II).
        self.remaps.r4(self.psi(tid), (ghr & 0xffff) as u16, pc)
    }

    fn tage(
        &self,
        tid: usize,
        pc: u64,
        folded_idx: u64,
        folded_tag: u64,
        table: usize,
        idx_bits: u32,
        tag_bits: u32,
    ) -> (usize, u64) {
        // Mix the per-bank folded history and a bank constant into the
        // 16-bit auxiliary input of Rt, so each bank maps differently.
        let fold16 = (folded_idx ^ (folded_tag << 3) ^ ((table as u64).wrapping_mul(0x9e5))) as u16;
        let (idx, tag) = self.remaps.rt(self.psi(tid), pc, fold16);
        (
            (idx & ((1u64 << idx_bits) - 1)) as usize,
            tag & ((1u64 << tag_bits) - 1),
        )
    }

    fn perceptron(&self, tid: usize, pc: u64, idx_bits: u32) -> usize {
        self.remaps.rp(self.psi(tid), pc) & ((1usize << idx_bits) - 1)
    }

    fn encrypt_target(&self, tid: usize, stored: u32) -> u32 {
        self.token[tid.min(MAX_THREADS - 1)].encrypt(stored)
    }

    fn decrypt_target(&self, tid: usize, stored: u32) -> u32 {
        self.token[tid.min(MAX_THREADS - 1)].decrypt(stored)
    }

    fn set_entity(&mut self, tid: usize, entity: EntityId) {
        let tid = tid.min(MAX_THREADS - 1);
        self.current[tid] = entity;
        self.refresh(tid);
    }

    fn note_misprediction(&mut self, tid: usize) {
        let tid = tid.min(MAX_THREADS - 1);
        if self.mgr.note_misprediction(self.current[tid]) {
            self.refresh(tid);
        }
    }

    fn note_tage_misprediction(&mut self, tid: usize) {
        let tid = tid.min(MAX_THREADS - 1);
        if self.mgr.note_tage_misprediction(self.current[tid]) {
            self.refresh(tid);
        }
    }

    fn note_eviction(&mut self, tid: usize) {
        let tid = tid.min(MAX_THREADS - 1);
        if self.mgr.note_eviction(self.current[tid]) {
            self.refresh(tid);
        }
    }

    fn rerandomizations(&self) -> u64 {
        self.mgr.rerandomizations()
    }

    fn generation(&self, tid: usize) -> u64 {
        self.generation[tid.min(MAX_THREADS - 1)]
    }

    fn save_state(&self, w: &mut StateWriter) -> Result<(), SnapError> {
        // `remaps` is the process-wide canonical circuit set, identical in
        // every process — only the manager and per-thread caches are state.
        self.mgr.save_state(w);
        for t in 0..MAX_THREADS {
            w.u32(self.current[t].0);
            w.u64(self.token[t].raw());
            w.u64(self.generation[t]);
        }
        Ok(())
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.mgr.load_state(r)?;
        for t in 0..MAX_THREADS {
            self.current[t] = EntityId(r.u32()?);
            self.token[t] = SecretToken::from_raw(r.u64()?);
            self.generation[t] = r.u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapper() -> StMapper {
        StMapper::new(StConfig::default(), 1234)
    }

    #[test]
    fn mapping_is_stable_within_a_token() {
        let mut m = mapper();
        m.set_entity(0, EntityId::user(1));
        let a = m.btb1(0, 0x7fff_1234_5678);
        let b = m.btb1(0, 0x7fff_1234_5678);
        assert_eq!(a, b);
    }

    #[test]
    fn kernel_and_user_map_differently() {
        let mut m = mapper();
        m.set_entity(0, EntityId::user(1));
        let user = m.pht1(0, 0xffff_8000_1000);
        m.set_entity(0, EntityId::KERNEL);
        let kernel = m.pht1(0, 0xffff_8000_1000);
        assert_ne!(user, kernel, "jump-over-ASLR collisions must be gone");
    }

    #[test]
    fn rerandomization_changes_all_mappings() {
        let mut m = mapper();
        m.set_entity(0, EntityId::user(1));
        let pc = 0x40_0000u64;
        let before = (
            m.btb1(0, pc),
            m.pht1(0, pc),
            m.pht2(0, pc, 0xabcd),
            m.tage(0, pc, 5, 9, 3, 10, 8),
            m.perceptron(0, pc, 10),
        );
        m.force_rerandomize(0);
        let after = (
            m.btb1(0, pc),
            m.pht1(0, pc),
            m.pht2(0, pc, 0xabcd),
            m.tage(0, pc, 5, 9, 3, 10, 8),
            m.perceptron(0, pc, 10),
        );
        assert_ne!(before, after);
        assert_eq!(m.rerandomizations(), 1);
    }

    #[test]
    fn generation_tracks_token_changes() {
        let mut m = mapper();
        m.set_entity(0, EntityId::user(1));
        let g0 = m.generation(0);
        m.force_rerandomize(0);
        assert_ne!(m.generation(0), g0);
    }

    #[test]
    fn smt_threads_hold_independent_tokens() {
        let mut m = mapper();
        m.set_entity(0, EntityId::user(1));
        m.set_entity(1, EntityId::user(2));
        let pc = 0x41_0000u64;
        assert_ne!(m.btb1(0, pc), m.btb1(1, pc));
        // Encryption keys differ too: cross-thread target reuse garbles.
        let stored = m.encrypt_target(0, 0x1234_5678);
        assert_ne!(m.decrypt_target(1, stored), 0x1234_5678);
        assert_eq!(m.decrypt_target(0, stored), 0x1234_5678);
    }

    #[test]
    fn same_entity_on_both_threads_shares_token() {
        let mut m = mapper();
        m.set_entity(0, EntityId::user(1));
        m.set_entity(1, EntityId::user(1));
        let pc = 0x42_0000u64;
        assert_eq!(m.btb1(0, pc), m.btb1(1, pc));
        // A re-randomization triggered via thread 0 must be visible on
        // thread 1 immediately.
        m.force_rerandomize(0);
        assert_eq!(m.btb1(0, pc), m.btb1(1, pc));
    }

    #[test]
    fn monitoring_events_route_to_current_entity() {
        let cfg = StConfig {
            r: 1.0,
            misp_complexity: 2.0,
            eviction_complexity: 1e9,
            separate_tage_register: false,
        };
        let mut m = StMapper::new(cfg, 5);
        m.set_entity(0, EntityId::user(1));
        let before = m.btb1(0, 0x1000);
        m.note_misprediction(0);
        assert_eq!(m.btb1(0, 0x1000), before, "one event below threshold");
        m.note_misprediction(0);
        assert_ne!(m.btb1(0, 0x1000), before, "threshold reached: new token");
    }
}

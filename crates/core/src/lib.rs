//! STBPU — the Secret-Token Branch Prediction Unit (Section IV of the
//! paper). This crate is the primary contribution of the reproduction.
//!
//! Each software entity requiring isolation is assigned a 64-bit **secret
//! token** ([`SecretToken`]) split into two 32-bit halves: ψ keys the
//! remapping functions R1..4,t,p (how branch addresses map into BPU
//! structures) and φ XOR-encrypts targets stored in the BTB and RSB. Only
//! privileged software can read or load the token registers; the OS loads
//! the appropriate token on context and mode switches ([`TokenManager`]).
//!
//! To stop brute-force collision construction, STBPU monitors
//! prediction-related hardware events — branch mispredictions and BTB
//! evictions — in model-specific registers ([`EventMonitor`]); when a
//! counter reaches zero the current entity's token is re-randomized, which
//! instantly turns all of its stored BPU state into garbage while leaving
//! other entities' state intact (the key difference from flushing).
//! Thresholds derive from the Section VI security analysis via the attack
//! difficulty factor `r` ([`StConfig`]): Γ = r · C.
//!
//! [`StMapper`] packages tokens + monitors + the canonical remap circuits
//! as a [`stbpu_bpu::Mapper`], so every predictor model from
//! `stbpu-predictors` becomes its ST_* variant by construction:
//!
//! ```
//! use stbpu_bpu::{BranchRecord, Bpu};
//! use stbpu_core::{st_skl, StConfig};
//!
//! let mut bpu = st_skl(StConfig::default(), 42);
//! for _ in 0..8 {
//!     bpu.process(0, &BranchRecord::conditional(0x40_0000, true, 0x40_1000));
//! }
//! let out = bpu.process(0, &BranchRecord::conditional(0x40_0000, true, 0x40_1000));
//! assert!(out.effective_correct, "STBPU predicts as well as baseline within an entity");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod manager;
mod mapper;
mod token;

pub use config::StConfig;
pub use manager::{EventMonitor, TokenManager};
pub use mapper::StMapper;
pub use token::SecretToken;

use stbpu_bpu::BtbConfig;
use stbpu_predictors::{
    FullBpu, IttageConfig, PerceptronConfig, PerceptronPredictor, SklCond, Tage, TageConfig,
};

/// ST_SKLCond: the Skylake-like baseline model protected by secret tokens.
///
/// Note this model has *no* separate TAGE threshold register
/// (Section VII-B2) — all direction mispredictions hit the main MISP
/// register, which is why it re-randomizes more often in SMT mode.
pub fn st_skl(cfg: StConfig, seed: u64) -> FullBpu<SklCond, StMapper> {
    let cfg = StConfig {
        separate_tage_register: false,
        ..cfg
    };
    FullBpu::new(
        "ST_SKLCond",
        SklCond::new(),
        StMapper::new(cfg, seed),
        BtbConfig::skylake(),
        false,
    )
}

/// ST TAGE-SC-L 64 KB (separate TAGE-misprediction threshold register).
pub fn st_tage64(cfg: StConfig, seed: u64) -> FullBpu<Tage, StMapper> {
    let cfg = StConfig {
        separate_tage_register: true,
        ..cfg
    };
    FullBpu::new(
        "ST_TAGE_SC_L_64KB",
        Tage::new(TageConfig::kb64()),
        StMapper::new(cfg, seed),
        BtbConfig::skylake(),
        false,
    )
}

/// ST TAGE-SC-L 8 KB (separate TAGE-misprediction threshold register).
pub fn st_tage8(cfg: StConfig, seed: u64) -> FullBpu<Tage, StMapper> {
    let cfg = StConfig {
        separate_tage_register: true,
        ..cfg
    };
    FullBpu::new(
        "ST_TAGE_SC_L_8KB",
        Tage::new(TageConfig::kb8()),
        StMapper::new(cfg, seed),
        BtbConfig::skylake(),
        false,
    )
}

/// ST championship-class model: TAGE-SC-L 64 KB directions plus an ITTAGE
/// indirect-target stage, both remapped through the secret token (ITTAGE
/// banks start at `ITTAGE_BANK_BASE`, disjoint from the direction banks).
pub fn st_tagescl(cfg: StConfig, seed: u64) -> FullBpu<Tage, StMapper> {
    let cfg = StConfig {
        separate_tage_register: true,
        ..cfg
    };
    FullBpu::with_ittage(
        "ST_TAGE_SC_L_ITTAGE",
        Tage::new(TageConfig::kb64()),
        StMapper::new(cfg, seed),
        BtbConfig::skylake(),
        false,
        IttageConfig::default_tables(),
    )
}

/// ST ITTAGE ablation model: the Skylake-like conditional predictor with
/// only the indirect-target stage upgraded, under secret-token remapping.
pub fn st_ittage(cfg: StConfig, seed: u64) -> FullBpu<SklCond, StMapper> {
    let cfg = StConfig {
        separate_tage_register: false,
        ..cfg
    };
    FullBpu::with_ittage(
        "ST_ITTAGE",
        SklCond::new(),
        StMapper::new(cfg, seed),
        BtbConfig::skylake(),
        false,
        IttageConfig::default_tables(),
    )
}

/// ST perceptron model.
pub fn st_perceptron(cfg: StConfig, seed: u64) -> FullBpu<PerceptronPredictor, StMapper> {
    FullBpu::new(
        "ST_PerceptronBP",
        PerceptronPredictor::new(PerceptronConfig::default()),
        StMapper::new(cfg, seed),
        BtbConfig::skylake(),
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_bpu::{Bpu, BranchKind, BranchRecord, EntityId};

    #[test]
    fn st_models_learn_within_an_entity() {
        let mut models: Vec<Box<dyn Bpu>> = vec![
            Box::new(st_skl(StConfig::default(), 1)),
            Box::new(st_tage8(StConfig::default(), 1)),
            Box::new(st_perceptron(StConfig::default(), 1)),
        ];
        for m in &mut models {
            for i in 0..200u64 {
                let taken = i % 5 != 4;
                m.process(0, &BranchRecord::conditional(0x40_0000, taken, 0x40_2000));
            }
            assert!(
                m.stats().oae() > 0.7,
                "{} failed to learn: {}",
                m.name(),
                m.stats().oae()
            );
            assert_eq!(m.rerandomizations(), 0, "no attack, no re-randomization");
        }
    }

    #[test]
    fn context_switch_isolates_entities_without_flush() {
        // Entity A trains a branch; entity B runs; switching back to A, the
        // history is still there — the paper's central performance claim.
        let mut bpu = st_skl(StConfig::default(), 7);
        let rec = BranchRecord::taken(0x40_0000, BranchKind::DirectJump, 0x41_0000);
        bpu.context_switch(0, EntityId::user(1));
        bpu.process(0, &rec);
        assert!(bpu.process(0, &rec).effective_correct);

        bpu.context_switch(0, EntityId::user(2));
        // B misses on the same address (different ψ) ...
        let out_b = bpu.process(0, &rec);
        assert!(
            !out_b.effective_correct,
            "entity B must not reuse A's BTB entry"
        );

        bpu.context_switch(0, EntityId::user(1));
        // ... while A's entry survived B entirely.
        assert!(bpu.process(0, &rec).effective_correct);
    }

    #[test]
    fn forced_rerandomization_invalidates_history() {
        let mut bpu = st_skl(StConfig::default(), 3);
        bpu.context_switch(0, EntityId::user(1));
        let rec = BranchRecord::taken(0x40_0000, BranchKind::DirectJump, 0x41_0000);
        bpu.process(0, &rec);
        assert!(bpu.process(0, &rec).effective_correct);
        bpu.mapper_mut().force_rerandomize(0);
        let out = bpu.process(0, &rec);
        assert!(
            !out.effective_correct,
            "old mapping must be unusable after ST change"
        );
        assert_eq!(bpu.rerandomizations(), 1);
    }

    #[test]
    fn tiny_thresholds_trigger_rerandomization() {
        // r so small the threshold is a handful of events: mispredictions
        // from a random pattern must trigger token churn.
        let cfg = StConfig::with_r(1e-5); // misp threshold ≈ 8 events
        let mut bpu = st_skl(cfg, 11);
        for i in 0..4000u64 {
            let taken = (i * 2654435761) % 7 < 3; // noisy pattern
            bpu.process(
                0,
                &BranchRecord::conditional(0x40_0000 + (i % 16) * 64, taken, 0x5000),
            );
        }
        assert!(
            bpu.rerandomizations() > 10,
            "expected many re-randomizations, got {}",
            bpu.rerandomizations()
        );
    }
}

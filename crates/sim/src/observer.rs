//! Observer hooks for the incremental simulator.
//!
//! A [`SimObserver`] attaches to a [`crate::SimSession`] and is notified of
//! the events attack instrumentation and accuracy-over-time analyses care
//! about — retired branches with their prediction outcome, policy flushes,
//! context switches, secret-token re-randomizations, and (when the session
//! is configured with an interval) fixed-size statistics windows. This is
//! the seam that lets conflict-visibility studies observe flushes,
//! evictions and re-randomizations without hand-rolling a simulation loop.

use stbpu_bpu::{BranchOutcome, BranchRecord, EntityId};

/// What kind of invalidation a protection policy performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushKind {
    /// IBPB-style full flush (all prediction state).
    Full,
    /// IBRS-style target flush (BTB/RSB only, direction history survives).
    Targets,
}

/// Fixed-size statistics window emitted by a session configured with
/// [`crate::SessionOptions::interval`] — the OAE-over-time unit.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IntervalWindow {
    /// Index of the first branch of the window (0-based, counting every
    /// branch fed to the session, warm-up included).
    pub start_branch: u64,
    /// Branches retired inside the window.
    pub branches: u64,
    /// Branches whose every necessary prediction was correct (OAE
    /// numerator).
    pub effective_correct: u64,
    /// Mispredictions inside the window.
    pub mispredictions: u64,
    /// Policy flushes inside the window.
    pub flushes: u64,
    /// Secret-token re-randomizations inside the window.
    pub rerandomizations: u64,
}

impl IntervalWindow {
    /// Overall accuracy effective over this window.
    pub fn oae(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.effective_correct as f64 / self.branches as f64
        }
    }
}

/// Hooks invoked by a [`crate::SimSession`] as the stream is consumed.
/// Every method has an empty default body — implement only what the
/// instrumentation needs.
pub trait SimObserver {
    /// One branch retired on `tid` with the model's prediction `outcome`.
    fn on_branch(&mut self, tid: usize, rec: &BranchRecord, outcome: &BranchOutcome) {
        let _ = (tid, rec, outcome);
    }

    /// The protection policy invalidated prediction state.
    fn on_flush(&mut self, kind: FlushKind) {
        let _ = kind;
    }

    /// The scheduler switched `tid` to `entity` (kernel entries/exits are
    /// reported too, with [`EntityId::KERNEL`] / the saved user entity).
    fn on_context_switch(&mut self, tid: usize, entity: EntityId) {
        let _ = (tid, entity);
    }

    /// The model re-randomized its secret tokens (`total` is the running
    /// count since model construction).
    fn on_rerandomize(&mut self, total: u64) {
        let _ = total;
    }

    /// A statistics window closed (only fired when the session is
    /// configured with an interval).
    fn on_interval(&mut self, window: &IntervalWindow) {
        let _ = window;
    }
}

/// Built-in observer collecting every [`IntervalWindow`] a session emits —
/// the OAE-over-time series of a run.
///
/// ```
/// use stbpu_predictors::skl_baseline;
/// use stbpu_sim::{IntervalRecorder, Protection, SessionOptions, SimSession, Warmup};
/// use stbpu_trace::{TraceGenerator, WorkloadProfile};
///
/// let mut model = skl_baseline();
/// let mut rec = IntervalRecorder::new();
/// let mut session = SimSession::new(
///     &mut model,
///     Protection::Unprotected,
///     SessionOptions {
///         warmup: Warmup::Branches(0),
///         interval: Some(1_000),
///         ..SessionOptions::default()
///     },
/// )
/// .unwrap();
/// session.attach(&mut rec);
/// let mut src = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).into_source(4_000);
/// session.run(&mut src).unwrap();
/// let report = session.finish();
/// assert_eq!(rec.windows().len(), 4);
/// assert!(rec.windows().iter().all(|w| w.branches == 1_000));
/// assert_eq!(report.branches, 4_000);
/// ```
#[derive(Clone, Debug, Default)]
pub struct IntervalRecorder {
    windows: Vec<IntervalWindow>,
}

impl IntervalRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        IntervalRecorder::default()
    }

    /// The windows recorded so far, in stream order.
    pub fn windows(&self) -> &[IntervalWindow] {
        &self.windows
    }

    /// Consumes the recorder, returning the window series.
    pub fn into_windows(self) -> Vec<IntervalWindow> {
        self.windows
    }

    /// OAE of each window, in stream order.
    pub fn oae_series(&self) -> Vec<f64> {
        self.windows.iter().map(IntervalWindow::oae).collect()
    }
}

impl SimObserver for IntervalRecorder {
    fn on_interval(&mut self, window: &IntervalWindow) {
        self.windows.push(*window);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_oae() {
        let w = IntervalWindow {
            start_branch: 0,
            branches: 10,
            effective_correct: 9,
            ..IntervalWindow::default()
        };
        assert!((w.oae() - 0.9).abs() < 1e-12);
        assert_eq!(IntervalWindow::default().oae(), 0.0);
    }

    #[test]
    fn default_observer_methods_are_noops() {
        struct Nop;
        impl SimObserver for Nop {}
        let mut n = Nop;
        n.on_flush(FlushKind::Full);
        n.on_rerandomize(3);
        n.on_context_switch(0, EntityId::user(1));
        n.on_interval(&IntervalWindow::default());
    }
}

//! Trace-driven BPU simulation with protection policies (Section VII-B1).
//!
//! The simulator feeds a [`stbpu_trace::Trace`] through a complete
//! [`Bpu`] model while applying one of the paper's five protection schemes
//! ([`Protection`]):
//!
//! * **Unprotected** — the shared, never-flushed baseline.
//! * **Stbpu** — secret-token isolation: context/mode switches only swap
//!   tokens; nothing is flushed.
//! * **Ucode1** — IBPB + IBRS modelled as full BPU flushes on context
//!   switches and on kernel entries.
//! * **Ucode2** — Ucode1 plus STIBP: static partitioning of shared
//!   structures between the two logical threads.
//! * **Conservative** — full 48-bit tags/targets in a half-capacity BTB
//!   plus flushing and partitioning: prevents every known collision attack
//!   at a steep cost (Section VII-B1).
//!
//! The headline metric is OAE — overall accuracy effective (all necessary
//! predictions correct).
//!
//! Model *selection* does not live here: any [`stbpu_bpu::Bpu`] can be
//! simulated, and the `stbpu-engine` crate provides the string-named model
//! registry (`ModelRegistry`) and the declarative `Experiment`/`Scenario`
//! builder that replaced this crate's old closed [`ModelKind`] enum.
//!
//! # Example
//!
//! ```
//! use stbpu_predictors::skl_baseline;
//! use stbpu_sim::{simulate, Protection};
//! use stbpu_trace::{TraceGenerator, WorkloadProfile};
//!
//! let trace = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).generate(4000);
//! let mut model = skl_baseline();
//! let report = simulate(&mut model, Protection::Unprotected, &trace, 0.1);
//! assert!(report.oae > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use stbpu_bpu::{Bpu, EntityId};
use stbpu_core::{st_skl, StConfig};
use stbpu_predictors::{conservative, skl_baseline};
use stbpu_trace::{Trace, TraceEvent};

/// Which protection scheme the simulator enforces around the model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Protection {
    /// Shared BPU, never flushed (the vulnerable baseline).
    Unprotected,
    /// STBPU: secret-token switching, no flushes.
    Stbpu,
    /// µcode protection 1: IBPB (flush on context switch) + IBRS (flush on
    /// kernel entry).
    Ucode1,
    /// µcode protection 2: Ucode1 + STIBP (thread partitioning).
    Ucode2,
    /// Conservative full-tag model: flushes + partitioning on top of
    /// aliasing-free storage.
    Conservative,
}

impl Protection {
    /// IBPB: full flush when the scheduler switches processes.
    fn flushes_on_context_switch(self) -> bool {
        matches!(
            self,
            Protection::Ucode1 | Protection::Ucode2 | Protection::Conservative
        )
    }

    /// IBRS: indirect-prediction (BTB/RSB) flush on kernel entry. The
    /// conservative model is exempt: its full 48-bit tags already keep
    /// kernel and user branches apart (they live at disjoint addresses).
    fn flushes_targets_on_kernel_entry(self) -> bool {
        matches!(self, Protection::Ucode1 | Protection::Ucode2)
    }

    fn partitions(self) -> bool {
        matches!(self, Protection::Ucode2 | Protection::Conservative)
    }

    /// Display name matching Figure 3's legend.
    pub fn label(self) -> &'static str {
        match self {
            Protection::Unprotected => "baseline",
            Protection::Stbpu => "STBPU",
            Protection::Ucode1 => "ucode protection",
            Protection::Ucode2 => "ucode protection2",
            Protection::Conservative => "conservative",
        }
    }
}

/// Model selector for the Figure 3 evaluation (all five schemes run the
/// same SKL-style predictor underneath).
#[deprecated(
    since = "0.2.0",
    note = "closed enum superseded by the open `stbpu_engine::ModelRegistry` (string-named \
            predictor × mapper × BTB compositions)"
)]
#[derive(Clone, Copy, Debug)]
pub enum ModelKind {
    /// Unprotected Skylake-like baseline.
    Baseline,
    /// Secret-token model with difficulty factor `r`.
    Stbpu {
        /// Attack difficulty factor (Section VII-A; 0.05 default).
        r: f64,
    },
    /// Baseline model used under µcode flushing policies.
    Ucode,
    /// Conservative full-tag model.
    Conservative,
}

/// Builds the model for a [`ModelKind`].
#[deprecated(
    since = "0.2.0",
    note = "use `stbpu_engine::ModelRegistry::standard().build(name, seed)` instead"
)]
#[allow(deprecated)]
pub fn build_model(kind: ModelKind, seed: u64) -> Box<dyn Bpu> {
    match kind {
        ModelKind::Baseline | ModelKind::Ucode => Box::new(skl_baseline()),
        ModelKind::Stbpu { r } => Box::new(st_skl(StConfig::with_r(r), seed)),
        ModelKind::Conservative => Box::new(conservative()),
    }
}

/// The five (kind, policy) combinations of Figure 3, in legend order.
#[deprecated(since = "0.2.0", note = "use `stbpu_engine::Scenario::fig3()` instead")]
#[allow(deprecated)]
pub fn fig3_schemes() -> [(ModelKind, Protection); 5] {
    [
        (ModelKind::Baseline, Protection::Unprotected),
        (ModelKind::Stbpu { r: 0.05 }, Protection::Stbpu),
        (ModelKind::Ucode, Protection::Ucode1),
        (ModelKind::Ucode, Protection::Ucode2),
        (ModelKind::Conservative, Protection::Conservative),
    ]
}

/// Aggregated result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Model name.
    pub model: String,
    /// Protection policy label.
    pub protection: &'static str,
    /// Workload name.
    pub workload: String,
    /// Overall accuracy effective.
    pub oae: f64,
    /// Direction prediction rate (conditionals).
    pub direction_rate: f64,
    /// Target prediction rate (taken branches).
    pub target_rate: f64,
    /// Branches measured (after warm-up).
    pub branches: u64,
    /// Mispredictions.
    pub mispredictions: u64,
    /// BTB evictions.
    pub evictions: u64,
    /// Full flushes performed by the policy.
    pub flushes: u64,
    /// Secret-token re-randomizations.
    pub rerandomizations: u64,
}

/// Options for [`simulate_with`].
#[derive(Clone, Copy, Debug)]
pub struct SimOptions {
    /// Fraction of branch events that warm the structures without counting
    /// toward statistics. Must be within `[0, 1)`.
    pub warmup_frac: f64,
    /// Number of hardware threads to provision per-thread context for.
    /// `None` derives it from the trace ([`Trace::thread_count`]). Every
    /// event's `tid` is validated against this, replacing the old silent
    /// two-thread `tid & 1` wrap-around.
    pub threads: Option<usize>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            warmup_frac: 0.1,
            threads: None,
        }
    }
}

/// Why a simulation could not run.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// `warmup_frac` outside `[0, 1)`.
    WarmupOutOfRange(f64),
    /// More threads requested than models support ([`stbpu_bpu::MAX_THREADS`]).
    TooManyThreads {
        /// Threads requested.
        requested: usize,
        /// Hard model limit.
        max: usize,
    },
    /// A trace event carries a `tid` outside the provisioned thread count.
    ThreadOutOfRange {
        /// Offending thread id.
        tid: usize,
        /// Provisioned thread count.
        threads: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SimError::WarmupOutOfRange(v) => {
                write!(f, "warm-up fraction out of range: {v} not in [0, 1)")
            }
            SimError::TooManyThreads { requested, max } => {
                write!(
                    f,
                    "{requested} threads requested but models support at most {max}"
                )
            }
            SimError::ThreadOutOfRange { tid, threads } => {
                write!(
                    f,
                    "trace event on thread {tid} but only {threads} threads provisioned"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Runs `model` under `policy` over `trace` with explicit [`SimOptions`].
///
/// The thread count is taken from `opts.threads` (or derived from the
/// trace) and validated against both the model limit and every event —
/// a trace that names a thread outside the provisioned range is rejected
/// instead of being silently folded onto two threads.
pub fn simulate_with(
    model: &mut dyn Bpu,
    policy: Protection,
    trace: &Trace,
    opts: &SimOptions,
) -> Result<SimReport, SimError> {
    if !(0.0..1.0).contains(&opts.warmup_frac) {
        return Err(SimError::WarmupOutOfRange(opts.warmup_frac));
    }
    let threads = opts.threads.unwrap_or_else(|| trace.thread_count()).max(1);
    if threads > stbpu_bpu::MAX_THREADS {
        return Err(SimError::TooManyThreads {
            requested: threads,
            max: stbpu_bpu::MAX_THREADS,
        });
    }
    let check = |tid: u8| -> Result<usize, SimError> {
        let tid = tid as usize;
        if tid < threads {
            Ok(tid)
        } else {
            Err(SimError::ThreadOutOfRange { tid, threads })
        }
    };

    let warmup = (trace.branch_count() as f64 * opts.warmup_frac) as usize;
    model.set_partitioned(policy.partitions());

    // Per-thread context: the user entity to return to after kernel exits.
    let mut user_entity = vec![EntityId::user(0); threads];
    let mut seen = 0usize;
    let mut warmed = warmup == 0;

    for ev in &trace.events {
        match *ev {
            TraceEvent::Branch { tid, ref rec } => {
                model.process(check(tid)?, rec);
                seen += 1;
                if !warmed && seen >= warmup {
                    model.reset_stats();
                    warmed = true;
                }
            }
            TraceEvent::ContextSwitch { tid, entity } => {
                let tid = check(tid)?;
                user_entity[tid] = entity;
                model.context_switch(tid, entity);
                if policy.flushes_on_context_switch() {
                    model.flush(); // IBPB
                }
            }
            TraceEvent::ModeSwitch { tid, kernel } => {
                let tid = check(tid)?;
                if kernel {
                    model.context_switch(tid, EntityId::KERNEL);
                    if policy.flushes_targets_on_kernel_entry() {
                        model.flush_targets(); // IBRS: no user-placed targets in kernel
                    }
                } else {
                    model.context_switch(tid, user_entity[tid]);
                }
            }
            TraceEvent::Interrupt { tid } => {
                // Delivery itself is free; the kernel excursion follows as
                // ModeSwitch events.
                check(tid)?;
            }
        }
    }

    let s = model.stats();
    Ok(SimReport {
        model: model.name(),
        protection: policy.label(),
        workload: trace.name.clone(),
        oae: s.oae(),
        direction_rate: s.direction_rate(),
        target_rate: s.target_rate(),
        branches: s.branches,
        mispredictions: s.mispredictions,
        evictions: s.btb_evictions,
        flushes: s.flushes,
        rerandomizations: model.rerandomizations(),
    })
}

/// Runs `model` under `policy` over `trace`; the first `warmup_frac` of
/// branch events warm the structures without counting toward statistics.
/// Thread count is derived from the trace — use [`simulate_with`] to
/// control it explicitly.
///
/// # Panics
///
/// Panics if `warmup_frac` is not within `[0, 1)` or the trace names a
/// thread models cannot support.
pub fn simulate(
    model: &mut dyn Bpu,
    policy: Protection,
    trace: &Trace,
    warmup_frac: f64,
) -> SimReport {
    simulate_with(
        model,
        policy,
        trace,
        &SimOptions {
            warmup_frac,
            threads: None,
        },
    )
    .unwrap_or_else(|e| panic!("{e}"))
}

/// Convenience: run all five Figure 3 schemes over one trace and return the
/// reports in legend order.
#[deprecated(
    since = "0.2.0",
    note = "use `stbpu_engine::run_scenarios(&registry, &trace, &Scenario::fig3(), seed, warmup)` \
            or the `Experiment` builder instead"
)]
#[allow(deprecated)]
pub fn run_fig3_suite(trace: &Trace, seed: u64, warmup: f64) -> Vec<SimReport> {
    fig3_schemes()
        .into_iter()
        .map(|(kind, policy)| {
            let mut model = build_model(kind, seed);
            simulate(model.as_mut(), policy, trace, warmup)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    // The deprecated ModelKind/build_model/run_fig3_suite shims stay
    // exercised here until they are removed.
    #![allow(deprecated)]

    use super::*;
    use stbpu_trace::{profiles, TraceGenerator, WorkloadProfile};

    fn trace_for(name: &str, branches: usize) -> Trace {
        trace_for_seeded(name, branches, 42)
    }

    fn trace_for_seeded(name: &str, branches: usize, seed: u64) -> Trace {
        TraceGenerator::new(profiles::by_name(name).unwrap(), seed).generate(branches)
    }

    #[test]
    fn baseline_accuracy_in_published_range_for_spec() {
        // Predictable FP workload: baseline OAE must be high.
        let t = trace_for_seeded("519.lbm", 30_000, 1);
        let mut m = build_model(ModelKind::Baseline, 1);
        let r = simulate(m.as_mut(), Protection::Unprotected, &t, 0.2);
        assert!(r.oae > 0.93, "lbm baseline OAE {}", r.oae);

        // Hard integer workload: noticeably lower but still decent.
        let t = trace_for_seeded("541.leela", 30_000, 1);
        let mut m = build_model(ModelKind::Baseline, 1);
        let r2 = simulate(m.as_mut(), Protection::Unprotected, &t, 0.2);
        assert!(
            r2.oae > 0.75 && r2.oae < 0.99,
            "leela baseline OAE {}",
            r2.oae
        );
        assert!(r.oae > r2.oae, "lbm must beat leela");
    }

    #[test]
    fn stbpu_close_to_baseline_on_spec() {
        let t = trace_for("525.x264", 25_000);
        let mut base = build_model(ModelKind::Baseline, 1);
        let rb = simulate(base.as_mut(), Protection::Unprotected, &t, 0.2);
        let mut st = build_model(ModelKind::Stbpu { r: 0.05 }, 1);
        let rs = simulate(st.as_mut(), Protection::Stbpu, &t, 0.2);
        assert!(
            rs.oae > rb.oae - 0.05,
            "STBPU ({}) must track baseline ({})",
            rs.oae,
            rb.oae
        );
    }

    #[test]
    fn ucode_flushing_hurts_switch_heavy_workloads() {
        let t = trace_for("apache2_prefork_c256", 30_000);
        let suite = run_fig3_suite(&t, 7, 0.1);
        let base = suite[0].oae;
        let stbpu = suite[1].oae;
        let ucode1 = suite[2].oae;
        assert!(
            ucode1 < base - 0.03,
            "flushing must cost accuracy on apache: base {base}, ucode {ucode1}"
        );
        assert!(
            stbpu > ucode1,
            "STBPU ({stbpu}) must beat microcode flushing ({ucode1})"
        );
        assert!(suite[2].flushes > 100, "apache must trigger many flushes");
    }

    #[test]
    fn stbpu_does_not_flush() {
        let t = trace_for("mysql_64con_50s", 15_000);
        let suite = run_fig3_suite(&t, 3, 0.1);
        assert_eq!(suite[1].flushes, 0, "STBPU never flushes");
        assert_eq!(suite[0].flushes, 0, "baseline never flushes");
        assert!(suite[2].flushes > 0);
    }

    #[test]
    fn partitioning_makes_ucode2_at_most_ucode1() {
        let t = trace_for("chrome-1jetstream", 25_000);
        let suite = run_fig3_suite(&t, 3, 0.1);
        let (u1, u2) = (suite[2].oae, suite[3].oae);
        assert!(
            u2 <= u1 + 0.02,
            "STIBP partitioning should not help: u1 {u1}, u2 {u2}"
        );
    }

    #[test]
    fn warmup_zero_counts_everything() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).generate(100);
        let mut m = build_model(ModelKind::Baseline, 1);
        let r = simulate(m.as_mut(), Protection::Unprotected, &t, 0.0);
        assert_eq!(r.branches, 100);
    }

    #[test]
    #[should_panic(expected = "warm-up fraction")]
    fn bad_warmup_rejected() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).generate(10);
        let mut m = build_model(ModelKind::Baseline, 1);
        let _ = simulate(m.as_mut(), Protection::Unprotected, &t, 1.0);
    }

    #[test]
    fn thread_count_derived_and_validated() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).generate(500);
        assert_eq!(t.thread_count(), 1, "test profile is single-threaded");
        let mut m = skl_baseline();
        let opts = SimOptions {
            warmup_frac: 0.0,
            threads: None,
        };
        let r = simulate_with(&mut m, Protection::Unprotected, &t, &opts).unwrap();
        assert_eq!(r.branches, 500);
    }

    #[test]
    fn event_tid_outside_provisioned_threads_rejected() {
        use stbpu_bpu::BranchRecord;
        let mut t = Trace::new("bad");
        t.events.push(TraceEvent::Branch {
            tid: 1,
            rec: BranchRecord::conditional(0x4000, true, 0x4100),
        });
        let mut m = skl_baseline();
        let opts = SimOptions {
            warmup_frac: 0.0,
            threads: Some(1),
        };
        let err = simulate_with(&mut m, Protection::Unprotected, &t, &opts).unwrap_err();
        assert_eq!(err, SimError::ThreadOutOfRange { tid: 1, threads: 1 });
    }

    #[test]
    fn more_threads_than_models_support_rejected() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).generate(10);
        let mut m = skl_baseline();
        let opts = SimOptions {
            warmup_frac: 0.0,
            threads: Some(9),
        };
        let err = simulate_with(&mut m, Protection::Unprotected, &t, &opts).unwrap_err();
        assert!(matches!(err, SimError::TooManyThreads { requested: 9, .. }));
    }
}

//! Trace-driven BPU simulation with protection policies (Section VII-B1).
//!
//! The simulator feeds a [`stbpu_trace::Trace`] through a complete
//! [`Bpu`] model while applying one of the paper's five protection schemes
//! ([`Protection`]):
//!
//! * **Unprotected** — the shared, never-flushed baseline.
//! * **Stbpu** — secret-token isolation: context/mode switches only swap
//!   tokens; nothing is flushed.
//! * **Ucode1** — IBPB + IBRS modelled as full BPU flushes on context
//!   switches and on kernel entries.
//! * **Ucode2** — Ucode1 plus STIBP: static partitioning of shared
//!   structures between the two logical threads.
//! * **Conservative** — full 48-bit tags/targets in a half-capacity BTB
//!   plus flushing and partitioning: prevents every known collision attack
//!   at a steep cost (Section VII-B1).
//!
//! The headline metric is OAE — overall accuracy effective (all necessary
//! predictions correct).
//!
//! # Example
//!
//! ```
//! use stbpu_sim::{build_model, simulate, ModelKind, Protection};
//! use stbpu_trace::{TraceGenerator, WorkloadProfile};
//!
//! let trace = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).generate(4000);
//! let mut model = build_model(ModelKind::Baseline, 1);
//! let report = simulate(model.as_mut(), Protection::Unprotected, &trace, 0.1);
//! assert!(report.oae > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use stbpu_bpu::{Bpu, EntityId};
use stbpu_core::{st_skl, StConfig};
use stbpu_predictors::{conservative, skl_baseline};
use stbpu_trace::{Trace, TraceEvent};

/// Which protection scheme the simulator enforces around the model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Protection {
    /// Shared BPU, never flushed (the vulnerable baseline).
    Unprotected,
    /// STBPU: secret-token switching, no flushes.
    Stbpu,
    /// µcode protection 1: IBPB (flush on context switch) + IBRS (flush on
    /// kernel entry).
    Ucode1,
    /// µcode protection 2: Ucode1 + STIBP (thread partitioning).
    Ucode2,
    /// Conservative full-tag model: flushes + partitioning on top of
    /// aliasing-free storage.
    Conservative,
}

impl Protection {
    /// IBPB: full flush when the scheduler switches processes.
    fn flushes_on_context_switch(self) -> bool {
        matches!(self, Protection::Ucode1 | Protection::Ucode2 | Protection::Conservative)
    }

    /// IBRS: indirect-prediction (BTB/RSB) flush on kernel entry. The
    /// conservative model is exempt: its full 48-bit tags already keep
    /// kernel and user branches apart (they live at disjoint addresses).
    fn flushes_targets_on_kernel_entry(self) -> bool {
        matches!(self, Protection::Ucode1 | Protection::Ucode2)
    }

    fn partitions(self) -> bool {
        matches!(self, Protection::Ucode2 | Protection::Conservative)
    }

    /// Display name matching Figure 3's legend.
    pub fn label(self) -> &'static str {
        match self {
            Protection::Unprotected => "baseline",
            Protection::Stbpu => "STBPU",
            Protection::Ucode1 => "ucode protection",
            Protection::Ucode2 => "ucode protection2",
            Protection::Conservative => "conservative",
        }
    }
}

/// Model selector for the Figure 3 evaluation (all five schemes run the
/// same SKL-style predictor underneath).
#[derive(Clone, Copy, Debug)]
pub enum ModelKind {
    /// Unprotected Skylake-like baseline.
    Baseline,
    /// Secret-token model with difficulty factor `r`.
    Stbpu {
        /// Attack difficulty factor (Section VII-A; 0.05 default).
        r: f64,
    },
    /// Baseline model used under µcode flushing policies.
    Ucode,
    /// Conservative full-tag model.
    Conservative,
}

/// Builds the model for a [`ModelKind`].
pub fn build_model(kind: ModelKind, seed: u64) -> Box<dyn Bpu> {
    match kind {
        ModelKind::Baseline | ModelKind::Ucode => Box::new(skl_baseline()),
        ModelKind::Stbpu { r } => Box::new(st_skl(StConfig::with_r(r), seed)),
        ModelKind::Conservative => Box::new(conservative()),
    }
}

/// The five (kind, policy) combinations of Figure 3, in legend order.
pub fn fig3_schemes() -> [(ModelKind, Protection); 5] {
    [
        (ModelKind::Baseline, Protection::Unprotected),
        (ModelKind::Stbpu { r: 0.05 }, Protection::Stbpu),
        (ModelKind::Ucode, Protection::Ucode1),
        (ModelKind::Ucode, Protection::Ucode2),
        (ModelKind::Conservative, Protection::Conservative),
    ]
}

/// Aggregated result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Model name.
    pub model: String,
    /// Protection policy label.
    pub protection: &'static str,
    /// Workload name.
    pub workload: String,
    /// Overall accuracy effective.
    pub oae: f64,
    /// Direction prediction rate (conditionals).
    pub direction_rate: f64,
    /// Target prediction rate (taken branches).
    pub target_rate: f64,
    /// Branches measured (after warm-up).
    pub branches: u64,
    /// Mispredictions.
    pub mispredictions: u64,
    /// BTB evictions.
    pub evictions: u64,
    /// Full flushes performed by the policy.
    pub flushes: u64,
    /// Secret-token re-randomizations.
    pub rerandomizations: u64,
}

/// Runs `model` under `policy` over `trace`; the first `warmup_frac` of
/// branch events warm the structures without counting toward statistics.
///
/// # Panics
///
/// Panics if `warmup_frac` is not within `[0, 1)`.
pub fn simulate(
    model: &mut dyn Bpu,
    policy: Protection,
    trace: &Trace,
    warmup_frac: f64,
) -> SimReport {
    assert!((0.0..1.0).contains(&warmup_frac), "warm-up fraction out of range");
    let warmup = (trace.branch_count() as f64 * warmup_frac) as usize;
    model.set_partitioned(policy.partitions());

    // Per-thread context: the user entity to return to after kernel exits.
    let mut user_entity = [EntityId::user(0); 2];
    let mut seen = 0usize;
    let mut warmed = warmup == 0;

    for ev in &trace.events {
        match *ev {
            TraceEvent::Branch { tid, ref rec } => {
                model.process(tid as usize, rec);
                seen += 1;
                if !warmed && seen >= warmup {
                    model.reset_stats();
                    warmed = true;
                }
            }
            TraceEvent::ContextSwitch { tid, entity } => {
                user_entity[tid as usize & 1] = entity;
                model.context_switch(tid as usize, entity);
                if policy.flushes_on_context_switch() {
                    model.flush(); // IBPB
                }
            }
            TraceEvent::ModeSwitch { tid, kernel } => {
                if kernel {
                    model.context_switch(tid as usize, EntityId::KERNEL);
                    if policy.flushes_targets_on_kernel_entry() {
                        model.flush_targets(); // IBRS: no user-placed targets in kernel
                    }
                } else {
                    model.context_switch(tid as usize, user_entity[tid as usize & 1]);
                }
            }
            TraceEvent::Interrupt { .. } => {
                // Delivery itself is free; the kernel excursion follows as
                // ModeSwitch events.
            }
        }
    }

    let s = model.stats();
    SimReport {
        model: model.name(),
        protection: policy.label(),
        workload: trace.name.clone(),
        oae: s.oae(),
        direction_rate: s.direction_rate(),
        target_rate: s.target_rate(),
        branches: s.branches,
        mispredictions: s.mispredictions,
        evictions: s.btb_evictions,
        flushes: s.flushes,
        rerandomizations: model.rerandomizations(),
    }
}

/// Convenience: run all five Figure 3 schemes over one trace and return the
/// reports in legend order.
pub fn run_fig3_suite(trace: &Trace, seed: u64, warmup: f64) -> Vec<SimReport> {
    fig3_schemes()
        .into_iter()
        .map(|(kind, policy)| {
            let mut model = build_model(kind, seed);
            simulate(model.as_mut(), policy, trace, warmup)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_trace::{profiles, TraceGenerator, WorkloadProfile};

    fn trace_for(name: &str, branches: usize) -> Trace {
        TraceGenerator::new(profiles::by_name(name).unwrap(), 42).generate(branches)
    }

    #[test]
    fn baseline_accuracy_in_published_range_for_spec() {
        // Predictable FP workload: baseline OAE must be high.
        let t = trace_for("519.lbm", 30_000);
        let mut m = build_model(ModelKind::Baseline, 1);
        let r = simulate(m.as_mut(), Protection::Unprotected, &t, 0.2);
        assert!(r.oae > 0.93, "lbm baseline OAE {}", r.oae);

        // Hard integer workload: noticeably lower but still decent.
        let t = trace_for("541.leela", 30_000);
        let mut m = build_model(ModelKind::Baseline, 1);
        let r2 = simulate(m.as_mut(), Protection::Unprotected, &t, 0.2);
        assert!(r2.oae > 0.75 && r2.oae < 0.99, "leela baseline OAE {}", r2.oae);
        assert!(r.oae > r2.oae, "lbm must beat leela");
    }

    #[test]
    fn stbpu_close_to_baseline_on_spec() {
        let t = trace_for("525.x264", 25_000);
        let mut base = build_model(ModelKind::Baseline, 1);
        let rb = simulate(base.as_mut(), Protection::Unprotected, &t, 0.2);
        let mut st = build_model(ModelKind::Stbpu { r: 0.05 }, 1);
        let rs = simulate(st.as_mut(), Protection::Stbpu, &t, 0.2);
        assert!(
            rs.oae > rb.oae - 0.05,
            "STBPU ({}) must track baseline ({})",
            rs.oae,
            rb.oae
        );
    }

    #[test]
    fn ucode_flushing_hurts_switch_heavy_workloads() {
        let t = trace_for("apache2_prefork_c256", 30_000);
        let suite = run_fig3_suite(&t, 7, 0.1);
        let base = suite[0].oae;
        let stbpu = suite[1].oae;
        let ucode1 = suite[2].oae;
        assert!(
            ucode1 < base - 0.03,
            "flushing must cost accuracy on apache: base {base}, ucode {ucode1}"
        );
        assert!(
            stbpu > ucode1,
            "STBPU ({stbpu}) must beat microcode flushing ({ucode1})"
        );
        assert!(suite[2].flushes > 100, "apache must trigger many flushes");
    }

    #[test]
    fn stbpu_does_not_flush() {
        let t = trace_for("mysql_64con_50s", 15_000);
        let suite = run_fig3_suite(&t, 3, 0.1);
        assert_eq!(suite[1].flushes, 0, "STBPU never flushes");
        assert_eq!(suite[0].flushes, 0, "baseline never flushes");
        assert!(suite[2].flushes > 0);
    }

    #[test]
    fn partitioning_makes_ucode2_at_most_ucode1() {
        let t = trace_for("chrome-1jetstream", 25_000);
        let suite = run_fig3_suite(&t, 3, 0.1);
        let (u1, u2) = (suite[2].oae, suite[3].oae);
        assert!(u2 <= u1 + 0.02, "STIBP partitioning should not help: u1 {u1}, u2 {u2}");
    }

    #[test]
    fn warmup_zero_counts_everything() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).generate(100);
        let mut m = build_model(ModelKind::Baseline, 1);
        let r = simulate(m.as_mut(), Protection::Unprotected, &t, 0.0);
        assert_eq!(r.branches, 100);
    }

    #[test]
    #[should_panic(expected = "warm-up fraction")]
    fn bad_warmup_rejected() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).generate(10);
        let mut m = build_model(ModelKind::Baseline, 1);
        let _ = simulate(m.as_mut(), Protection::Unprotected, &t, 1.0);
    }
}

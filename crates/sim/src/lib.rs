//! Trace-driven BPU simulation with protection policies (Section VII-B1).
//!
//! The simulator feeds a stream of [`stbpu_trace::TraceEvent`]s through a
//! complete [`Bpu`] model while applying one of the paper's five protection
//! schemes ([`Protection`]):
//!
//! * **Unprotected** — the shared, never-flushed baseline.
//! * **Stbpu** — secret-token isolation: context/mode switches only swap
//!   tokens; nothing is flushed.
//! * **Ucode1** — IBPB + IBRS modelled as full BPU flushes on context
//!   switches and on kernel entries.
//! * **Ucode2** — Ucode1 plus STIBP: static partitioning of shared
//!   structures between the two logical threads.
//! * **Conservative** — full 48-bit tags/targets in a half-capacity BTB
//!   plus flushing and partitioning: prevents every known collision attack
//!   at a steep cost (Section VII-B1).
//!
//! The headline metric is OAE — overall accuracy effective (all necessary
//! predictions correct).
//!
//! # Incremental sessions and streaming
//!
//! The core abstraction is the [`SimSession`]: open it over a model and a
//! policy, [`SimSession::feed`] events one at a time or [`SimSession::run`]
//! any [`stbpu_trace::EventSource`] through it, then [`SimSession::finish`]
//! into a [`SimReport`]. Because sessions consume streams, run length is
//! bounded by time, not memory — a 10M-branch generator-sourced run never
//! materializes an event vector. [`SimObserver`]s attach to a session to
//! watch branches, flushes, context switches, re-randomizations and
//! OAE-over-time [`IntervalWindow`]s ([`IntervalRecorder`] collects the
//! latter). [`simulate`] / [`simulate_with`] are thin wrappers running a
//! materialized [`stbpu_trace::Trace`] through a session.
//!
//! Model *selection* does not live here: any [`stbpu_bpu::Bpu`] can be
//! simulated, and the `stbpu-engine` crate provides the string-named model
//! registry (`ModelRegistry`) and the declarative `Experiment`/`Scenario`
//! builder.
//!
//! # Example
//!
//! ```
//! use stbpu_predictors::skl_baseline;
//! use stbpu_sim::{simulate, Protection, SessionOptions, SimSession};
//! use stbpu_trace::{TraceGenerator, WorkloadProfile};
//!
//! // Materialized path:
//! let trace = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).generate(4000);
//! let mut model = skl_baseline();
//! let report = simulate(&mut model, Protection::Unprotected, &trace, 0.1);
//! assert!(report.oae > 0.5);
//!
//! // Streaming path — same result, no materialized vector:
//! let mut model = skl_baseline();
//! let mut session =
//!     SimSession::new(&mut model, Protection::Unprotected, SessionOptions::default()).unwrap();
//! let mut src = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).into_source(4000);
//! session.run(&mut src).unwrap();
//! assert_eq!(session.finish().oae, report.oae);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod observer;
mod session;

pub use checkpoint::{fnv1a64, Checkpoint, CheckpointError, STCK_MAGIC, STCK_VERSION};
pub use observer::{FlushKind, IntervalRecorder, IntervalWindow, SimObserver};
pub use session::{OwnedSession, SessionOptions, SimSession, Warmup};

use stbpu_bpu::Bpu;
use stbpu_trace::{SourceError, Trace};

/// Which protection scheme the simulator enforces around the model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Protection {
    /// Shared BPU, never flushed (the vulnerable baseline).
    Unprotected,
    /// STBPU: secret-token switching, no flushes.
    Stbpu,
    /// µcode protection 1: IBPB (flush on context switch) + IBRS (flush on
    /// kernel entry).
    Ucode1,
    /// µcode protection 2: Ucode1 + STIBP (thread partitioning).
    Ucode2,
    /// Conservative full-tag model: flushes + partitioning on top of
    /// aliasing-free storage.
    Conservative,
}

impl Protection {
    /// IBPB: full flush when the scheduler switches processes.
    pub(crate) fn flushes_on_context_switch(self) -> bool {
        matches!(
            self,
            Protection::Ucode1 | Protection::Ucode2 | Protection::Conservative
        )
    }

    /// IBRS: indirect-prediction (BTB/RSB) flush on kernel entry. The
    /// conservative model is exempt: its full 48-bit tags already keep
    /// kernel and user branches apart (they live at disjoint addresses).
    pub(crate) fn flushes_targets_on_kernel_entry(self) -> bool {
        matches!(self, Protection::Ucode1 | Protection::Ucode2)
    }

    pub(crate) fn partitions(self) -> bool {
        matches!(self, Protection::Ucode2 | Protection::Conservative)
    }

    /// Display name matching Figure 3's legend.
    pub fn label(self) -> &'static str {
        match self {
            Protection::Unprotected => "baseline",
            Protection::Stbpu => "STBPU",
            Protection::Ucode1 => "ucode protection",
            Protection::Ucode2 => "ucode protection2",
            Protection::Conservative => "conservative",
        }
    }
}

/// Aggregated result of one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Model name.
    pub model: String,
    /// Protection policy label.
    pub protection: &'static str,
    /// Workload name.
    pub workload: String,
    /// Overall accuracy effective.
    pub oae: f64,
    /// Direction prediction rate (conditionals).
    pub direction_rate: f64,
    /// Target prediction rate (taken branches).
    pub target_rate: f64,
    /// Branches measured (after warm-up).
    pub branches: u64,
    /// Mispredictions.
    pub mispredictions: u64,
    /// BTB evictions.
    pub evictions: u64,
    /// Full flushes performed by the policy.
    pub flushes: u64,
    /// Secret-token re-randomizations.
    pub rerandomizations: u64,
}

/// Options for [`simulate_with`].
#[derive(Clone, Copy, Debug)]
pub struct SimOptions {
    /// Fraction of branch events that warm the structures without counting
    /// toward statistics. Must be within `[0, 1)`.
    pub warmup_frac: f64,
    /// Number of hardware threads to provision per-thread context for.
    /// `None` derives it from the trace ([`Trace::thread_count`]). Every
    /// event's `tid` is validated against this, replacing the old silent
    /// two-thread `tid & 1` wrap-around.
    pub threads: Option<usize>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            warmup_frac: 0.1,
            threads: None,
        }
    }
}

/// Why a simulation could not run.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// `warmup_frac` outside `[0, 1)`.
    WarmupOutOfRange(f64),
    /// More threads requested than models support ([`stbpu_bpu::MAX_THREADS`]).
    TooManyThreads {
        /// Threads requested.
        requested: usize,
        /// Hard model limit.
        max: usize,
    },
    /// A trace event carries a `tid` outside the provisioned thread count.
    ThreadOutOfRange {
        /// Offending thread id.
        tid: usize,
        /// Provisioned thread count.
        threads: usize,
    },
    /// A fractional warm-up was requested but the stream declares no
    /// branch count (hint-less source, or events fed before any source).
    WarmupNeedsBranchCount,
    /// The event source failed mid-stream (I/O error, malformed record…).
    Source(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SimError::WarmupOutOfRange(v) => {
                write!(f, "warm-up fraction out of range: {v} not in [0, 1)")
            }
            SimError::TooManyThreads { requested, max } => {
                write!(
                    f,
                    "{requested} threads requested but models support at most {max}"
                )
            }
            SimError::ThreadOutOfRange { tid, threads } => {
                write!(
                    f,
                    "trace event on thread {tid} but only {threads} threads provisioned"
                )
            }
            SimError::WarmupNeedsBranchCount => {
                write!(
                    f,
                    "fractional warm-up needs a source with a branch-count hint \
                     (use Warmup::Branches for hint-less streams)"
                )
            }
            SimError::Source(ref msg) => write!(f, "event source failed: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<SourceError> for SimError {
    fn from(e: SourceError) -> Self {
        SimError::Source(e.0)
    }
}

/// Runs `model` under `policy` over `trace` with explicit [`SimOptions`] —
/// a thin wrapper opening a [`SimSession`] over the materialized trace.
///
/// The thread count is taken from `opts.threads` (or derived from the
/// trace) and validated against both the model limit and every event —
/// a trace that names a thread outside the provisioned range is rejected
/// instead of being silently folded onto two threads.
pub fn simulate_with(
    model: &mut dyn Bpu,
    policy: Protection,
    trace: &Trace,
    opts: &SimOptions,
) -> Result<SimReport, SimError> {
    let threads = opts.threads.unwrap_or_else(|| trace.thread_count()).max(1);
    let mut session = SimSession::new(
        model,
        policy,
        SessionOptions {
            warmup: Warmup::Fraction(opts.warmup_frac),
            threads: Some(threads),
            interval: None,
            workload: Some(trace.name.clone()),
        },
    )?;
    session.run(&mut trace.source())?;
    Ok(session.finish())
}

/// Runs `model` under `policy` over `trace`; the first `warmup_frac` of
/// branch events warm the structures without counting toward statistics.
/// Thread count is derived from the trace — use [`simulate_with`] to
/// control it explicitly.
///
/// # Panics
///
/// Panics if `warmup_frac` is not within `[0, 1)` or the trace names a
/// thread models cannot support.
pub fn simulate(
    model: &mut dyn Bpu,
    policy: Protection,
    trace: &Trace,
    warmup_frac: f64,
) -> SimReport {
    simulate_with(
        model,
        policy,
        trace,
        &SimOptions {
            warmup_frac,
            threads: None,
        },
    )
    .unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_predictors::skl_baseline;
    use stbpu_trace::{TraceEvent, TraceGenerator, WorkloadProfile};

    #[test]
    fn warmup_zero_counts_everything() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).generate(100);
        let mut m = skl_baseline();
        let r = simulate(&mut m, Protection::Unprotected, &t, 0.0);
        assert_eq!(r.branches, 100);
    }

    #[test]
    #[should_panic(expected = "warm-up fraction")]
    fn bad_warmup_rejected() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).generate(10);
        let mut m = skl_baseline();
        let _ = simulate(&mut m, Protection::Unprotected, &t, 1.0);
    }

    #[test]
    fn thread_count_derived_and_validated() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).generate(500);
        assert_eq!(t.thread_count(), 1, "test profile is single-threaded");
        let mut m = skl_baseline();
        let opts = SimOptions {
            warmup_frac: 0.0,
            threads: None,
        };
        let r = simulate_with(&mut m, Protection::Unprotected, &t, &opts).unwrap();
        assert_eq!(r.branches, 500);
    }

    #[test]
    fn event_tid_outside_provisioned_threads_rejected() {
        use stbpu_bpu::BranchRecord;
        let mut t = Trace::new("bad");
        t.push(TraceEvent::Branch {
            tid: 1,
            rec: BranchRecord::conditional(0x4000, true, 0x4100),
        });
        let mut m = skl_baseline();
        let opts = SimOptions {
            warmup_frac: 0.0,
            threads: Some(1),
        };
        let err = simulate_with(&mut m, Protection::Unprotected, &t, &opts).unwrap_err();
        assert_eq!(err, SimError::ThreadOutOfRange { tid: 1, threads: 1 });
    }

    #[test]
    fn more_threads_than_models_support_rejected() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).generate(10);
        let mut m = skl_baseline();
        let opts = SimOptions {
            warmup_frac: 0.0,
            threads: Some(9),
        };
        let err = simulate_with(&mut m, Protection::Unprotected, &t, &opts).unwrap_err();
        assert!(matches!(err, SimError::TooManyThreads { requested: 9, .. }));
    }

    #[test]
    fn protection_labels_stable() {
        assert_eq!(Protection::Unprotected.label(), "baseline");
        assert_eq!(Protection::Stbpu.label(), "STBPU");
        assert_eq!(Protection::Conservative.label(), "conservative");
    }
}

//! The incremental simulation session: feed events one at a time (or pump
//! a whole [`EventSource`]) through a model under a protection policy,
//! with observer hooks and interval statistics.
//!
//! # Session lifecycle
//!
//! Both session types ([`SimSession`], which borrows its model, and
//! [`OwnedSession`], which owns it) move through the same states:
//!
//! 1. **Open** — construction validated the options and put the model
//!    under the policy ([`Bpu::set_partitioned`] applied). No events yet.
//! 2. **Feeding** — events arrive via `feed`/`feed_batch`/`run`, in any
//!    mix. A failed feed leaves earlier events applied; the session stays
//!    usable for diagnostics but its statistics now reflect a partial
//!    stream.
//! 3. **Finished** — `finish()` consumed the session: the final partial
//!    interval window (if any) was closed and a [`SimReport`] built from
//!    the model's statistics. This is the only state that runs end-of-run
//!    bookkeeping.
//! 4. **Aborted** — `abort()` consumed the session *without* any
//!    bookkeeping: no window closes, no observer callbacks, no report.
//!    Dropping a session has exactly the same effect (neither type
//!    implements `Drop`); `abort()` exists so tear-down is explicit in
//!    code that manages many sessions — a server evicting a half-fed
//!    session on quota or timeout calls `abort()` and the model is simply
//!    released. [`OwnedSession::abort`] additionally returns the model,
//!    still carrying its trained state and statistics.
//!
//! There is no reopen: a finished or aborted session is gone, and the
//! model (borrowed or returned) can seed a fresh one.

use crate::observer::{FlushKind, IntervalWindow, SimObserver};
use crate::{Protection, SimError, SimReport};
use stbpu_bpu::{check_len, Bpu, EntityId, SnapError, StateReader, StateWriter};
use stbpu_trace::{EventSource, TraceEvent};

/// Warm-up policy for a session: the structures train without counting
/// toward statistics until the warm-up budget is spent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Warmup {
    /// Warm for this fraction of the stream's declared branch count. Needs
    /// a source with a branch hint (or fraction 0) — pure `feed` streams
    /// and hint-less sources must use [`Warmup::Branches`].
    Fraction(f64),
    /// Warm for exactly this many branch events.
    Branches(u64),
}

/// Options for a [`SimSession`] or [`OwnedSession`].
#[derive(Clone, Debug)]
pub struct SessionOptions {
    /// Warm-up policy (default: 10 % of the declared branch count).
    pub warmup: Warmup,
    /// Hardware threads to provision per-thread context for. `None`
    /// provisions the model maximum ([`stbpu_bpu::MAX_THREADS`]); sources
    /// with declared thread counts can be passed explicitly. Every event's
    /// `tid` is validated against the provision.
    pub threads: Option<usize>,
    /// When set, close an [`IntervalWindow`] every this many branches and
    /// report it to observers via [`SimObserver::on_interval`] (an
    /// [`OwnedSession`] retains the windows internally instead — drain
    /// them via [`OwnedSession::take_intervals`]).
    pub interval: Option<u64>,
    /// Workload label for the final report. `None` takes the name of the
    /// first source passed to [`SimSession::run`].
    pub workload: Option<String>,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            warmup: Warmup::Fraction(0.1),
            threads: None,
            interval: None,
            workload: None,
        }
    }
}

/// Events pulled per [`EventSource::next_batch`] refill inside
/// [`SimSession::run`] — large enough to amortize per-batch overhead,
/// small enough to stay cache-resident (~100 KB of events).
const RUN_BATCH: usize = 4_096;

/// All session state and logic that does not depend on how the model is
/// held. [`SimSession`] (borrowed model + borrowed observers) and
/// [`OwnedSession`] (owned model, no observers) both delegate every event
/// to this one implementation, so the two are bit-identical by
/// construction — there is no second simulation loop to drift.
struct SessionCore {
    policy: Protection,
    threads: usize,
    /// Per-thread context: the user entity to return to after kernel exits.
    user_entity: Vec<EntityId>,
    /// `None` until a fraction warm-up is resolved against a branch hint.
    warmup_target: Option<u64>,
    pending_fraction: f64,
    seen: u64,
    warmed: bool,
    interval: Option<u64>,
    window: IntervalWindow,
    last_rerand: u64,
    workload: Option<String>,
    /// Reused pull buffer for `run` — one allocation per session, no
    /// per-batch churn.
    batch_buf: Vec<TraceEvent>,
    /// When true, closed interval windows are retained in `recorded`
    /// (the observer-free mechanism [`OwnedSession`] uses).
    record_intervals: bool,
    recorded: Vec<IntervalWindow>,
}

impl SessionCore {
    fn open<B: Bpu + ?Sized>(
        model: &mut B,
        policy: Protection,
        opts: SessionOptions,
        record_intervals: bool,
    ) -> Result<Self, SimError> {
        let (warmup_target, pending_fraction) = match opts.warmup {
            Warmup::Branches(n) => (Some(n), 0.0),
            Warmup::Fraction(f) => {
                if !(0.0..1.0).contains(&f) {
                    return Err(SimError::WarmupOutOfRange(f));
                }
                if f == 0.0 {
                    (Some(0), 0.0)
                } else {
                    (None, f)
                }
            }
        };
        let threads = opts
            .threads
            .map(|t| t.max(1))
            .unwrap_or(stbpu_bpu::MAX_THREADS);
        if threads > stbpu_bpu::MAX_THREADS {
            return Err(SimError::TooManyThreads {
                requested: threads,
                max: stbpu_bpu::MAX_THREADS,
            });
        }
        model.set_partitioned(policy.partitions());
        let last_rerand = model.rerandomizations();
        Ok(SessionCore {
            policy,
            threads,
            user_entity: vec![EntityId::user(0); threads],
            warmed: warmup_target == Some(0),
            warmup_target,
            pending_fraction,
            seen: 0,
            interval: opts.interval,
            window: IntervalWindow::default(),
            last_rerand,
            workload: opts.workload,
            batch_buf: Vec::new(),
            record_intervals,
            recorded: Vec::new(),
        })
    }

    fn check(&self, tid: u8) -> Result<usize, SimError> {
        let tid = tid as usize;
        if tid < self.threads {
            Ok(tid)
        } else {
            Err(SimError::ThreadOutOfRange {
                tid,
                threads: self.threads,
            })
        }
    }

    fn close_window(&mut self, obs: &mut [&mut dyn SimObserver]) {
        let w = self.window;
        if self.record_intervals {
            self.recorded.push(w);
        }
        for o in obs.iter_mut() {
            o.on_interval(&w);
        }
        self.window = IntervalWindow {
            start_branch: self.seen,
            ..IntervalWindow::default()
        };
    }

    fn record_flush(&mut self, obs: &mut [&mut dyn SimObserver], kind: FlushKind) {
        self.window.flushes += 1;
        for o in obs.iter_mut() {
            o.on_flush(kind);
        }
    }

    fn notify_context_switch(obs: &mut [&mut dyn SimObserver], tid: usize, entity: EntityId) {
        for o in obs.iter_mut() {
            o.on_context_switch(tid, entity);
        }
    }

    fn feed<B: Bpu + ?Sized>(
        &mut self,
        model: &mut B,
        obs: &mut [&mut dyn SimObserver],
        ev: &TraceEvent,
    ) -> Result<(), SimError> {
        match *ev {
            TraceEvent::Branch { tid, ref rec } => {
                let target = self.warmup_target.ok_or(SimError::WarmupNeedsBranchCount)?;
                let tid = self.check(tid)?;
                let outcome = model.process(tid, rec);
                self.seen += 1;
                if !self.warmed && self.seen >= target {
                    model.reset_stats();
                    self.warmed = true;
                }
                self.window.branches += 1;
                self.window.effective_correct += u64::from(outcome.effective_correct);
                self.window.mispredictions += u64::from(outcome.mispredicted);
                let rerand = model.rerandomizations();
                if rerand > self.last_rerand {
                    self.window.rerandomizations += rerand - self.last_rerand;
                    self.last_rerand = rerand;
                    for o in obs.iter_mut() {
                        o.on_rerandomize(rerand);
                    }
                }
                for o in obs.iter_mut() {
                    o.on_branch(tid, rec, &outcome);
                }
                if self.interval.is_some_and(|n| self.window.branches >= n) {
                    self.close_window(obs);
                }
            }
            TraceEvent::ContextSwitch { tid, entity } => {
                let tid = self.check(tid)?;
                self.user_entity[tid] = entity;
                model.context_switch(tid, entity);
                Self::notify_context_switch(obs, tid, entity);
                if self.policy.flushes_on_context_switch() {
                    model.flush(); // IBPB
                    self.record_flush(obs, FlushKind::Full);
                }
            }
            TraceEvent::ModeSwitch { tid, kernel } => {
                let tid = self.check(tid)?;
                if kernel {
                    model.context_switch(tid, EntityId::KERNEL);
                    Self::notify_context_switch(obs, tid, EntityId::KERNEL);
                    if self.policy.flushes_targets_on_kernel_entry() {
                        // IBRS: no user-placed targets in kernel.
                        model.flush_targets();
                        self.record_flush(obs, FlushKind::Targets);
                    }
                } else {
                    let entity = self.user_entity[tid];
                    model.context_switch(tid, entity);
                    Self::notify_context_switch(obs, tid, entity);
                }
            }
            TraceEvent::Interrupt { tid } => {
                // Delivery itself is free; the kernel excursion follows as
                // ModeSwitch events.
                self.check(tid)?;
            }
        }
        Ok(())
    }

    fn feed_batch<B: Bpu + ?Sized>(
        &mut self,
        model: &mut B,
        obs: &mut [&mut dyn SimObserver],
        events: &[TraceEvent],
    ) -> Result<(), SimError> {
        if !obs.is_empty() || self.interval.is_some() {
            for ev in events {
                self.feed(model, obs, ev)?;
            }
            return Ok(());
        }
        for ev in events {
            if let TraceEvent::Branch { tid, ref rec } = *ev {
                let target = self.warmup_target.ok_or(SimError::WarmupNeedsBranchCount)?;
                let tid = self.check(tid)?;
                model.process(tid, rec);
                self.seen += 1;
                if !self.warmed && self.seen >= target {
                    model.reset_stats();
                    self.warmed = true;
                }
            } else {
                // Rare control events keep the one shared implementation
                // (the observer loops it runs are over an empty slice).
                self.feed(model, obs, ev)?;
            }
        }
        Ok(())
    }

    /// The prologue [`SessionCore::run`] performs before pulling any event:
    /// adopt the source's name as the workload label (if none was set) and
    /// resolve a pending fractional warm-up against its branch hint. Pulled
    /// out so manual-feed paths (shard workers, checkpoint creation) can
    /// run it and stay bit-identical to `run` over the same stream.
    fn begin(&mut self, name: &str, branch_hint: Option<u64>) -> Result<(), SimError> {
        if self.workload.is_none() {
            self.workload = Some(name.to_string());
        }
        if self.warmup_target.is_none() {
            let hint = branch_hint.ok_or(SimError::WarmupNeedsBranchCount)?;
            let target = (hint as f64 * self.pending_fraction) as u64;
            self.warmup_target = Some(target);
            self.warmed = self.warmed || target == 0;
        }
        Ok(())
    }

    /// Serializes every field a resumed session needs to continue the
    /// stream bit-identically. The policy lives in the checkpoint envelope
    /// (the session is re-opened under it before loading), and `batch_buf`
    /// is a scratch buffer that is always empty between events.
    fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.threads);
        for e in &self.user_entity {
            w.u32(e.0);
        }
        match self.warmup_target {
            Some(t) => {
                w.bool(true);
                w.u64(t);
            }
            None => w.bool(false),
        }
        w.f64(self.pending_fraction);
        w.u64(self.seen);
        w.bool(self.warmed);
        match self.interval {
            Some(n) => {
                w.bool(true);
                w.u64(n);
            }
            None => w.bool(false),
        }
        Self::save_window(w, &self.window);
        w.u64(self.last_rerand);
        match &self.workload {
            Some(s) => {
                w.bool(true);
                w.str(s);
            }
            None => w.bool(false),
        }
        w.bool(self.record_intervals);
        w.usize(self.recorded.len());
        for win in &self.recorded {
            Self::save_window(w, win);
        }
    }

    fn save_window(w: &mut StateWriter, win: &IntervalWindow) {
        w.u64(win.start_branch);
        w.u64(win.branches);
        w.u64(win.effective_correct);
        w.u64(win.mispredictions);
        w.u64(win.flushes);
        w.u64(win.rerandomizations);
    }

    fn load_window(r: &mut StateReader<'_>) -> Result<IntervalWindow, SnapError> {
        Ok(IntervalWindow {
            start_branch: r.u64()?,
            branches: r.u64()?,
            effective_correct: r.u64()?,
            mispredictions: r.u64()?,
            flushes: r.u64()?,
            rerandomizations: r.u64()?,
        })
    }

    /// Restores state saved by [`SessionCore::save_state`] into a session
    /// opened with the same thread provision.
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let threads = r.usize()?;
        check_len(r, "session threads", threads, self.threads)?;
        for e in &mut self.user_entity {
            *e = EntityId(r.u32()?);
        }
        self.warmup_target = if r.bool()? { Some(r.u64()?) } else { None };
        self.pending_fraction = r.f64()?;
        self.seen = r.u64()?;
        self.warmed = r.bool()?;
        self.interval = if r.bool()? { Some(r.u64()?) } else { None };
        self.window = Self::load_window(r)?;
        self.last_rerand = r.u64()?;
        self.workload = if r.bool()? {
            Some(r.str()?.to_string())
        } else {
            None
        };
        self.record_intervals = r.bool()?;
        let n = r.usize()?;
        self.recorded = Vec::new();
        for _ in 0..n {
            self.recorded.push(Self::load_window(r)?);
        }
        Ok(())
    }

    fn run<B: Bpu + ?Sized>(
        &mut self,
        model: &mut B,
        obs: &mut [&mut dyn SimObserver],
        source: &mut dyn EventSource,
    ) -> Result<(), SimError> {
        self.begin(source.name(), source.branch_hint())?;
        let mut buf = std::mem::take(&mut self.batch_buf);
        let result = loop {
            match source.next_batch(&mut buf, RUN_BATCH) {
                Err(e) => break Err(SimError::from(e)),
                Ok(0) => break Ok(()),
                Ok(_) => {
                    if let Err(e) = self.feed_batch(model, obs, &buf) {
                        break Err(e);
                    }
                }
            }
        };
        self.batch_buf = buf;
        result
    }

    fn finish<B: Bpu + ?Sized>(
        mut self,
        model: &mut B,
        obs: &mut [&mut dyn SimObserver],
    ) -> SimReport {
        if self.interval.is_some() && self.window.branches > 0 {
            self.close_window(obs);
        }
        let s = model.stats();
        SimReport {
            model: model.name().to_string(),
            protection: self.policy.label(),
            workload: self.workload.unwrap_or_else(|| "unnamed".to_string()),
            oae: s.oae(),
            direction_rate: s.direction_rate(),
            target_rate: s.target_rate(),
            branches: s.branches,
            mispredictions: s.mispredictions,
            evictions: s.btb_evictions,
            flushes: s.flushes,
            rerandomizations: model.rerandomizations(),
        }
    }
}

/// An incremental simulation: one model under one protection policy,
/// consuming trace events as they arrive.
///
/// Where [`crate::simulate_with`] demands a fully materialized
/// [`stbpu_trace::Trace`], a session accepts events from any
/// [`EventSource`] (or one at a time via [`SimSession::feed`], or in
/// slices via [`SimSession::feed_batch`]), so run length is never bounded
/// by memory — a 10M-branch generator-sourced run holds only the model
/// and a few counters. Attached [`SimObserver`]s see branches, flushes,
/// context switches, re-randomizations and interval windows as they
/// happen. See the module docs for the lifecycle
/// (open → feeding → [`SimSession::finish`] | [`SimSession::abort`]).
///
/// # Throughput
///
/// The session is generic over the model type. `B = dyn Bpu` (the
/// default, what `Box<dyn Bpu>` callers get) dispatches every branch
/// virtually; instantiating with a concrete model — e.g. the engine's
/// sealed `ModelCore` enum — monomorphizes the hot loop so predictor,
/// mapper and BTB calls inline. [`SimSession::run`] pulls events in
/// batches and [`SimSession::feed_batch`] takes a no-observer fast path
/// that skips all hook bookkeeping; both are bit-identical to per-event
/// [`SimSession::feed`] (test-enforced), they only cost less.
///
/// ```
/// use stbpu_predictors::skl_baseline;
/// use stbpu_sim::{Protection, SessionOptions, SimSession};
/// use stbpu_trace::{TraceGenerator, WorkloadProfile};
///
/// let mut model = skl_baseline();
/// let mut session = SimSession::new(
///     &mut model,
///     Protection::Unprotected,
///     SessionOptions::default(),
/// )
/// .unwrap();
/// let mut src = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).into_source(10_000);
/// session.run(&mut src).unwrap();
/// let report = session.finish();
/// assert_eq!(report.branches, 9_000); // 10 % warm-up excluded
/// assert!(report.oae > 0.5);
/// ```
pub struct SimSession<'a, B: Bpu + ?Sized = dyn Bpu + 'a> {
    model: &'a mut B,
    observers: Vec<&'a mut dyn SimObserver>,
    core: SessionCore,
}

impl<'a, B: Bpu + ?Sized> SimSession<'a, B> {
    /// Opens a session for `model` under `policy`.
    ///
    /// # Errors
    ///
    /// [`SimError::WarmupOutOfRange`] for a fraction outside `[0, 1)`,
    /// [`SimError::TooManyThreads`] for an explicit thread provision above
    /// the model limit.
    pub fn new(
        model: &'a mut B,
        policy: Protection,
        opts: SessionOptions,
    ) -> Result<Self, SimError> {
        let core = SessionCore::open(model, policy, opts, false)?;
        Ok(SimSession {
            model,
            observers: Vec::new(),
            core,
        })
    }

    /// Attaches an observer for the rest of the session.
    pub fn attach(&mut self, observer: &'a mut dyn SimObserver) {
        // Branches fed while no observer was listening take the fast path
        // and do not track re-randomization deltas; resync so the first
        // observed branch doesn't replay history nobody subscribed to.
        if self.observers.is_empty() {
            self.core.last_rerand = self.model.rerandomizations();
        }
        self.observers.push(observer);
    }

    /// Branch events fed so far (warm-up included).
    pub fn branches_seen(&self) -> u64 {
        self.core.seen
    }

    /// Feeds one event through the session.
    ///
    /// # Errors
    ///
    /// [`SimError::ThreadOutOfRange`] for an event outside the provisioned
    /// threads; [`SimError::WarmupNeedsBranchCount`] when a fractional
    /// warm-up was requested but no branch hint has resolved it (run a
    /// hinted source first, or use [`Warmup::Branches`]).
    pub fn feed(&mut self, ev: &TraceEvent) -> Result<(), SimError> {
        self.core.feed(self.model, &mut self.observers, ev)
    }

    /// Feeds a slice of events through the session — semantically
    /// identical to calling [`SimSession::feed`] per event (bit-identical
    /// results and observer callback sequences, test-enforced), but when
    /// no observer is attached and no interval is configured the branch
    /// loop skips all hook bookkeeping (window counters, observer
    /// iteration, re-randomization delta tracking).
    ///
    /// # Errors
    ///
    /// Everything [`SimSession::feed`] can return; the batch stops at the
    /// first failing event (earlier events remain applied, as with
    /// per-event feeding).
    pub fn feed_batch(&mut self, events: &[TraceEvent]) -> Result<(), SimError> {
        self.core
            .feed_batch(self.model, &mut self.observers, events)
    }

    /// Pumps `source` to exhaustion through the session, pulling events
    /// in batches (via [`EventSource::next_batch`] into a reused internal
    /// buffer) and feeding them through [`SimSession::feed_batch`].
    /// Resolves a pending fractional warm-up from the source's branch
    /// hint and takes the source's name as the workload label if none was
    /// set.
    ///
    /// # Errors
    ///
    /// [`SimError::Source`] when the source fails mid-stream, plus
    /// everything [`SimSession::feed`] can return.
    pub fn run(&mut self, source: &mut dyn EventSource) -> Result<(), SimError> {
        self.core.run(self.model, &mut self.observers, source)
    }

    /// Ends the session: flushes a final partial interval window to the
    /// observers and produces the aggregated report.
    pub fn finish(self) -> SimReport {
        let SimSession {
            model,
            mut observers,
            core,
        } = self;
        core.finish(model, &mut observers)
    }

    /// Tears the session down *without* end-of-run bookkeeping: no final
    /// window closes, no observer callbacks fire, no report is built —
    /// the explicit form of simply dropping the session (see the
    /// module docs). The borrowed model is released unchanged,
    /// still carrying whatever state and statistics the fed events built
    /// up. This is the path for evicting half-fed sessions (quota hits,
    /// idle timeouts, disconnected clients) where running `finish()`
    /// would waste work on a report nobody will read.
    pub fn abort(self) {
        // Dropping the fields is the entire teardown; the method exists
        // so call sites say what they mean.
    }
}

/// A session that owns its model — the registry-friendly form a server
/// needs: many live sessions in one collection, each movable across
/// worker threads, none borrowing anything.
///
/// Behavior is bit-identical to a [`SimSession`] over the same model and
/// options (both delegate to one internal implementation; test-enforced).
/// The differences are ownership-shaped:
///
/// * no observers — when [`SessionOptions::interval`] is set, closed
///   [`IntervalWindow`]s are retained internally and drained via
///   [`OwnedSession::take_intervals`] (drain regularly on long streams,
///   or the backlog grows unbounded);
/// * [`OwnedSession::finish`] and [`OwnedSession::abort`] both hand the
///   model back, so a server can recycle or inspect it.
///
/// See the module docs for the lifecycle states.
///
/// ```
/// use stbpu_predictors::skl_baseline;
/// use stbpu_sim::{OwnedSession, Protection, SessionOptions, Warmup};
/// use stbpu_trace::{EventSource, TraceGenerator, WorkloadProfile};
///
/// let opts = SessionOptions {
///     warmup: Warmup::Branches(0),
///     interval: Some(1_000),
///     ..SessionOptions::default()
/// };
/// let mut session = OwnedSession::new(skl_baseline(), Protection::Unprotected, opts).unwrap();
/// let mut src = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).into_source(4_000);
/// session.run(&mut src).unwrap();
/// assert_eq!(session.take_intervals().len(), 4);
/// let report = session.finish();
/// assert_eq!(report.branches, 4_000);
/// ```
pub struct OwnedSession<B: Bpu> {
    model: B,
    core: SessionCore,
}

impl<B: Bpu> OwnedSession<B> {
    /// Opens a session owning `model` under `policy`. When
    /// `opts.interval` is set, closed windows are retained for
    /// [`OwnedSession::take_intervals`].
    ///
    /// # Errors
    ///
    /// Exactly [`SimSession::new`]'s errors.
    pub fn new(mut model: B, policy: Protection, opts: SessionOptions) -> Result<Self, SimError> {
        let record_intervals = opts.interval.is_some();
        let core = SessionCore::open(&mut model, policy, opts, record_intervals)?;
        Ok(OwnedSession { model, core })
    }

    /// Branch events fed so far (warm-up included).
    pub fn branches_seen(&self) -> u64 {
        self.core.seen
    }

    /// The workload label the report will carry, once resolved (set in
    /// the options or adopted from the first source/[`OwnedSession::begin`]).
    pub fn workload(&self) -> Option<&str> {
        self.core.workload.as_deref()
    }

    /// The protection policy the session was opened under.
    pub fn protection(&self) -> Protection {
        self.core.policy
    }

    /// The owned model (e.g. to read statistics mid-stream).
    pub fn model(&self) -> &B {
        &self.model
    }

    /// Mutable access to the owned model — the checkpoint restore path
    /// loads predictor state through this.
    pub fn model_mut(&mut self) -> &mut B {
        &mut self.model
    }

    /// Runs the stream prologue [`SimSession::run`] would: adopts
    /// `workload` as the label (if none was set) and resolves a pending
    /// fractional warm-up against `branch_hint`. Manual-feed drivers
    /// (shard workers, checkpoint creation) call this once before their
    /// first [`OwnedSession::feed_batch`] so their sessions are
    /// bit-identical to a `run` over the same source.
    ///
    /// # Errors
    ///
    /// [`SimError::WarmupNeedsBranchCount`] when a fractional warm-up is
    /// pending and `branch_hint` is `None`.
    pub fn begin(&mut self, workload: &str, branch_hint: Option<u64>) -> Result<(), SimError> {
        self.core.begin(workload, branch_hint)
    }

    /// Serializes the session bookkeeping (warm-up progress, interval
    /// window, workload label, retained windows — everything except the
    /// model itself and the protection policy, which the checkpoint
    /// envelope carries). Pair with [`Bpu::save_state`] on
    /// [`OwnedSession::model`] for a complete snapshot.
    pub fn save_session_state(&self, w: &mut StateWriter) {
        self.core.save_state(w);
    }

    /// Restores bookkeeping saved by [`OwnedSession::save_session_state`]
    /// into a session opened under the same policy and thread provision.
    ///
    /// # Errors
    ///
    /// A positioned [`SnapError`] on truncation, corruption, or a thread
    /// provision mismatch.
    pub fn load_session_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.core.load_state(r)
    }

    /// Feeds one event — see [`SimSession::feed`].
    ///
    /// # Errors
    ///
    /// Exactly [`SimSession::feed`]'s errors.
    pub fn feed(&mut self, ev: &TraceEvent) -> Result<(), SimError> {
        self.core.feed(&mut self.model, &mut [], ev)
    }

    /// Feeds a slice of events — see [`SimSession::feed_batch`]. With no
    /// interval configured this is the same no-bookkeeping fast path.
    ///
    /// # Errors
    ///
    /// Exactly [`SimSession::feed_batch`]'s errors.
    pub fn feed_batch(&mut self, events: &[TraceEvent]) -> Result<(), SimError> {
        self.core.feed_batch(&mut self.model, &mut [], events)
    }

    /// Pumps `source` to exhaustion — see [`SimSession::run`].
    ///
    /// # Errors
    ///
    /// Exactly [`SimSession::run`]'s errors.
    pub fn run(&mut self, source: &mut dyn EventSource) -> Result<(), SimError> {
        self.core.run(&mut self.model, &mut [], source)
    }

    /// Drains the interval windows closed since the last call (empty
    /// unless [`SessionOptions::interval`] was set). The incremental-OAE
    /// feed a server streams back between chunks.
    pub fn take_intervals(&mut self) -> Vec<IntervalWindow> {
        std::mem::take(&mut self.core.recorded)
    }

    /// Ends the session — closes the final partial interval window (into
    /// the retained series; drain it first or it is lost) and builds the
    /// report. See [`SimSession::finish`].
    pub fn finish(mut self) -> SimReport {
        self.core.finish(&mut self.model, &mut [])
    }

    /// Ends the session, also returning the interval backlog (including
    /// the final partial window) alongside the report — the one-call form
    /// of `take_intervals` + `finish` a server uses at `Flush`.
    pub fn finish_with_intervals(mut self) -> (SimReport, Vec<IntervalWindow>) {
        if self.core.interval.is_some() && self.core.window.branches > 0 {
            self.core.close_window(&mut []);
        }
        let intervals = std::mem::take(&mut self.core.recorded);
        let report = self.core.finish(&mut self.model, &mut []);
        (report, intervals)
    }

    /// Tears the session down without end-of-run bookkeeping and returns
    /// the model (trained state and statistics intact) — see
    /// [`SimSession::abort`] and the lifecycle notes in the module docs.
    pub fn abort(self) -> B {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::IntervalRecorder;
    use stbpu_bpu::{BranchOutcome, BranchRecord};
    use stbpu_predictors::skl_baseline;
    use stbpu_trace::{profiles, TraceGenerator, WorkloadProfile};

    fn opts_nowarm() -> SessionOptions {
        SessionOptions {
            warmup: Warmup::Branches(0),
            ..SessionOptions::default()
        }
    }

    #[test]
    fn feed_by_hand_matches_run() {
        let trace = TraceGenerator::new(&WorkloadProfile::test_profile(), 4).generate(2_000);

        let mut m1 = skl_baseline();
        let mut s1 = SimSession::new(&mut m1, Protection::Unprotected, opts_nowarm()).unwrap();
        for ev in trace.events() {
            s1.feed(ev).unwrap();
        }
        let r1 = s1.finish();

        let mut m2 = skl_baseline();
        let mut s2 = SimSession::new(&mut m2, Protection::Unprotected, opts_nowarm()).unwrap();
        s2.run(&mut trace.source()).unwrap();
        let r2 = s2.finish();

        assert_eq!(r1.oae, r2.oae);
        assert_eq!(r1.mispredictions, r2.mispredictions);
        assert_eq!(r1.branches, 2_000);
        // feed-by-hand had no source, so no workload label.
        assert_eq!(r1.workload, "unnamed");
        assert_eq!(r2.workload, trace.name);
    }

    #[test]
    fn owned_session_matches_borrowed_session_bit_for_bit() {
        let trace = TraceGenerator::new(&WorkloadProfile::test_profile(), 4).generate(3_000);

        let mut m = skl_baseline();
        let mut borrowed = SimSession::new(&mut m, Protection::Ucode1, opts_nowarm()).unwrap();
        borrowed.run(&mut trace.source()).unwrap();
        let r1 = borrowed.finish();

        let mut owned =
            OwnedSession::new(skl_baseline(), Protection::Ucode1, opts_nowarm()).unwrap();
        owned.run(&mut trace.source()).unwrap();
        assert_eq!(owned.branches_seen(), 3_000);
        let r2 = owned.finish();

        assert_eq!(r1.oae.to_bits(), r2.oae.to_bits());
        assert_eq!(r1.branches, r2.branches);
        assert_eq!(r1.mispredictions, r2.mispredictions);
        assert_eq!(r1.evictions, r2.evictions);
        assert_eq!(r1.flushes, r2.flushes);
        assert_eq!(r1.rerandomizations, r2.rerandomizations);
    }

    #[test]
    fn owned_session_retains_intervals_without_observers() {
        let trace = TraceGenerator::new(&WorkloadProfile::test_profile(), 7).generate(1_750);

        // Reference: a borrowed session + recorder observer.
        let mut m = skl_baseline();
        let mut rec = IntervalRecorder::new();
        let mut s = SimSession::new(
            &mut m,
            Protection::Unprotected,
            SessionOptions {
                warmup: Warmup::Branches(0),
                interval: Some(500),
                ..SessionOptions::default()
            },
        )
        .unwrap();
        s.attach(&mut rec);
        s.run(&mut trace.source()).unwrap();
        let r1 = s.finish();

        let mut owned = OwnedSession::new(
            skl_baseline(),
            Protection::Unprotected,
            SessionOptions {
                warmup: Warmup::Branches(0),
                interval: Some(500),
                ..SessionOptions::default()
            },
        )
        .unwrap();
        owned.run(&mut trace.source()).unwrap();
        let (r2, windows) = owned.finish_with_intervals();
        assert_eq!(windows.as_slice(), rec.windows());
        assert_eq!(windows.len(), 4, "3 full + 1 partial window");
        assert_eq!(r1.oae.to_bits(), r2.oae.to_bits());
    }

    #[test]
    fn take_intervals_drains_incrementally() {
        let trace = TraceGenerator::new(&WorkloadProfile::test_profile(), 2).generate(1_200);
        let mut owned = OwnedSession::new(
            skl_baseline(),
            Protection::Unprotected,
            SessionOptions {
                warmup: Warmup::Branches(0),
                interval: Some(400),
                ..SessionOptions::default()
            },
        )
        .unwrap();
        let mut drained = Vec::new();
        for ev in trace.events() {
            owned.feed(ev).unwrap();
            drained.extend(owned.take_intervals());
        }
        assert_eq!(drained.len(), 3);
        assert_eq!(drained.iter().map(|w| w.branches).sum::<u64>(), 1_200);
        let (_, tail) = owned.finish_with_intervals();
        assert!(tail.is_empty(), "everything was drained mid-stream");
    }

    #[test]
    fn abort_skips_finish_bookkeeping() {
        let trace = TraceGenerator::new(&WorkloadProfile::test_profile(), 3).generate(900);

        // Borrowed: abort() leaves the model's trained stats intact and
        // fires no observer callbacks.
        let mut m = skl_baseline();
        let mut rec = IntervalRecorder::new();
        let mut s = SimSession::new(
            &mut m,
            Protection::Unprotected,
            SessionOptions {
                warmup: Warmup::Branches(0),
                interval: Some(10_000), // longer than the stream: only finish() would close it
                ..SessionOptions::default()
            },
        )
        .unwrap();
        s.attach(&mut rec);
        s.run(&mut trace.source()).unwrap();
        s.abort();
        assert!(
            rec.windows().is_empty(),
            "abort must not close the partial window"
        );
        assert_eq!(m.stats().branches, 900, "model state survives the abort");

        // Owned: abort() hands the model back mid-stream.
        let mut owned =
            OwnedSession::new(skl_baseline(), Protection::Unprotected, opts_nowarm()).unwrap();
        owned.feed_batch(trace.events()).unwrap();
        let model = owned.abort();
        assert_eq!(model.stats().branches, 900);
    }

    #[test]
    fn fractional_warmup_needs_a_hint() {
        let mut m = skl_baseline();
        let mut s = SimSession::new(
            &mut m,
            Protection::Unprotected,
            SessionOptions {
                warmup: Warmup::Fraction(0.5),
                ..SessionOptions::default()
            },
        )
        .unwrap();
        let ev = TraceEvent::Branch {
            tid: 0,
            rec: BranchRecord::conditional(0x4000, true, 0x4100),
        };
        assert_eq!(s.feed(&ev).unwrap_err(), SimError::WarmupNeedsBranchCount);
    }

    #[test]
    fn bad_fraction_rejected_at_open() {
        let mut m = skl_baseline();
        let err = SimSession::new(
            &mut m,
            Protection::Unprotected,
            SessionOptions {
                warmup: Warmup::Fraction(1.0),
                ..SessionOptions::default()
            },
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err, SimError::WarmupOutOfRange(1.0));
    }

    #[test]
    fn interval_windows_partition_the_stream() {
        let mut m = skl_baseline();
        let mut rec = IntervalRecorder::new();
        let mut s = SimSession::new(
            &mut m,
            Protection::Unprotected,
            SessionOptions {
                warmup: Warmup::Branches(0),
                interval: Some(500),
                ..SessionOptions::default()
            },
        )
        .unwrap();
        s.attach(&mut rec);
        let mut src = TraceGenerator::new(&WorkloadProfile::test_profile(), 7).into_source(1_750);
        s.run(&mut src).unwrap();
        let report = s.finish();
        let windows = rec.windows();
        assert_eq!(windows.len(), 4, "3 full + 1 partial window");
        assert_eq!(windows.iter().map(|w| w.branches).sum::<u64>(), 1_750);
        assert_eq!(windows[3].branches, 250);
        assert_eq!(windows[1].start_branch, 500);
        assert!(windows.iter().all(|w| w.oae() > 0.0));
        assert_eq!(report.branches, 1_750);
    }

    #[test]
    fn observers_see_flushes_and_switches() {
        #[derive(Default)]
        struct Counter {
            branches: u64,
            flushes: u64,
            switches: u64,
        }
        impl SimObserver for Counter {
            fn on_branch(&mut self, _: usize, _: &BranchRecord, _: &BranchOutcome) {
                self.branches += 1;
            }
            fn on_flush(&mut self, _: FlushKind) {
                self.flushes += 1;
            }
            fn on_context_switch(&mut self, _: usize, _: EntityId) {
                self.switches += 1;
            }
        }
        let p = profiles::by_name("apache2_prefork_c256").unwrap();
        let trace = TraceGenerator::new(p, 11).generate(5_000);
        let mut m = skl_baseline();
        let mut c = Counter::default();
        let mut s = SimSession::new(&mut m, Protection::Ucode1, opts_nowarm()).unwrap();
        s.attach(&mut c);
        s.run(&mut trace.source()).unwrap();
        let report = s.finish();
        assert_eq!(c.branches, 5_000);
        assert!(c.flushes > 0, "ucode1 must flush on apache");
        assert_eq!(
            report.flushes, c.flushes,
            "observer and model agree on flush count (no warm-up reset)"
        );
        assert!(
            c.switches as usize >= trace.context_switches(),
            "every context switch observed"
        );
    }

    #[test]
    fn rerandomizations_reach_observers() {
        use stbpu_core::{st_skl, StConfig};
        #[derive(Default)]
        struct Rerand {
            fired: u64,
        }
        impl SimObserver for Rerand {
            fn on_rerandomize(&mut self, _total: u64) {
                self.fired += 1;
            }
        }
        let cfg = StConfig {
            r: 1.0,
            misp_complexity: 100.0,
            eviction_complexity: 100.0,
            ..StConfig::default()
        };
        let mut m = st_skl(cfg, 3);
        let mut obs = Rerand::default();
        let mut s = SimSession::new(&mut m, Protection::Stbpu, opts_nowarm()).unwrap();
        s.attach(&mut obs);
        let mut src =
            TraceGenerator::new(profiles::by_name("541.leela").unwrap(), 5).into_source(8_000);
        s.run(&mut src).unwrap();
        let report = s.finish();
        assert!(report.rerandomizations > 0, "thresholds must trip");
        assert!(obs.fired > 0, "observer must hear about it");
    }
}

//! The incremental simulation session: feed events one at a time (or pump
//! a whole [`EventSource`]) through a model under a protection policy,
//! with observer hooks and interval statistics.

use crate::observer::{FlushKind, IntervalWindow, SimObserver};
use crate::{Protection, SimError, SimReport};
use stbpu_bpu::{Bpu, EntityId};
use stbpu_trace::{EventSource, TraceEvent};

/// Warm-up policy for a session: the structures train without counting
/// toward statistics until the warm-up budget is spent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Warmup {
    /// Warm for this fraction of the stream's declared branch count. Needs
    /// a source with a branch hint (or fraction 0) — pure `feed` streams
    /// and hint-less sources must use [`Warmup::Branches`].
    Fraction(f64),
    /// Warm for exactly this many branch events.
    Branches(u64),
}

/// Options for a [`SimSession`].
#[derive(Clone, Debug)]
pub struct SessionOptions {
    /// Warm-up policy (default: 10 % of the declared branch count).
    pub warmup: Warmup,
    /// Hardware threads to provision per-thread context for. `None`
    /// provisions the model maximum ([`stbpu_bpu::MAX_THREADS`]); sources
    /// with declared thread counts can be passed explicitly. Every event's
    /// `tid` is validated against the provision.
    pub threads: Option<usize>,
    /// When set, close an [`IntervalWindow`] every this many branches and
    /// report it to observers via [`SimObserver::on_interval`].
    pub interval: Option<u64>,
    /// Workload label for the final report. `None` takes the name of the
    /// first source passed to [`SimSession::run`].
    pub workload: Option<String>,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            warmup: Warmup::Fraction(0.1),
            threads: None,
            interval: None,
            workload: None,
        }
    }
}

/// Events pulled per [`EventSource::next_batch`] refill inside
/// [`SimSession::run`] — large enough to amortize per-batch overhead,
/// small enough to stay cache-resident (~100 KB of events).
const RUN_BATCH: usize = 4_096;

/// An incremental simulation: one model under one protection policy,
/// consuming trace events as they arrive.
///
/// Where [`crate::simulate_with`] demands a fully materialized
/// [`stbpu_trace::Trace`], a session accepts events from any
/// [`EventSource`] (or one at a time via [`SimSession::feed`], or in
/// slices via [`SimSession::feed_batch`]), so run length is never bounded
/// by memory — a 10M-branch generator-sourced run holds only the model
/// and a few counters. Attached [`SimObserver`]s see branches, flushes,
/// context switches, re-randomizations and interval windows as they
/// happen.
///
/// # Throughput
///
/// The session is generic over the model type. `B = dyn Bpu` (the
/// default, what `Box<dyn Bpu>` callers get) dispatches every branch
/// virtually; instantiating with a concrete model — e.g. the engine's
/// sealed `ModelCore` enum — monomorphizes the hot loop so predictor,
/// mapper and BTB calls inline. [`SimSession::run`] pulls events in
/// batches and [`SimSession::feed_batch`] takes a no-observer fast path
/// that skips all hook bookkeeping; both are bit-identical to per-event
/// [`SimSession::feed`] (test-enforced), they only cost less.
///
/// ```
/// use stbpu_predictors::skl_baseline;
/// use stbpu_sim::{Protection, SessionOptions, SimSession};
/// use stbpu_trace::{TraceGenerator, WorkloadProfile};
///
/// let mut model = skl_baseline();
/// let mut session = SimSession::new(
///     &mut model,
///     Protection::Unprotected,
///     SessionOptions::default(),
/// )
/// .unwrap();
/// let mut src = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).into_source(10_000);
/// session.run(&mut src).unwrap();
/// let report = session.finish();
/// assert_eq!(report.branches, 9_000); // 10 % warm-up excluded
/// assert!(report.oae > 0.5);
/// ```
pub struct SimSession<'a, B: Bpu + ?Sized = dyn Bpu + 'a> {
    model: &'a mut B,
    policy: Protection,
    threads: usize,
    /// Per-thread context: the user entity to return to after kernel exits.
    user_entity: Vec<EntityId>,
    /// `None` until a fraction warm-up is resolved against a branch hint.
    warmup_target: Option<u64>,
    pending_fraction: f64,
    seen: u64,
    warmed: bool,
    interval: Option<u64>,
    window: IntervalWindow,
    last_rerand: u64,
    workload: Option<String>,
    observers: Vec<&'a mut dyn SimObserver>,
    /// Reused pull buffer for [`SimSession::run`] — one allocation per
    /// session, no per-batch churn.
    batch_buf: Vec<TraceEvent>,
}

impl<'a, B: Bpu + ?Sized> SimSession<'a, B> {
    /// Opens a session for `model` under `policy`.
    ///
    /// # Errors
    ///
    /// [`SimError::WarmupOutOfRange`] for a fraction outside `[0, 1)`,
    /// [`SimError::TooManyThreads`] for an explicit thread provision above
    /// the model limit.
    pub fn new(
        model: &'a mut B,
        policy: Protection,
        opts: SessionOptions,
    ) -> Result<Self, SimError> {
        let (warmup_target, pending_fraction) = match opts.warmup {
            Warmup::Branches(n) => (Some(n), 0.0),
            Warmup::Fraction(f) => {
                if !(0.0..1.0).contains(&f) {
                    return Err(SimError::WarmupOutOfRange(f));
                }
                if f == 0.0 {
                    (Some(0), 0.0)
                } else {
                    (None, f)
                }
            }
        };
        let threads = opts
            .threads
            .map(|t| t.max(1))
            .unwrap_or(stbpu_bpu::MAX_THREADS);
        if threads > stbpu_bpu::MAX_THREADS {
            return Err(SimError::TooManyThreads {
                requested: threads,
                max: stbpu_bpu::MAX_THREADS,
            });
        }
        model.set_partitioned(policy.partitions());
        let last_rerand = model.rerandomizations();
        Ok(SimSession {
            model,
            policy,
            threads,
            user_entity: vec![EntityId::user(0); threads],
            warmed: warmup_target == Some(0),
            warmup_target,
            pending_fraction,
            seen: 0,
            interval: opts.interval,
            window: IntervalWindow::default(),
            last_rerand,
            workload: opts.workload,
            observers: Vec::new(),
            batch_buf: Vec::new(),
        })
    }

    /// Attaches an observer for the rest of the session.
    pub fn attach(&mut self, observer: &'a mut dyn SimObserver) {
        // Branches fed while no observer was listening take the fast path
        // and do not track re-randomization deltas; resync so the first
        // observed branch doesn't replay history nobody subscribed to.
        if self.observers.is_empty() {
            self.last_rerand = self.model.rerandomizations();
        }
        self.observers.push(observer);
    }

    /// Branch events fed so far (warm-up included).
    pub fn branches_seen(&self) -> u64 {
        self.seen
    }

    fn check(&self, tid: u8) -> Result<usize, SimError> {
        let tid = tid as usize;
        if tid < self.threads {
            Ok(tid)
        } else {
            Err(SimError::ThreadOutOfRange {
                tid,
                threads: self.threads,
            })
        }
    }

    fn close_window(&mut self) {
        let w = self.window;
        for obs in self.observers.iter_mut() {
            obs.on_interval(&w);
        }
        self.window = IntervalWindow {
            start_branch: self.seen,
            ..IntervalWindow::default()
        };
    }

    fn record_flush(&mut self, kind: FlushKind) {
        self.window.flushes += 1;
        for obs in self.observers.iter_mut() {
            obs.on_flush(kind);
        }
    }

    fn notify_context_switch(&mut self, tid: usize, entity: EntityId) {
        for obs in self.observers.iter_mut() {
            obs.on_context_switch(tid, entity);
        }
    }

    /// Feeds one event through the session.
    ///
    /// # Errors
    ///
    /// [`SimError::ThreadOutOfRange`] for an event outside the provisioned
    /// threads; [`SimError::WarmupNeedsBranchCount`] when a fractional
    /// warm-up was requested but no branch hint has resolved it (run a
    /// hinted source first, or use [`Warmup::Branches`]).
    pub fn feed(&mut self, ev: &TraceEvent) -> Result<(), SimError> {
        match *ev {
            TraceEvent::Branch { tid, ref rec } => {
                let target = self.warmup_target.ok_or(SimError::WarmupNeedsBranchCount)?;
                let tid = self.check(tid)?;
                let outcome = self.model.process(tid, rec);
                self.seen += 1;
                if !self.warmed && self.seen >= target {
                    self.model.reset_stats();
                    self.warmed = true;
                }
                self.window.branches += 1;
                self.window.effective_correct += u64::from(outcome.effective_correct);
                self.window.mispredictions += u64::from(outcome.mispredicted);
                let rerand = self.model.rerandomizations();
                if rerand > self.last_rerand {
                    self.window.rerandomizations += rerand - self.last_rerand;
                    self.last_rerand = rerand;
                    for obs in self.observers.iter_mut() {
                        obs.on_rerandomize(rerand);
                    }
                }
                for obs in self.observers.iter_mut() {
                    obs.on_branch(tid, rec, &outcome);
                }
                if self.interval.is_some_and(|n| self.window.branches >= n) {
                    self.close_window();
                }
            }
            TraceEvent::ContextSwitch { tid, entity } => {
                let tid = self.check(tid)?;
                self.user_entity[tid] = entity;
                self.model.context_switch(tid, entity);
                self.notify_context_switch(tid, entity);
                if self.policy.flushes_on_context_switch() {
                    self.model.flush(); // IBPB
                    self.record_flush(FlushKind::Full);
                }
            }
            TraceEvent::ModeSwitch { tid, kernel } => {
                let tid = self.check(tid)?;
                if kernel {
                    self.model.context_switch(tid, EntityId::KERNEL);
                    self.notify_context_switch(tid, EntityId::KERNEL);
                    if self.policy.flushes_targets_on_kernel_entry() {
                        // IBRS: no user-placed targets in kernel.
                        self.model.flush_targets();
                        self.record_flush(FlushKind::Targets);
                    }
                } else {
                    let entity = self.user_entity[tid];
                    self.model.context_switch(tid, entity);
                    self.notify_context_switch(tid, entity);
                }
            }
            TraceEvent::Interrupt { tid } => {
                // Delivery itself is free; the kernel excursion follows as
                // ModeSwitch events.
                self.check(tid)?;
            }
        }
        Ok(())
    }

    /// Feeds a slice of events through the session — semantically
    /// identical to calling [`SimSession::feed`] per event (bit-identical
    /// results and observer callback sequences, test-enforced), but when
    /// no observer is attached and no interval is configured the branch
    /// loop skips all hook bookkeeping (window counters, observer
    /// iteration, re-randomization delta tracking).
    ///
    /// # Errors
    ///
    /// Everything [`SimSession::feed`] can return; the batch stops at the
    /// first failing event (earlier events remain applied, as with
    /// per-event feeding).
    pub fn feed_batch(&mut self, events: &[TraceEvent]) -> Result<(), SimError> {
        if !self.observers.is_empty() || self.interval.is_some() {
            for ev in events {
                self.feed(ev)?;
            }
            return Ok(());
        }
        for ev in events {
            if let TraceEvent::Branch { tid, ref rec } = *ev {
                let target = self.warmup_target.ok_or(SimError::WarmupNeedsBranchCount)?;
                let tid = self.check(tid)?;
                self.model.process(tid, rec);
                self.seen += 1;
                if !self.warmed && self.seen >= target {
                    self.model.reset_stats();
                    self.warmed = true;
                }
            } else {
                // Rare control events keep the one shared implementation
                // (the observer loops it runs are over an empty vec).
                self.feed(ev)?;
            }
        }
        Ok(())
    }

    /// Pumps `source` to exhaustion through the session, pulling events
    /// in batches (via [`EventSource::next_batch`] into a reused internal
    /// buffer) and feeding them through [`SimSession::feed_batch`].
    /// Resolves a pending fractional warm-up from the source's branch
    /// hint and takes the source's name as the workload label if none was
    /// set.
    ///
    /// # Errors
    ///
    /// [`SimError::Source`] when the source fails mid-stream, plus
    /// everything [`SimSession::feed`] can return.
    pub fn run(&mut self, source: &mut dyn EventSource) -> Result<(), SimError> {
        if self.workload.is_none() {
            self.workload = Some(source.name().to_string());
        }
        if self.warmup_target.is_none() {
            let hint = source
                .branch_hint()
                .ok_or(SimError::WarmupNeedsBranchCount)?;
            let target = (hint as f64 * self.pending_fraction) as u64;
            self.warmup_target = Some(target);
            self.warmed = self.warmed || target == 0;
        }
        let mut buf = std::mem::take(&mut self.batch_buf);
        let result = loop {
            match source.next_batch(&mut buf, RUN_BATCH) {
                Err(e) => break Err(SimError::from(e)),
                Ok(0) => break Ok(()),
                Ok(_) => {
                    if let Err(e) = self.feed_batch(&buf) {
                        break Err(e);
                    }
                }
            }
        };
        self.batch_buf = buf;
        result
    }

    /// Ends the session: flushes a final partial interval window to the
    /// observers and produces the aggregated report.
    pub fn finish(mut self) -> SimReport {
        if self.interval.is_some() && self.window.branches > 0 {
            self.close_window();
        }
        let s = self.model.stats();
        SimReport {
            model: self.model.name().to_string(),
            protection: self.policy.label(),
            workload: self.workload.unwrap_or_else(|| "unnamed".to_string()),
            oae: s.oae(),
            direction_rate: s.direction_rate(),
            target_rate: s.target_rate(),
            branches: s.branches,
            mispredictions: s.mispredictions,
            evictions: s.btb_evictions,
            flushes: s.flushes,
            rerandomizations: self.model.rerandomizations(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::IntervalRecorder;
    use stbpu_bpu::{BranchOutcome, BranchRecord};
    use stbpu_predictors::skl_baseline;
    use stbpu_trace::{profiles, TraceGenerator, WorkloadProfile};

    fn opts_nowarm() -> SessionOptions {
        SessionOptions {
            warmup: Warmup::Branches(0),
            ..SessionOptions::default()
        }
    }

    #[test]
    fn feed_by_hand_matches_run() {
        let trace = TraceGenerator::new(&WorkloadProfile::test_profile(), 4).generate(2_000);

        let mut m1 = skl_baseline();
        let mut s1 = SimSession::new(&mut m1, Protection::Unprotected, opts_nowarm()).unwrap();
        for ev in trace.events() {
            s1.feed(ev).unwrap();
        }
        let r1 = s1.finish();

        let mut m2 = skl_baseline();
        let mut s2 = SimSession::new(&mut m2, Protection::Unprotected, opts_nowarm()).unwrap();
        s2.run(&mut trace.source()).unwrap();
        let r2 = s2.finish();

        assert_eq!(r1.oae, r2.oae);
        assert_eq!(r1.mispredictions, r2.mispredictions);
        assert_eq!(r1.branches, 2_000);
        // feed-by-hand had no source, so no workload label.
        assert_eq!(r1.workload, "unnamed");
        assert_eq!(r2.workload, trace.name);
    }

    #[test]
    fn fractional_warmup_needs_a_hint() {
        let mut m = skl_baseline();
        let mut s = SimSession::new(
            &mut m,
            Protection::Unprotected,
            SessionOptions {
                warmup: Warmup::Fraction(0.5),
                ..SessionOptions::default()
            },
        )
        .unwrap();
        let ev = TraceEvent::Branch {
            tid: 0,
            rec: BranchRecord::conditional(0x4000, true, 0x4100),
        };
        assert_eq!(s.feed(&ev).unwrap_err(), SimError::WarmupNeedsBranchCount);
    }

    #[test]
    fn bad_fraction_rejected_at_open() {
        let mut m = skl_baseline();
        let err = SimSession::new(
            &mut m,
            Protection::Unprotected,
            SessionOptions {
                warmup: Warmup::Fraction(1.0),
                ..SessionOptions::default()
            },
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err, SimError::WarmupOutOfRange(1.0));
    }

    #[test]
    fn interval_windows_partition_the_stream() {
        let mut m = skl_baseline();
        let mut rec = IntervalRecorder::new();
        let mut s = SimSession::new(
            &mut m,
            Protection::Unprotected,
            SessionOptions {
                warmup: Warmup::Branches(0),
                interval: Some(500),
                ..SessionOptions::default()
            },
        )
        .unwrap();
        s.attach(&mut rec);
        let mut src = TraceGenerator::new(&WorkloadProfile::test_profile(), 7).into_source(1_750);
        s.run(&mut src).unwrap();
        let report = s.finish();
        let windows = rec.windows();
        assert_eq!(windows.len(), 4, "3 full + 1 partial window");
        assert_eq!(windows.iter().map(|w| w.branches).sum::<u64>(), 1_750);
        assert_eq!(windows[3].branches, 250);
        assert_eq!(windows[1].start_branch, 500);
        assert!(windows.iter().all(|w| w.oae() > 0.0));
        assert_eq!(report.branches, 1_750);
    }

    #[test]
    fn observers_see_flushes_and_switches() {
        #[derive(Default)]
        struct Counter {
            branches: u64,
            flushes: u64,
            switches: u64,
        }
        impl SimObserver for Counter {
            fn on_branch(&mut self, _: usize, _: &BranchRecord, _: &BranchOutcome) {
                self.branches += 1;
            }
            fn on_flush(&mut self, _: FlushKind) {
                self.flushes += 1;
            }
            fn on_context_switch(&mut self, _: usize, _: EntityId) {
                self.switches += 1;
            }
        }
        let p = profiles::by_name("apache2_prefork_c256").unwrap();
        let trace = TraceGenerator::new(p, 11).generate(5_000);
        let mut m = skl_baseline();
        let mut c = Counter::default();
        let mut s = SimSession::new(&mut m, Protection::Ucode1, opts_nowarm()).unwrap();
        s.attach(&mut c);
        s.run(&mut trace.source()).unwrap();
        let report = s.finish();
        assert_eq!(c.branches, 5_000);
        assert!(c.flushes > 0, "ucode1 must flush on apache");
        assert_eq!(
            report.flushes, c.flushes,
            "observer and model agree on flush count (no warm-up reset)"
        );
        assert!(
            c.switches as usize >= trace.context_switches(),
            "every context switch observed"
        );
    }

    #[test]
    fn rerandomizations_reach_observers() {
        use stbpu_core::{st_skl, StConfig};
        #[derive(Default)]
        struct Rerand {
            fired: u64,
        }
        impl SimObserver for Rerand {
            fn on_rerandomize(&mut self, _total: u64) {
                self.fired += 1;
            }
        }
        let cfg = StConfig {
            r: 1.0,
            misp_complexity: 100.0,
            eviction_complexity: 100.0,
            ..StConfig::default()
        };
        let mut m = st_skl(cfg, 3);
        let mut obs = Rerand::default();
        let mut s = SimSession::new(&mut m, Protection::Stbpu, opts_nowarm()).unwrap();
        s.attach(&mut obs);
        let mut src =
            TraceGenerator::new(profiles::by_name("541.leela").unwrap(), 5).into_source(8_000);
        s.run(&mut src).unwrap();
        let report = s.finish();
        assert!(report.rerandomizations > 0, "thresholds must trip");
        assert!(obs.fired > 0, "observer must hear about it");
    }
}

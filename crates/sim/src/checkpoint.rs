//! The versioned `.stck` checkpoint container: a complete simulation
//! snapshot (model tables, mapper tokens, session bookkeeping) that a
//! fresh process can resume bit-identically.
//!
//! # File format (version 1)
//!
//! All multi-byte scalars are little-endian; `varint` is the same LEB128
//! encoding the `.stbt` trace format uses ([`stbpu_trace::binfmt`]).
//!
//! | field             | encoding                                  |
//! |-------------------|-------------------------------------------|
//! | magic             | 4 bytes `"STCK"`                          |
//! | version           | u16 LE (currently 1)                      |
//! | flags             | u16 LE (must be 0)                        |
//! | model spec        | varint length + UTF-8 bytes               |
//! | workload          | varint length + UTF-8 bytes               |
//! | protection        | 1 byte ([`Protection`] code)              |
//! | seed              | varint                                    |
//! | events consumed   | varint (trace events fed, all kinds)      |
//! | branches seen     | varint (branch events fed, warm-up incl.) |
//! | session state     | varint length + opaque snapshot bytes     |
//! | model state       | varint length + opaque snapshot bytes     |
//! | checksum          | u64 LE, FNV-1a 64 of all preceding bytes  |
//!
//! The session and model state blobs are the [`stbpu_bpu::StateWriter`]
//! streams produced by [`OwnedSession::save_session_state`] and
//! [`stbpu_bpu::Bpu::save_state`]; their internal layout is owned by the
//! components themselves and validated on load. The model is *rebuilt*
//! from the spec string and seed before the blob is applied, so
//! configuration never travels in the blob — only mutable state does.
//!
//! Decoding is total: any truncated, corrupt or alien input produces a
//! positioned [`CheckpointError`], never a panic (this module is in the
//! `stbpu analyze` panic-freedom lint scope).

use crate::session::OwnedSession;
use crate::{Protection, SimError};
use stbpu_bpu::{Bpu, SnapError, StateReader, StateWriter};
use stbpu_trace::binfmt::{decode_varint, push_varint};
use std::path::Path;

/// Magic bytes opening every checkpoint file.
pub const STCK_MAGIC: [u8; 4] = *b"STCK";
/// Current format version.
pub const STCK_VERSION: u16 = 1;

/// A decode/validation failure with the byte offset where it was
/// detected (I/O failures report offset 0).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointError {
    /// Byte offset into the checkpoint stream where the problem was
    /// detected.
    pub offset: usize,
    /// Human-readable description.
    pub msg: String,
}

impl CheckpointError {
    /// An error at `offset`.
    pub fn new(offset: usize, msg: impl Into<String>) -> Self {
        CheckpointError {
            offset,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "checkpoint error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for CheckpointError {}

impl From<SnapError> for CheckpointError {
    fn from(e: SnapError) -> Self {
        CheckpointError::new(e.offset, format!("state snapshot: {}", e.msg))
    }
}

impl Protection {
    /// The stable one-byte code this policy serializes as.
    pub fn code(self) -> u8 {
        match self {
            Protection::Unprotected => 0,
            Protection::Stbpu => 1,
            Protection::Ucode1 => 2,
            Protection::Ucode2 => 3,
            Protection::Conservative => 4,
        }
    }

    /// Inverse of [`Protection::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Protection::Unprotected),
            1 => Some(Protection::Stbpu),
            2 => Some(Protection::Ucode1),
            3 => Some(Protection::Ucode2),
            4 => Some(Protection::Conservative),
            _ => None,
        }
    }
}

/// One complete simulation snapshot, decoded from (or ready to encode
/// into) a `.stck` file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Registry spec of the model (e.g. `st_skl@r=0.05`) — resume rebuilds
    /// the model from this and `seed` before applying `model_state`.
    pub model_spec: String,
    /// Workload label the session carries.
    pub workload: String,
    /// Protection policy the session runs under.
    pub protection: Protection,
    /// Seed the model was built with.
    pub seed: u64,
    /// Trace events consumed so far (all kinds — the resume skip count).
    pub events_consumed: u64,
    /// Branch events consumed so far (warm-up included).
    pub branches_seen: u64,
    /// Opaque session bookkeeping snapshot.
    pub session_state: Vec<u8>,
    /// Opaque model state snapshot.
    pub model_state: Vec<u8>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over `data` — the checkpoint trailer checksum.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Bounds-checked cursor over an encoded checkpoint.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn err(&self, msg: impl Into<String>) -> CheckpointError {
        CheckpointError::new(self.pos, msg)
    }

    fn rest(&self) -> &'a [u8] {
        self.buf.get(self.pos..).unwrap_or(&[])
    }

    fn u8(&mut self, what: &str) -> Result<u8, CheckpointError> {
        let b = *self
            .rest()
            .first()
            .ok_or_else(|| self.err(format!("truncated reading {what}")))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self, what: &str) -> Result<u64, CheckpointError> {
        match decode_varint(self.rest()) {
            Ok(Some((v, n))) => {
                self.pos += n;
                Ok(v)
            }
            Ok(None) => Err(self.err(format!("truncated varint reading {what}"))),
            Err(_) => Err(self.err(format!("varint overflow reading {what}"))),
        }
    }

    fn bytes(&mut self, what: &str) -> Result<&'a [u8], CheckpointError> {
        let len = self.varint(what)?;
        let len = usize::try_from(len)
            .map_err(|_| self.err(format!("{what} length {len} exceeds address space")))?;
        let end = self
            .pos
            .checked_add(len)
            .ok_or_else(|| self.err(format!("{what} length overflows")))?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| self.err(format!("truncated {what}: {len} bytes declared")))?;
        self.pos = end;
        Ok(slice)
    }

    fn str(&mut self, what: &str) -> Result<&'a str, CheckpointError> {
        let start = self.pos;
        let raw = self.bytes(what)?;
        std::str::from_utf8(raw)
            .map_err(|_| CheckpointError::new(start, format!("{what} is not valid UTF-8")))
    }
}

impl Checkpoint {
    /// Snapshots a live session: the session bookkeeping, the model's
    /// complete mutable state, and the resume coordinates.
    ///
    /// # Errors
    ///
    /// [`SnapError`] (converted) when the model does not support state
    /// snapshots.
    pub fn capture<B: Bpu>(
        session: &OwnedSession<B>,
        model_spec: &str,
        seed: u64,
        events_consumed: u64,
    ) -> Result<Checkpoint, CheckpointError> {
        let mut sw = StateWriter::new();
        session.save_session_state(&mut sw);
        let mut mw = StateWriter::new();
        session.model().save_state(&mut mw)?;
        Ok(Checkpoint {
            model_spec: model_spec.to_string(),
            workload: session.workload().unwrap_or("unnamed").to_string(),
            protection: session.protection(),
            seed,
            events_consumed,
            branches_seen: session.branches_seen(),
            session_state: sw.into_bytes(),
            model_state: mw.into_bytes(),
        })
    }

    /// Applies this checkpoint's session and model state to `session`,
    /// which must have been opened under [`Checkpoint::protection`] over
    /// a model freshly built from [`Checkpoint::model_spec`] and
    /// [`Checkpoint::seed`].
    ///
    /// # Errors
    ///
    /// A positioned [`CheckpointError`] when either blob does not match
    /// the session/model geometry.
    pub fn apply<B: Bpu>(&self, session: &mut OwnedSession<B>) -> Result<(), CheckpointError> {
        let mut r = StateReader::new(&self.session_state);
        session.load_session_state(&mut r)?;
        r.expect_end()?;
        let mut r = StateReader::new(&self.model_state);
        session.model_mut().load_state(&mut r)?;
        Ok(())
    }

    /// Encodes the checkpoint into the `.stck` byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&STCK_MAGIC);
        out.extend_from_slice(&STCK_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // flags
        push_varint(&mut out, self.model_spec.len() as u64);
        out.extend_from_slice(self.model_spec.as_bytes());
        push_varint(&mut out, self.workload.len() as u64);
        out.extend_from_slice(self.workload.as_bytes());
        out.push(self.protection.code());
        push_varint(&mut out, self.seed);
        push_varint(&mut out, self.events_consumed);
        push_varint(&mut out, self.branches_seen);
        push_varint(&mut out, self.session_state.len() as u64);
        out.extend_from_slice(&self.session_state);
        push_varint(&mut out, self.model_state.len() as u64);
        out.extend_from_slice(&self.model_state);
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes a checkpoint, validating magic, version, flags, framing
    /// and the trailer checksum.
    ///
    /// # Errors
    ///
    /// A positioned [`CheckpointError`] on any malformed input; decoding
    /// never panics.
    pub fn from_bytes(data: &[u8]) -> Result<Checkpoint, CheckpointError> {
        const HEAD: usize = 8;
        const TAIL: usize = 8;
        if data.len() < HEAD + TAIL {
            return Err(CheckpointError::new(
                data.len(),
                format!(
                    "file too short for a checkpoint: {} bytes (need at least {})",
                    data.len(),
                    HEAD + TAIL
                ),
            ));
        }
        let magic = data.get(0..4).unwrap_or(&[]);
        if magic != STCK_MAGIC {
            return Err(CheckpointError::new(
                0,
                format!("bad magic {magic:02x?}, expected \"STCK\""),
            ));
        }
        let word = |at: usize| -> u16 {
            let lo = data.get(at).copied().unwrap_or(0);
            let hi = data.get(at + 1).copied().unwrap_or(0);
            u16::from_le_bytes([lo, hi])
        };
        let version = word(4);
        if version != STCK_VERSION {
            return Err(CheckpointError::new(
                4,
                format!(
                    "unsupported checkpoint version {version} (this build reads {STCK_VERSION})"
                ),
            ));
        }
        let flags = word(6);
        if flags != 0 {
            return Err(CheckpointError::new(
                6,
                format!("unsupported flags {flags:#06x} (no flags are defined in version 1)"),
            ));
        }
        let body_end = data.len() - TAIL;
        let stored = {
            let mut raw = [0u8; 8];
            for (i, slot) in raw.iter_mut().enumerate() {
                *slot = data.get(body_end + i).copied().unwrap_or(0);
            }
            u64::from_le_bytes(raw)
        };
        let actual = fnv1a64(data.get(..body_end).unwrap_or(&[]));
        if stored != actual {
            return Err(CheckpointError::new(
                body_end,
                format!("checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"),
            ));
        }
        let mut cur = Cur {
            buf: data.get(..body_end).unwrap_or(&[]),
            pos: HEAD,
        };
        let model_spec = cur.str("model spec")?.to_string();
        let workload = cur.str("workload")?.to_string();
        let code_at = cur.pos;
        let code = cur.u8("protection code")?;
        let protection = Protection::from_code(code).ok_or_else(|| {
            CheckpointError::new(code_at, format!("unknown protection code {code}"))
        })?;
        let seed = cur.varint("seed")?;
        let events_consumed = cur.varint("events consumed")?;
        let branches_seen = cur.varint("branches seen")?;
        let session_state = cur.bytes("session state")?.to_vec();
        let model_state = cur.bytes("model state")?.to_vec();
        if cur.pos != body_end {
            return Err(CheckpointError::new(
                cur.pos,
                format!("{} trailing bytes after model state", body_end - cur.pos),
            ));
        }
        Ok(Checkpoint {
            model_spec,
            workload,
            protection,
            seed,
            events_consumed,
            branches_seen,
            session_state,
            model_state,
        })
    }

    /// Writes the checkpoint to `path` atomically (temp file in the same
    /// directory, then rename), so a crash mid-write never leaves a
    /// half-written `.stck` behind.
    ///
    /// # Errors
    ///
    /// I/O failures, reported with offset 0.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let tmp = path.with_extension("stck.tmp");
        let io = |e: std::io::Error| CheckpointError::new(0, format!("{}: {e}", path.display()));
        std::fs::write(&tmp, self.to_bytes()).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Reads and decodes a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// I/O failures (offset 0) and everything [`Checkpoint::from_bytes`]
    /// can return.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let data = std::fs::read(path)
            .map_err(|e| CheckpointError::new(0, format!("{}: {e}", path.display())))?;
        Checkpoint::from_bytes(&data)
    }
}

impl From<CheckpointError> for SimError {
    fn from(e: CheckpointError) -> Self {
        SimError::Source(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SessionOptions, Warmup};
    use stbpu_predictors::skl_baseline;
    use stbpu_trace::{TraceGenerator, WorkloadProfile};

    fn sample() -> Checkpoint {
        let opts = SessionOptions {
            warmup: Warmup::Branches(0),
            interval: Some(500),
            ..SessionOptions::default()
        };
        let mut s = OwnedSession::new(skl_baseline(), Protection::Stbpu, opts).unwrap();
        let mut src = TraceGenerator::new(&WorkloadProfile::test_profile(), 3).into_source(1_200);
        s.run(&mut src).unwrap();
        Checkpoint::capture(&s, "skl", 7, 1_234).unwrap()
    }

    #[test]
    fn roundtrips_bit_exactly() {
        let cp = sample();
        let bytes = cp.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.to_bytes(), bytes, "re-encode is byte-identical");
    }

    #[test]
    fn every_truncation_is_a_positioned_error() {
        let bytes = sample().to_bytes();
        for n in 0..bytes.len() {
            let err = Checkpoint::from_bytes(&bytes[..n])
                .expect_err("truncated checkpoint must not decode");
            assert!(err.offset <= n, "offset {} past truncation {n}", err.offset);
        }
    }

    #[test]
    fn corruption_is_caught_by_the_checksum() {
        let mut bytes = sample().to_bytes();
        // Flip one bit in the middle of the body.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert!(err.msg.contains("checksum mismatch"), "{}", err.msg);
    }

    #[test]
    fn alien_headers_are_rejected_up_front() {
        let cp = sample();
        let mut bad_magic = cp.to_bytes();
        bad_magic[0] = b'X';
        assert_eq!(Checkpoint::from_bytes(&bad_magic).unwrap_err().offset, 0);

        let mut v2 = cp.to_bytes();
        v2[4] = 2;
        let body_end = v2.len() - 8;
        let sum = fnv1a64(&v2[..body_end]);
        v2[body_end..].copy_from_slice(&sum.to_le_bytes());
        let err = Checkpoint::from_bytes(&v2).unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.msg.contains("version 2"), "{}", err.msg);

        let mut flagged = cp.to_bytes();
        flagged[6] = 1;
        let sum = fnv1a64(&flagged[..body_end]);
        flagged[body_end..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(Checkpoint::from_bytes(&flagged).unwrap_err().offset, 6);
    }

    #[test]
    fn protection_codes_roundtrip() {
        for p in [
            Protection::Unprotected,
            Protection::Stbpu,
            Protection::Ucode1,
            Protection::Ucode2,
            Protection::Conservative,
        ] {
            assert_eq!(Protection::from_code(p.code()), Some(p));
        }
        assert_eq!(Protection::from_code(5), None);
    }

    #[test]
    fn save_load_via_disk() {
        let dir = std::env::temp_dir().join("stck-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.stck");
        let cp = sample();
        cp.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), cp);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn capture_apply_resume_is_bit_identical() {
        // Simulate 2_000 events straight through...
        let trace = TraceGenerator::new(&WorkloadProfile::test_profile(), 9).generate(2_500);
        let opts = || SessionOptions {
            warmup: Warmup::Branches(100),
            ..SessionOptions::default()
        };
        let mut full = OwnedSession::new(skl_baseline(), Protection::Unprotected, opts()).unwrap();
        full.begin(&trace.name, Some(trace.branch_count() as u64))
            .unwrap();
        full.feed_batch(trace.events()).unwrap();
        let r_full = full.finish();

        // ...and in two halves through a checkpoint.
        let cut = trace.events().len() / 2;
        let mut first = OwnedSession::new(skl_baseline(), Protection::Unprotected, opts()).unwrap();
        first
            .begin(&trace.name, Some(trace.branch_count() as u64))
            .unwrap();
        first.feed_batch(&trace.events()[..cut]).unwrap();
        let cp = Checkpoint::capture(&first, "skl", 0, cut as u64).unwrap();
        let bytes = cp.to_bytes();

        let cp = Checkpoint::from_bytes(&bytes).unwrap();
        let mut resumed = OwnedSession::new(
            skl_baseline(),
            cp.protection,
            SessionOptions {
                warmup: Warmup::Branches(0),
                ..SessionOptions::default()
            },
        )
        .unwrap();
        cp.apply(&mut resumed).unwrap();
        resumed.feed_batch(&trace.events()[cut..]).unwrap();
        let r_resumed = resumed.finish();

        assert_eq!(r_full.oae.to_bits(), r_resumed.oae.to_bits());
        assert_eq!(r_full.branches, r_resumed.branches);
        assert_eq!(r_full.mispredictions, r_resumed.mispredictions);
        assert_eq!(r_full.workload, r_resumed.workload);
    }
}

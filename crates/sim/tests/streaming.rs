//! Streaming equivalence: the incremental session over any source must be
//! indistinguishable from the materialized `simulate_with` path.

use stbpu_core::{st_skl, StConfig};
use stbpu_predictors::skl_baseline;
use stbpu_sim::{
    simulate_with, Protection, SessionOptions, SimOptions, SimReport, SimSession, Warmup,
};
use stbpu_trace::serialize::{write_trace, TraceReader};
use stbpu_trace::{profiles, EventSource, TraceGenerator};

fn assert_reports_identical(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.oae, b.oae, "{what}: oae");
    assert_eq!(a.direction_rate, b.direction_rate, "{what}: direction");
    assert_eq!(a.target_rate, b.target_rate, "{what}: target");
    assert_eq!(a.branches, b.branches, "{what}: branches");
    assert_eq!(a.mispredictions, b.mispredictions, "{what}: misp");
    assert_eq!(a.evictions, b.evictions, "{what}: evictions");
    assert_eq!(a.flushes, b.flushes, "{what}: flushes");
    assert_eq!(
        a.rerandomizations, b.rerandomizations,
        "{what}: rerandomizations"
    );
    assert_eq!(a.workload, b.workload, "{what}: workload");
    assert_eq!(a.model, b.model, "{what}: model");
}

/// Session over a generator source must produce bit-identical reports to
/// `simulate_with` over the materialized trace — for every protection
/// scheme, including the stateful STBPU monitor.
#[test]
fn generator_source_bit_identical_to_materialized() {
    for (workload, policy) in [
        ("525.x264", Protection::Unprotected),
        ("apache2_prefork_c128", Protection::Ucode1),
        ("apache2_prefork_c128", Protection::Ucode2),
        ("mysql_64con_50s", Protection::Conservative),
    ] {
        let p = profiles::by_name(workload).unwrap();
        let trace = TraceGenerator::new(p, 17).generate(12_000);
        let mut m1 = skl_baseline();
        let reference = simulate_with(
            &mut m1,
            policy,
            &trace,
            &SimOptions {
                warmup_frac: 0.1,
                threads: None,
            },
        )
        .unwrap();

        let mut m2 = skl_baseline();
        let mut session = SimSession::new(
            &mut m2,
            policy,
            SessionOptions {
                warmup: Warmup::Fraction(0.1),
                threads: Some(trace.thread_count().max(1)),
                ..SessionOptions::default()
            },
        )
        .unwrap();
        let mut src = TraceGenerator::new(p, 17).into_source(12_000);
        session.run(&mut src).unwrap();
        let streamed = session.finish();

        assert_reports_identical(&streamed, &reference, workload);
    }
}

/// Same equivalence for the secret-token model, whose monitor state
/// (misprediction/eviction counters, re-randomizations) is order-
/// sensitive: any divergence in event order or warm-up timing shows up.
#[test]
fn stbpu_monitor_state_streams_identically() {
    let p = profiles::by_name("541.leela").unwrap();
    let cfg = StConfig {
        r: 1.0,
        misp_complexity: 400.0,
        eviction_complexity: 400.0,
        ..StConfig::default()
    };
    let trace = TraceGenerator::new(p, 23).generate(15_000);
    let mut m1 = st_skl(cfg, 9);
    let reference = simulate_with(
        &mut m1,
        Protection::Stbpu,
        &trace,
        &SimOptions {
            warmup_frac: 0.2,
            threads: None,
        },
    )
    .unwrap();
    assert!(reference.rerandomizations > 0, "monitor must trip");

    let mut m2 = st_skl(cfg, 9);
    let mut session = SimSession::new(
        &mut m2,
        Protection::Stbpu,
        SessionOptions {
            warmup: Warmup::Fraction(0.2),
            threads: Some(trace.thread_count().max(1)),
            ..SessionOptions::default()
        },
    )
    .unwrap();
    session
        .run(&mut TraceGenerator::new(p, 23).into_source(15_000))
        .unwrap();
    assert_reports_identical(&session.finish(), &reference, "st_skl");
}

/// The file-reader source must round-trip `serialize` output: simulating
/// the streamed file equals simulating the in-memory original.
#[test]
fn file_reader_round_trips_serialize_output() {
    let p = profiles::by_name("apache2_prefork_c128").unwrap();
    let trace = TraceGenerator::new(p, 5).generate(8_000);
    let mut file = Vec::new();
    write_trace(&trace, &mut file).unwrap();

    let mut m1 = skl_baseline();
    let reference = simulate_with(
        &mut m1,
        Protection::Ucode1,
        &trace,
        &SimOptions {
            warmup_frac: 0.1,
            threads: None,
        },
    )
    .unwrap();

    let mut reader = TraceReader::new(file.as_slice()).unwrap();
    assert_eq!(reader.name(), trace.name, "name header round-trips");
    assert_eq!(
        reader.branch_hint(),
        Some(trace.branch_count() as u64),
        "branch hint round-trips"
    );
    assert_eq!(
        reader.thread_count(),
        trace.thread_count(),
        "thread header round-trips"
    );
    let mut m2 = skl_baseline();
    let mut session = SimSession::new(
        &mut m2,
        Protection::Ucode1,
        SessionOptions {
            warmup: Warmup::Fraction(0.1),
            threads: Some(reader.thread_count().max(1)),
            ..SessionOptions::default()
        },
    )
    .unwrap();
    session.run(&mut reader).unwrap();
    assert_reports_identical(&session.finish(), &reference, "file reader");
}

/// A long generator-sourced run completes through a session without ever
/// materializing the event vector (the acceptance-criterion path, scaled
/// by STBPU_STREAM_BRANCHES; CI uses the default, a full 10M-branch run is
/// `STBPU_STREAM_BRANCHES=10000000 cargo test -p stbpu-sim --release`).
#[test]
fn long_streamed_run_completes() {
    let branches: usize = std::env::var("STBPU_STREAM_BRANCHES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    let p = profiles::by_name("505.mcf").unwrap();
    let mut m = skl_baseline();
    let mut session =
        SimSession::new(&mut m, Protection::Unprotected, SessionOptions::default()).unwrap();
    session
        .run(&mut TraceGenerator::new(p, 1).into_source(branches))
        .unwrap();
    let report = session.finish();
    let warmup = (branches as f64 * 0.1) as usize;
    assert_eq!(report.branches as usize, branches - warmup);
    assert!(report.oae > 0.5);
}

//! Batched-vs-single-event equivalence: any partition of an event stream
//! into `feed_batch` chunks must yield a bit-identical `SimReport`, and —
//! when observers are attached — an identical observer callback sequence.
//! This is the contract that lets `SimSession::run` batch freely and take
//! the no-observer fast path without changing a single reported number.

use proptest::prelude::*;
use stbpu_bpu::{BranchOutcome, BranchRecord, EntityId};
use stbpu_core::{st_skl, StConfig};
use stbpu_predictors::skl_baseline;
use stbpu_sim::{
    FlushKind, IntervalWindow, Protection, SessionOptions, SimObserver, SimReport, SimSession,
    Warmup,
};
use stbpu_trace::{profiles, Trace, TraceEvent, TraceGenerator};

/// Records every observer callback as a comparable log entry.
#[derive(Default, PartialEq, Debug)]
struct CallbackLog {
    entries: Vec<String>,
}

impl SimObserver for CallbackLog {
    fn on_branch(&mut self, tid: usize, rec: &BranchRecord, outcome: &BranchOutcome) {
        self.entries.push(format!(
            "B {tid} {:x} {} {}",
            rec.pc.raw(),
            outcome.effective_correct,
            outcome.mispredicted
        ));
    }
    fn on_flush(&mut self, kind: FlushKind) {
        self.entries.push(format!("F {kind:?}"));
    }
    fn on_context_switch(&mut self, tid: usize, entity: EntityId) {
        self.entries.push(format!("C {tid} {}", entity.0));
    }
    fn on_rerandomize(&mut self, total: u64) {
        self.entries.push(format!("R {total}"));
    }
    fn on_interval(&mut self, w: &IntervalWindow) {
        self.entries.push(format!(
            "I {} {} {} {} {} {}",
            w.start_branch,
            w.branches,
            w.effective_correct,
            w.mispredictions,
            w.flushes,
            w.rerandomizations
        ));
    }
}

fn assert_reports_identical(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.oae, b.oae, "{what}: oae");
    assert_eq!(a.branches, b.branches, "{what}: branches");
    assert_eq!(a.mispredictions, b.mispredictions, "{what}: mispredictions");
    assert_eq!(a.evictions, b.evictions, "{what}: evictions");
    assert_eq!(a.flushes, b.flushes, "{what}: flushes");
    assert_eq!(
        a.rerandomizations, b.rerandomizations,
        "{what}: rerandomizations"
    );
    assert_eq!(a.direction_rate, b.direction_rate, "{what}: direction_rate");
    assert_eq!(a.target_rate, b.target_rate, "{what}: target_rate");
}

/// A trace with context switches, mode switches and enough churn to
/// exercise flush/rerandomization paths.
fn busy_trace(seed: u64) -> Trace {
    let p = profiles::by_name("apache2_prefork_c256").unwrap();
    TraceGenerator::new(p, seed).generate(4_000)
}

/// Splits `events` into chunks whose sizes cycle through `cuts` (empty
/// `cuts` means one chunk with everything).
fn partition<'a>(events: &'a [TraceEvent], cuts: &[usize]) -> Vec<&'a [TraceEvent]> {
    if cuts.is_empty() {
        return vec![events];
    }
    let mut chunks = Vec::new();
    let mut rest = events;
    let mut i = 0;
    while !rest.is_empty() {
        let n = cuts[i % cuts.len()].max(1).min(rest.len());
        let (head, tail) = rest.split_at(n);
        chunks.push(head);
        rest = tail;
        i += 1;
    }
    chunks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fast path (no observers): any chunking == per-event feeding.
    #[test]
    fn any_partition_is_bit_identical(seed in any::<u64>(), cuts in proptest::collection::vec(1usize..257, 0..12)) {
        let trace = busy_trace(seed % 1_000);
        let opts = || SessionOptions {
            warmup: Warmup::Branches(0),
            threads: None,
            interval: None,
            workload: Some("prop".to_string()),
        };

        // Reference: one event at a time.
        let mut m1 = st_skl(StConfig { r: 1.0, misp_complexity: 400.0, eviction_complexity: 400.0, ..StConfig::default() }, 7);
        let mut s1 = SimSession::new(&mut m1, Protection::Stbpu, opts()).unwrap();
        for ev in trace.events() {
            s1.feed(ev).unwrap();
        }
        let r1 = s1.finish();

        // Batched: the generated partition.
        let mut m2 = st_skl(StConfig { r: 1.0, misp_complexity: 400.0, eviction_complexity: 400.0, ..StConfig::default() }, 7);
        let mut s2 = SimSession::new(&mut m2, Protection::Stbpu, opts()).unwrap();
        for chunk in partition(trace.events(), &cuts) {
            s2.feed_batch(chunk).unwrap();
        }
        let r2 = s2.finish();
        assert_reports_identical(&r1, &r2, "st_skl fast path");

        // And via run() (source-pulled batches).
        let mut m3 = st_skl(StConfig { r: 1.0, misp_complexity: 400.0, eviction_complexity: 400.0, ..StConfig::default() }, 7);
        let mut s3 = SimSession::new(&mut m3, Protection::Stbpu, opts()).unwrap();
        s3.run(&mut trace.source()).unwrap();
        let r3 = s3.finish();
        assert_reports_identical(&r1, &r3, "st_skl run()");
    }

    /// With observers attached, the callback sequence is identical for any
    /// partition (and the reports still match bit-for-bit).
    #[test]
    fn observer_sequence_is_partition_invariant(seed in any::<u64>(), cuts in proptest::collection::vec(1usize..129, 0..10)) {
        let trace = busy_trace(seed % 1_000);
        let opts = || SessionOptions {
            warmup: Warmup::Branches(0),
            threads: None,
            interval: Some(700),
            workload: Some("prop".to_string()),
        };

        let mut m1 = skl_baseline();
        let mut log1 = CallbackLog::default();
        let mut s1 = SimSession::new(&mut m1, Protection::Ucode1, opts()).unwrap();
        s1.attach(&mut log1);
        for ev in trace.events() {
            s1.feed(ev).unwrap();
        }
        let r1 = s1.finish();

        let mut m2 = skl_baseline();
        let mut log2 = CallbackLog::default();
        let mut s2 = SimSession::new(&mut m2, Protection::Ucode1, opts()).unwrap();
        s2.attach(&mut log2);
        for chunk in partition(trace.events(), &cuts) {
            s2.feed_batch(chunk).unwrap();
        }
        let r2 = s2.finish();

        assert_reports_identical(&r1, &r2, "observed path");
        prop_assert_eq!(&log1.entries, &log2.entries);
        prop_assert!(log1.entries.iter().any(|e| e.starts_with('F')), "ucode1 on apache must flush");
        prop_assert!(log1.entries.iter().any(|e| e.starts_with('I')), "interval windows must fire");
    }
}

/// Warm-up reset points must land identically on both paths (the fast
/// path reimplements the warm-up check).
#[test]
fn warmup_reset_is_batch_invariant() {
    let trace = busy_trace(5);
    for target in [0u64, 1, 999, 1_000, 3_999, 4_000] {
        let opts = || SessionOptions {
            warmup: Warmup::Branches(target),
            threads: None,
            interval: None,
            workload: None,
        };
        let mut m1 = skl_baseline();
        let mut s1 = SimSession::new(&mut m1, Protection::Unprotected, opts()).unwrap();
        for ev in trace.events() {
            s1.feed(ev).unwrap();
        }
        let r1 = s1.finish();

        let mut m2 = skl_baseline();
        let mut s2 = SimSession::new(&mut m2, Protection::Unprotected, opts()).unwrap();
        for chunk in trace.events().chunks(37) {
            s2.feed_batch(chunk).unwrap();
        }
        let r2 = s2.finish();
        assert_reports_identical(&r1, &r2, "warm-up");
        assert_eq!(r1.branches, 4_000 - target.min(4_000), "warm-up excluded");
    }
}

/// Errors surface at the same event on both paths, with earlier events
/// applied.
#[test]
fn batch_errors_match_single_event_errors() {
    let mut trace = Trace::new("bad-tid");
    trace.push(TraceEvent::Branch {
        tid: 0,
        rec: BranchRecord::conditional(0x4000, true, 0x4100),
    });
    trace.push(TraceEvent::Branch {
        tid: 1, // outside the 1-thread provision
        rec: BranchRecord::conditional(0x4004, true, 0x4100),
    });
    let opts = || SessionOptions {
        warmup: Warmup::Branches(0),
        threads: Some(1),
        interval: None,
        workload: None,
    };
    let mut m1 = skl_baseline();
    let mut s1 = SimSession::new(&mut m1, Protection::Unprotected, opts()).unwrap();
    assert!(s1.feed(&trace.events()[0]).is_ok());
    let e1 = s1.feed(&trace.events()[1]).unwrap_err();

    let mut m2 = skl_baseline();
    let mut s2 = SimSession::new(&mut m2, Protection::Unprotected, opts()).unwrap();
    let e2 = s2.feed_batch(trace.events()).unwrap_err();
    assert_eq!(e1, e2);
    assert_eq!(
        s1.branches_seen(),
        s2.branches_seen(),
        "first event applied"
    );
}

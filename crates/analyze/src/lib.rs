//! `stbpu-analyze`: the workspace static-analysis pass behind
//! `stbpu analyze`.
//!
//! A hand-rolled, dependency-free lint engine that walks every workspace
//! crate's `src/` tree through a lightweight Rust tokenizer
//! ([`tokenizer`]) and a set of token-window lints ([`lints`]) enforcing
//! the invariants the OAE and serve gates rely on:
//!
//! | lint | invariant |
//! |------|-----------|
//! | `lock-scope` | no blocking I/O while a `Mutex` guard is live |
//! | `determinism` | no hash-ordered iteration in report paths |
//! | `wall-clock` | no host-clock reads in OAE-affecting crates |
//! | `panic-freedom` | no panicking constructs in serve request paths |
//!
//! Findings are suppressible only through the checked-in
//! `ci/analyze-allow.toml` ([`allowlist`]), where every entry carries a
//! written justification. The pass is a hard CI gate: see the "Static
//! analysis" section of the README for the catalog and the CONTRIBUTING
//! policy for the allowlist.
//!
//! Only `src/` subtrees are analyzed — `tests/`, `benches/` and
//! `examples/` may unwrap freely; the invariants target shipping code.

pub mod allowlist;
pub mod lints;
pub mod tokenizer;

pub use allowlist::{AllowEntry, Allowlist};
pub use lints::{lint_source, Finding, LintId};

use std::path::{Path, PathBuf};

/// A finding that an allowlist entry suppressed.
#[derive(Clone, Debug)]
pub struct Suppressed {
    /// The suppressed finding.
    pub finding: Finding,
    /// 1-based line of the matching `[[allow]]` entry.
    pub allow_line: u32,
}

/// The result of one workspace analysis.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings not covered by the allowlist — any of these fails the run.
    pub findings: Vec<Finding>,
    /// Findings the allowlist suppressed.
    pub suppressed: Vec<Suppressed>,
    /// Allowlist entries that suppressed nothing (stale — warned, not fatal).
    pub unused_allows: Vec<AllowEntry>,
}

impl Report {
    /// True when no unsuppressed finding remains.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human diagnostics: one positioned block per finding, then a
    /// summary line and stale-allowlist warnings.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        for e in &self.unused_allows {
            out.push_str(&format!(
                "warning: unused allowlist entry (line {}): lint={} path={} pattern={:?} — \
                 the code it excused has changed; remove or update it\n",
                e.line,
                e.lint.name(),
                e.path,
                e.pattern
            ));
        }
        out.push_str(&format!(
            "stbpu analyze: {} finding{} ({} suppressed by allowlist) across {} files\n",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.suppressed.len(),
            self.files_scanned
        ));
        out
    }

    /// The machine-readable report (uploaded as a CI artifact).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&finding_json(f));
        }
        out.push_str(if self.findings.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            let mut obj = finding_json(&s.finding);
            obj.truncate(obj.len() - 1); // reopen the object
            obj.push_str(&format!(", \"allow_line\": {}}}", s.allow_line));
            out.push_str(&obj);
        }
        out.push_str(if self.suppressed.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"unused_allows\": [");
        for (i, e) in self.unused_allows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"lint\": {}, \"path\": {}, \"pattern\": {}, \"line\": {}}}",
                json_str(e.lint.name()),
                json_str(&e.path),
                json_str(&e.pattern),
                e.line
            ));
        }
        out.push_str(if self.unused_allows.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"lint\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}, \
         \"source_line\": {}}}",
        json_str(f.lint.name()),
        json_str(&f.file),
        f.line,
        f.col,
        json_str(&f.message),
        json_str(&f.source_line)
    )
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Walks up from `start` to the workspace root — the nearest ancestor
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collects every analyzable source file under `root`: for each
/// directory holding a `Cargo.toml`, the `.rs` files of its `src/`
/// subtree. Returns `(repo-relative path with '/' separators, absolute
/// path)` pairs in sorted order.
pub fn collect_sources(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut crate_dirs = Vec::new();
    find_crate_dirs(root, &mut crate_dirs)?;
    let mut files = Vec::new();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    let mut out = Vec::new();
    for abs in files {
        let rel = abs
            .strip_prefix(root)
            .map_err(|_| format!("{} escapes workspace root", abs.display()))?;
        let rel = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        out.push((rel, abs));
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn find_crate_dirs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if dir.join("Cargo.toml").is_file() {
        out.push(dir.to_path_buf());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut subdirs: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        let name = entry.file_name();
        let name = name.to_string_lossy();
        // `target/` holds build products, dot-dirs hold VCS/CI state, and
        // `tests/`, `benches/`, `examples/` and `fixtures/` never contain
        // crate roots we want to gate (fixture crates are lint *inputs*).
        if name == "target"
            || name == "tests"
            || name == "benches"
            || name == "examples"
            || name == "fixtures"
            || name.starts_with('.')
        {
            continue;
        }
        subdirs.push(path);
    }
    subdirs.sort();
    for sub in subdirs {
        find_crate_dirs(&sub, out)?;
    }
    Ok(())
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyzes one file's source against every lint whose
/// [`LintId::applies_to`] scope covers `rel_path`.
pub fn analyze_file(rel_path: &str, src: &str) -> Vec<Finding> {
    let lints: Vec<LintId> = LintId::ALL
        .iter()
        .copied()
        .filter(|l| l.applies_to(rel_path))
        .collect();
    if lints.is_empty() {
        return Vec::new();
    }
    lint_source(rel_path, src, &lints)
}

/// Runs the full pass over the workspace at `root`, applying `allow`.
pub fn analyze_workspace(root: &Path, allow: &Allowlist) -> Result<Report, String> {
    let sources = collect_sources(root)?;
    let mut report = Report {
        files_scanned: sources.len(),
        ..Report::default()
    };
    let mut used = vec![false; allow.entries.len()];
    for (rel, abs) in &sources {
        let src =
            std::fs::read_to_string(abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
        for finding in analyze_file(rel, &src) {
            match allow.entries.iter().position(|e| e.matches(&finding)) {
                Some(idx) => {
                    used[idx] = true;
                    report.suppressed.push(Suppressed {
                        finding,
                        allow_line: allow.entries[idx].line,
                    });
                }
                None => report.findings.push(finding),
            }
        }
    }
    report.unused_allows = allow
        .entries
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(e, _)| e.clone())
        .collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_file_scopes_lints_by_path() {
        // Instant::now in a sim file fires wall-clock …
        let src = "fn t() { let _x = Instant::now(); }";
        let f = analyze_file("crates/sim/src/lib.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, LintId::WallClock);
        // … but the same code in the CLI (progress reporting) is fine.
        assert!(analyze_file("crates/cli/src/lib.rs", src).is_empty());
        // unwrap in the daemon fires panic-freedom; in core it does not.
        let src = "fn t(v: &[u8]) { v.first().unwrap(); }";
        assert_eq!(analyze_file("crates/serve/src/server.rs", src).len(), 1);
        assert!(analyze_file("crates/core/src/manager.rs", src).is_empty());
    }

    #[test]
    fn json_report_escapes_and_structures() {
        let report = Report {
            files_scanned: 3,
            findings: vec![Finding {
                lint: LintId::PanicFreedom,
                file: "a.rs".into(),
                line: 2,
                col: 7,
                message: "a \"quoted\" message".into(),
                source_line: "let x = v[0];".into(),
            }],
            suppressed: Vec::new(),
            unused_allows: Vec::new(),
        };
        let json = report.render_json();
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"line\": 2"));
        let clean = Report {
            files_scanned: 1,
            ..Report::default()
        };
        assert!(clean.render_json().contains("\"clean\": true"));
        assert!(clean.is_clean());
    }

    #[test]
    fn human_report_positions_and_summarizes() {
        let report = Report {
            files_scanned: 2,
            findings: vec![Finding {
                lint: LintId::LockScope,
                file: "crates/serve/src/server.rs".into(),
                line: 10,
                col: 9,
                message: "blocking call".into(),
                source_line: "sock.write_all(&frame)?;".into(),
            }],
            suppressed: Vec::new(),
            unused_allows: Vec::new(),
        };
        let text = report.render_human();
        assert!(text.contains("crates/serve/src/server.rs:10:9: lock-scope:"));
        assert!(text.contains("1 finding (0 suppressed by allowlist) across 2 files"));
    }
}

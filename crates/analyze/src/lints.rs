//! The lint passes: token-window pattern matching with brace/scope
//! tracking over [`crate::tokenizer`] output.
//!
//! Each lint encodes one invariant the OAE / serving gates depend on but
//! the compiler cannot check:
//!
//! * **lock-scope** — no blocking call while a `Mutex` guard binding is
//!   live in scope (the PR 6 daemon-wedge class: socket I/O under the
//!   serve registry lock).
//! * **determinism** — no iteration over `HashMap`/`HashSet` in crates
//!   whose iteration order can reach serialized or user-visible output;
//!   use `BTreeMap`/`BTreeSet` or sort before emitting.
//! * **wall-clock** — no `Instant::now` / `SystemTime` in OAE-affecting
//!   crates: simulated time must come from the event stream, never the
//!   host clock.
//! * **panic-freedom** — no `unwrap`/`expect`/`panic!`-family macros or
//!   unchecked (non-range) indexing in the serve request/decode paths: a
//!   panic there kills a worker or reader thread and wedges live
//!   sessions.
//!
//! `#[cfg(test)]` scopes are skipped for every lint (tests may unwrap),
//! and doc comments are comments to the tokenizer, so examples never
//! fire. Findings are suppressible only through the checked-in
//! `ci/analyze-allow.toml` (see [`crate::allowlist`]) — there is
//! deliberately no inline `// allow` escape hatch.

use crate::tokenizer::{tokenize, Tok, TokKind};

/// Identifies one lint pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintId {
    /// Blocking call while a lock guard is live.
    LockScope,
    /// Hash-ordered iteration in a report path.
    Determinism,
    /// Host-clock read in an OAE-affecting crate.
    WallClock,
    /// Panicking construct in a daemon request/decode path.
    PanicFreedom,
}

impl LintId {
    /// Every lint, in catalog order.
    pub const ALL: &'static [LintId] = &[
        LintId::LockScope,
        LintId::Determinism,
        LintId::WallClock,
        LintId::PanicFreedom,
    ];

    /// The stable lint id used in diagnostics and the allowlist.
    pub fn name(self) -> &'static str {
        match self {
            LintId::LockScope => "lock-scope",
            LintId::Determinism => "determinism",
            LintId::WallClock => "wall-clock",
            LintId::PanicFreedom => "panic-freedom",
        }
    }

    /// Parses a lint id as written in `ci/analyze-allow.toml`.
    pub fn from_name(name: &str) -> Option<LintId> {
        LintId::ALL.iter().copied().find(|l| l.name() == name)
    }

    /// One-line catalog summary.
    pub fn summary(self) -> &'static str {
        match self {
            LintId::LockScope => "no blocking I/O while a Mutex guard binding is live in scope",
            LintId::Determinism => {
                "no HashMap/HashSet iteration where order can reach serialized output"
            }
            LintId::WallClock => "no Instant::now/SystemTime in OAE-affecting crates",
            LintId::PanicFreedom => {
                "no unwrap/expect/panic!/unchecked indexing in serve request paths"
            }
        }
    }

    /// Why the invariant exists (printed by `stbpu analyze --list-lints`).
    pub fn rationale(self) -> &'static str {
        match self {
            LintId::LockScope => {
                "a write to a stalled peer under the serve registry lock wedged every \
                 connection (the PR 6 daemon bug); queue under the lock, do I/O after \
                 releasing it"
            }
            LintId::Determinism => {
                "every PR is gated on bit-identical OAE/report output; hash iteration \
                 order varies across runs and toolchains, so it must never order \
                 anything a gate diffs"
            }
            LintId::WallClock => {
                "simulation results must be a pure function of the event stream and \
                 seed; a host-clock read makes output machine-dependent"
            }
            LintId::PanicFreedom => {
                "a panic in a request/decode path kills a worker or reader thread and \
                 silently wedges unrelated live sessions; malformed input must become \
                 a positioned Error frame instead"
            }
        }
    }

    /// The workspace paths (relative, `/`-separated) the lint applies to.
    /// An empty list means every analyzed file.
    pub fn path_scope(self) -> &'static [&'static str] {
        match self {
            // Any crate may grow a lock; the invariant is universal.
            LintId::LockScope => &[],
            // Crates whose collections can feed reports, traces or wire
            // frames that CI diffs byte-for-byte. `crates/phases` joined
            // in PR 9: k-means centroid updates and representative
            // selection order anything in `.stbp`, which CI byte-diffs.
            // PR 10 addition: `crates/predictors` — allocator randomness
            // (ITTAGE/TAGE lfsr) must stay seeded-deterministic, or OAE
            // baselines and checkpoint bit-identity gates break.
            LintId::Determinism => &[
                "crates/sim/src/",
                "crates/engine/src/",
                "crates/trace/src/",
                "crates/serve/src/",
                "crates/core/src/",
                "crates/phases/src/",
                "crates/predictors/src/",
            ],
            // Crates on the OAE-affecting simulation path, plus the
            // engine's shard/resume drivers whose outputs CI diffs
            // byte-for-byte against sequential runs (timing belongs in
            // the CLI bench layer). Bench/CLI progress code lives outside
            // these roots and may time freely.
            // PR 9 additions: the clustering crate (a wall-clock read in
            // k-means would make phase selection machine-dependent) and
            // the engine's phase driver, whose estimates the simpoint
            // reference gate diffs against a committed JSON.
            // PR 10 addition: the predictor models themselves — a timing
            // read inside a predict/update path would make reports
            // machine-dependent.
            LintId::WallClock => &[
                "crates/bpu/src/",
                "crates/remap/src/",
                "crates/sim/src/",
                "crates/trace/src/",
                "crates/core/src/",
                "crates/engine/src/shard.rs",
                "crates/engine/src/resume.rs",
                "crates/engine/src/phases.rs",
                "crates/phases/src/",
                "crates/predictors/src/",
            ],
            // The daemon request/decode paths and the client library that
            // multiplexes live sessions, plus the checkpoint codecs: a
            // truncated or corrupt .stck / completed.jsonl must decode to
            // a positioned error, never a panic — a panic during grid
            // resume would lose the completed work it exists to protect.
            // `bench.rs` (a harness that may panic on setup failure) is
            // deliberately out of scope.
            // PR 9 additions: the `.stbp` codec (a truncated or corrupt
            // phase file must decode to a positioned PhaseError) and the
            // BBV extractor, which runs inside the bench/CI pipeline
            // where a panic aborts the whole figure-estimation gate.
            // PR 10 additions: the CBP trace decoder (arbitrary
            // third-party captures must decode totally — truncation or
            // corruption is a positioned CbpError, never a panic) and the
            // ITTAGE predictor, whose snapshot loader consumes `.stck`
            // images from disk.
            LintId::PanicFreedom => &[
                "crates/serve/src/server.rs",
                "crates/serve/src/protocol.rs",
                "crates/serve/src/client.rs",
                "crates/sim/src/checkpoint.rs",
                "crates/engine/src/resume.rs",
                "crates/phases/src/file.rs",
                "crates/trace/src/bbv.rs",
                "crates/trace/src/cbp.rs",
                "crates/predictors/src/ittage.rs",
            ],
        }
    }

    /// True when the lint applies to `rel_path` (repo-relative,
    /// `/`-separated).
    pub fn applies_to(self, rel_path: &str) -> bool {
        let scope = self.path_scope();
        scope.is_empty() || scope.iter().any(|p| rel_path.starts_with(p))
    }
}

/// One positioned diagnostic.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which lint fired.
    pub lint: LintId,
    /// Repo-relative file path (`/`-separated).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and how to fix it.
    pub message: String,
    /// The trimmed source line, for display and allowlist matching.
    pub source_line: String,
}

impl Finding {
    /// `file:line:col: lint: message` — the human diagnostic form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}\n    {}",
            self.file,
            self.line,
            self.col,
            self.lint.name(),
            self.message,
            self.source_line
        )
    }
}

/// Tokenized file plus derived masks, shared by every lint pass.
struct FileCtx<'a> {
    rel_path: &'a str,
    toks: Vec<Tok>,
    /// True for tokens inside `#[cfg(test)]` scopes.
    test: Vec<bool>,
    lines: Vec<&'a str>,
}

impl FileCtx<'_> {
    fn finding(&self, lint: LintId, at: &Tok, message: String) -> Finding {
        Finding {
            lint,
            file: self.rel_path.to_string(),
            line: at.line,
            col: at.col,
            message,
            source_line: self
                .lines
                .get(at.line as usize - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        }
    }

    fn ident(&self, i: usize) -> Option<&str> {
        self.toks.get(i).and_then(|t| match t.kind {
            TokKind::Ident => Some(t.text.as_str()),
            _ => None,
        })
    }

    fn punct(&self, i: usize, c: char) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_punct(c))
    }
}

/// Runs `lints` over one source file. `rel_path` is used for scoping
/// messages only — callers (the fixture tests) may force lints a path
/// would not normally select; [`crate::analyze_workspace`] passes each
/// lint only where [`LintId::applies_to`] holds.
pub fn lint_source(rel_path: &str, src: &str, lints: &[LintId]) -> Vec<Finding> {
    let toks = tokenize(src);
    let test = test_mask(&toks);
    let ctx = FileCtx {
        rel_path,
        toks,
        test,
        lines: src.lines().collect(),
    };
    let mut findings = Vec::new();
    for &lint in lints {
        match lint {
            LintId::LockScope => lock_scope(&ctx, &mut findings),
            LintId::Determinism => determinism(&ctx, &mut findings),
            LintId::WallClock => wall_clock(&ctx, &mut findings),
            LintId::PanicFreedom => panic_freedom(&ctx, &mut findings),
        }
    }
    findings.sort_by_key(|f| (f.line, f.col, f.lint));
    findings
}

/// Marks every token inside a `#[cfg(test)]`-gated `mod`/`fn` body.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            // Any `test` ident inside the cfg(...) parens counts
            // (`cfg(test)`, `cfg(all(test, …))`).
            let close = match matching(toks, i + 3, '(', ')') {
                Some(c) => c,
                None => break,
            };
            let gates_test = toks[i + 4..close]
                .iter()
                .any(|t| t.is_ident("test") || t.is_ident("doctest"));
            if gates_test {
                // Skip the next item's body if it is a mod or fn: find
                // the first `{` or `;` after the attribute.
                let mut j = close + 1;
                let mut is_item = false;
                while j < toks.len() {
                    if toks[j].is_ident("mod") || toks[j].is_ident("fn") {
                        is_item = true;
                    }
                    if toks[j].is_punct('{') || toks[j].is_punct(';') {
                        break;
                    }
                    j += 1;
                }
                if is_item && j < toks.len() && toks[j].is_punct('{') {
                    if let Some(end) = matching(toks, j, '{', '}') {
                        for m in &mut mask[i..=end] {
                            *m = true;
                        }
                        i = end + 1;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    mask
}

/// Index of the punct matching the opener at `open` (which must hold
/// `open_c`), or `None` when unbalanced.
fn matching(toks: &[Tok], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// wall-clock
// ---------------------------------------------------------------------

fn wall_clock(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for i in 0..ctx.toks.len() {
        if ctx.test[i] {
            continue;
        }
        if ctx.toks[i].is_ident("Instant")
            && ctx.punct(i + 1, ':')
            && ctx.punct(i + 2, ':')
            && ctx.ident(i + 3) == Some("now")
        {
            out.push(
                ctx.finding(
                    LintId::WallClock,
                    &ctx.toks[i],
                    "`Instant::now` in an OAE-affecting crate: simulated time must come \
                 from the event stream and seed, never the host clock"
                        .to_string(),
                ),
            );
        }
        if ctx.toks[i].is_ident("SystemTime") {
            out.push(
                ctx.finding(
                    LintId::WallClock,
                    &ctx.toks[i],
                    "`SystemTime` in an OAE-affecting crate: wall-clock reads make \
                 output machine-dependent"
                        .to_string(),
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// panic-freedom
// ---------------------------------------------------------------------

/// Identifier-position keywords that can precede `[` without it being an
/// index expression (slice patterns, array types, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "while", "match", "return", "break", "else", "move", "dyn",
    "for", "as", "where", "pub", "use", "const", "static", "crate", "fn", "enum", "struct", "type",
    "impl", "mod", "unsafe", "await", "yield", "box",
];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

fn panic_freedom(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for i in 0..ctx.toks.len() {
        if ctx.test[i] {
            continue;
        }
        let t = &ctx.toks[i];
        // `.unwrap()` / `.expect(`
        if t.is_punct('.') {
            if let Some(m) = ctx.ident(i + 1) {
                if (m == "unwrap" || m == "expect") && ctx.punct(i + 2, '(') {
                    out.push(ctx.finding(
                        LintId::PanicFreedom,
                        &ctx.toks[i + 1],
                        format!(
                            "`.{m}()` can panic in a request/decode path — return a \
                             positioned error (Error frame / Err) instead"
                        ),
                    ));
                }
            }
        }
        // panic!-family macros (debug_assert* is a distinct ident and
        // deliberately allowed: it compiles out of release builds).
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && ctx.punct(i + 1, '!')
        {
            out.push(ctx.finding(
                LintId::PanicFreedom,
                t,
                format!(
                    "`{}!` panics in a request/decode path — handle the case and \
                     answer an Error frame instead",
                    t.text
                ),
            ));
        }
        // Unchecked (non-range) indexing: `expr[index]`. Range slicing
        // (`buf[..n]`) is out of scope — it is reviewed manually because
        // most sites bounds-check first and a token scan cannot see that.
        if t.is_punct('[') && i > 0 {
            let prev = &ctx.toks[i - 1];
            let indexable = match prev.kind {
                TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                TokKind::Punct(')') | TokKind::Punct(']') => true,
                _ => false,
            };
            if indexable {
                if let Some(close) = matching(&ctx.toks, i, '[', ']') {
                    let mut depth = 0usize;
                    let mut has_range = false;
                    let mut k = i + 1;
                    while k < close {
                        let c = &ctx.toks[k];
                        if c.is_punct('(') || c.is_punct('[') || c.is_punct('{') {
                            depth += 1;
                        } else if c.is_punct(')') || c.is_punct(']') || c.is_punct('}') {
                            depth = depth.saturating_sub(1);
                        } else if depth == 0
                            && c.is_punct('.')
                            && ctx.toks.get(k + 1).is_some_and(|n| n.is_punct('.'))
                        {
                            has_range = true;
                        }
                        k += 1;
                    }
                    if !has_range && close > i + 1 {
                        out.push(
                            ctx.finding(
                                LintId::PanicFreedom,
                                t,
                                "unchecked indexing can panic in a request/decode path — \
                             use `.get()` and handle the miss"
                                    .to_string(),
                            ),
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

fn determinism(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    // Pass 1: names whose declared type or initializer involves a
    // hash-ordered collection — struct fields / params (`name: HashMap<…>`
    // possibly wrapped in Mutex/Arc/…) and let bindings whose statement
    // mentions HashMap/HashSet.
    let mut names: Vec<String> = Vec::new();
    let toks = &ctx.toks;
    for i in 0..toks.len() {
        // `name :` (not `::` on either side) followed by a type window
        // containing a hash type before a depth-0 terminator.
        if let Some(name) = ctx.ident(i) {
            let ascription = ctx.punct(i + 1, ':')
                && !ctx.punct(i + 2, ':')
                && !(i >= 1 && ctx.punct(i - 1, ':'));
            if ascription {
                let mut depth = 0i32;
                let mut k = i + 2;
                while k < toks.len() {
                    let t = &toks[k];
                    if t.is_punct('<') || t.is_punct('(') {
                        depth += 1;
                    } else if t.is_punct('>') || t.is_punct(')') {
                        if t.is_punct(')') && depth == 0 {
                            break;
                        }
                        depth -= 1;
                    } else if depth <= 0
                        && (t.is_punct(',')
                            || t.is_punct(';')
                            || t.is_punct('{')
                            || t.is_punct('}')
                            || t.is_punct('='))
                    {
                        break;
                    } else if t.kind == TokKind::Ident && HASH_TYPES.contains(&t.text.as_str()) {
                        names.push(name.to_string());
                        break;
                    }
                    k += 1;
                }
            }
        }
        // `let [mut] name = … HashMap/HashSet … ;`
        if toks[i].is_ident("let") {
            let mut k = i + 1;
            if ctx.ident(k) == Some("mut") {
                k += 1;
            }
            if let Some(name) = ctx.ident(k) {
                let mut depth = 0i32;
                let mut j = k + 1;
                while j < toks.len() {
                    let t = &toks[j];
                    if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                        depth -= 1;
                        if depth < 0 {
                            break;
                        }
                    } else if t.is_punct(';') && depth == 0 {
                        break;
                    } else if t.kind == TokKind::Ident && HASH_TYPES.contains(&t.text.as_str()) {
                        names.push(name.to_string());
                        break;
                    }
                    j += 1;
                }
            }
        }
    }
    names.sort();
    names.dedup();

    // Pass 2: iteration over any collected name.
    let mut lines_flagged: Vec<u32> = Vec::new();
    for i in 0..toks.len() {
        if ctx.test[i] {
            continue;
        }
        // `name.iter()` etc.
        if let Some(name) = ctx.ident(i) {
            if names.iter().any(|n| n == name)
                && ctx.punct(i + 1, '.')
                && ctx.ident(i + 2).is_some_and(|m| ITER_METHODS.contains(&m))
                && ctx.punct(i + 3, '(')
                && !lines_flagged.contains(&toks[i].line)
            {
                lines_flagged.push(toks[i].line);
                out.push(ctx.finding(
                    LintId::Determinism,
                    &ctx.toks[i],
                    format!(
                        "iteration over hash-ordered `{name}` — order varies across \
                         runs; use BTreeMap/BTreeSet or collect-and-sort before \
                         anything serialized or user-visible"
                    ),
                ));
            }
        }
        // `for … in <expr containing a hash name> {`
        if toks[i].is_ident("for") {
            let mut depth = 0i32;
            let mut in_at = None;
            let mut j = i + 1;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && t.is_ident("in") {
                    in_at = Some(j);
                    break;
                } else if t.is_punct('{') || t.is_punct(';') {
                    break;
                }
                j += 1;
            }
            if let Some(start) = in_at {
                let mut j = start + 1;
                let mut depth = 0i32;
                while j < toks.len() {
                    let t = &toks[j];
                    if t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth -= 1;
                    } else if t.is_punct('{') && depth == 0 {
                        break;
                    } else if t.kind == TokKind::Ident
                        && names.iter().any(|n| n == &t.text)
                        && !lines_flagged.contains(&toks[i].line)
                    {
                        lines_flagged.push(toks[i].line);
                        out.push(ctx.finding(
                            LintId::Determinism,
                            &ctx.toks[i],
                            format!(
                                "`for` loop over hash-ordered `{}` — order varies \
                                 across runs; use BTreeMap/BTreeSet or sort first",
                                t.text
                            ),
                        ));
                        break;
                    }
                    j += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// lock-scope
// ---------------------------------------------------------------------

/// Methods that block (I/O, joins, sleeps) and must not run while a lock
/// guard is live. `send` is deliberately absent: `mpsc::Sender::send`
/// never blocks, and queue-under-lock is exactly the pattern the serve
/// daemon uses to stay safe.
const BLOCKING_METHODS: &[&str] = &[
    "write_all",
    "write_fmt",
    "read",
    "read_exact",
    "read_to_end",
    "read_until",
    "read_line",
    "flush",
    "accept",
    "connect",
    "join",
    "recv",
    "recv_timeout",
    "sleep",
];

/// Chain methods that pass a `.lock()` result through unchanged, so a
/// `let` binding whose initializer ends in them binds the guard itself.
const GUARD_PASSTHROUGH: &[&str] = &[
    "unwrap",
    "expect",
    "unwrap_or_else",
    "map_err",
    "ok",
    "unwrap_or",
    "unwrap_or_default",
];

struct Guard {
    name: String,
    line: u32,
    depth: usize,
}

fn lock_scope(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    // A `.lock()` temporary live inside the current statement/expression
    // (covers chains and `match x.lock() { … }` without a binding); holds
    // the brace depth at acquisition.
    let mut temp_lock: Option<usize> = None;
    let mut pending: Vec<(usize, Guard)> = Vec::new(); // activate after stmt end

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            guards.retain(|g| g.depth < depth);
            depth = depth.saturating_sub(1);
            if temp_lock.is_some_and(|d| depth <= d) {
                temp_lock = None;
            }
        } else if t.is_punct(';') && temp_lock.is_some_and(|d| depth <= d) {
            temp_lock = None;
        }
        // Activate guards whose binding statement has ended.
        pending.retain_mut(|(at, g)| {
            if i >= *at {
                guards.push(Guard {
                    name: std::mem::take(&mut g.name),
                    line: g.line,
                    depth: g.depth,
                });
                false
            } else {
                true
            }
        });

        if ctx.test[i] {
            i += 1;
            continue;
        }

        // `drop(name)` releases a tracked guard early.
        if t.is_ident("drop") && ctx.punct(i + 1, '(') {
            if let Some(name) = ctx.ident(i + 2) {
                if ctx.punct(i + 3, ')') {
                    guards.retain(|g| g.name != name);
                }
            }
        }

        // `let …` — may bind a guard.
        if t.is_ident("let") {
            if let Some((name, is_guard, end)) = let_binding(ctx, i) {
                // Shadowing rebinds the name; the old guard (if any) is
                // released when its value is overwritten.
                guards.retain(|g| g.name != name);
                if is_guard {
                    pending.push((
                        end + 1,
                        Guard {
                            name,
                            line: t.line,
                            depth,
                        },
                    ));
                }
            }
        }

        // `.lock()` temporary (chained use, match scrutinee, …).
        if t.is_punct('.')
            && ctx.ident(i + 1) == Some("lock")
            && ctx.punct(i + 2, '(')
            && temp_lock.is_none()
        {
            temp_lock = Some(depth);
        }

        // A blocking call while any guard or lock temporary is live.
        let blocking = (t.is_punct('.') || (t.is_punct(':') && i > 0 && ctx.punct(i - 1, ':')))
            && ctx
                .ident(i + 1)
                .is_some_and(|m| BLOCKING_METHODS.contains(&m))
            && ctx.punct(i + 2, '(');
        if blocking {
            let method = ctx.ident(i + 1).unwrap_or_default();
            if let Some(g) = guards.last() {
                out.push(ctx.finding(
                    LintId::LockScope,
                    &ctx.toks[i + 1],
                    format!(
                        "blocking call `{method}()` while lock guard `{}` (acquired \
                         line {}) is live — queue the work under the lock and perform \
                         I/O after releasing it (drop({}) first)",
                        g.name, g.line, g.name
                    ),
                ));
            } else if temp_lock.is_some() {
                out.push(ctx.finding(
                    LintId::LockScope,
                    &ctx.toks[i + 1],
                    format!(
                        "blocking call `{method}()` chained on a live `.lock()` \
                         temporary — the guard is held across the I/O; bind it, copy \
                         what you need, release, then block"
                    ),
                ));
            }
        }
        i += 1;
    }
}

/// Parses the `let` statement starting at `li`: returns the bound name,
/// whether the initializer binds a lock guard (`.lock()` followed only by
/// pass-through methods / `?` / `else {…}` up to `;`), and the index of
/// the terminating `;`.
fn let_binding(ctx: &FileCtx<'_>, li: usize) -> Option<(String, bool, usize)> {
    let toks = &ctx.toks;
    let mut k = li + 1;
    if ctx.ident(k) == Some("mut") {
        k += 1;
    }
    // `let Ok(mut g) = …` / `let Some(g) = …` destructure the guard out.
    let mut destructured = false;
    if matches!(ctx.ident(k), Some("Ok" | "Some")) && ctx.punct(k + 1, '(') {
        destructured = true;
        k += 2;
        if ctx.ident(k) == Some("mut") {
            k += 1;
        }
    }
    let name = ctx.ident(k)?.to_string();
    if name == "_" {
        return None;
    }
    if destructured && ctx.punct(k + 1, ')') {
        k += 1;
    }

    // Scan the statement, brace/paren aware, for a `.lock()` in the
    // initializer itself (depth 0 — a lock taken inside a nested block
    // or call argument does not outlive that subexpression) and for the
    // statement end.
    let mut depth = 0i32;
    let mut j = k + 1;
    let mut lock_close: Option<usize> = None;
    let end = loop {
        let t = toks.get(j)?;
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                break j; // unbalanced: treat as statement end
            }
        } else if t.is_punct(';') && depth == 0 {
            break j;
        } else if depth == 0
            && t.is_punct('.')
            && ctx.ident(j + 1) == Some("lock")
            && ctx.punct(j + 2, '(')
            && lock_close.is_none()
        {
            lock_close = matching(toks, j + 2, '(', ')');
        }
        j += 1;
    };

    let Some(mut j) = lock_close.map(|c| c + 1) else {
        return Some((name, false, end));
    };
    // Guard-ness: only pass-through tokens may follow the `.lock()`.
    let is_guard = loop {
        if j >= end {
            break true;
        }
        let t = &toks[j];
        if t.is_punct('?') {
            j += 1;
        } else if t.is_punct('.')
            && ctx
                .ident(j + 1)
                .is_some_and(|m| GUARD_PASSTHROUGH.contains(&m))
            && ctx.punct(j + 2, '(')
        {
            match matching(toks, j + 2, '(', ')') {
                Some(c) => j = c + 1,
                None => break false,
            }
        } else if t.is_ident("else") && ctx.punct(j + 1, '{') {
            match matching(toks, j + 1, '{', '}') {
                Some(c) => j = c + 1,
                None => break false,
            }
        } else if t.is_punct(';') {
            break true;
        } else {
            break false;
        }
    };
    Some((name, is_guard, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(lint: LintId, src: &str) -> Vec<Finding> {
        lint_source("test.rs", src, &[lint])
    }

    #[test]
    fn wall_clock_fires_on_instant_now_and_system_time() {
        let f = run(
            LintId::WallClock,
            "fn decode() { let t = Instant::now(); let s = std::time::SystemTime::now(); }",
        );
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].line, 1);
        let clean = run(
            LintId::WallClock,
            "fn decode(branches: u64) -> u64 { branches }",
        );
        assert!(clean.is_empty());
    }

    #[test]
    fn panic_freedom_catches_the_catalog() {
        let src = r#"
fn handle(v: &[u8]) -> u8 {
    let a = v.first().unwrap();
    let b = v.first().expect("nonempty");
    if v.is_empty() { panic!("empty"); }
    v[0]
}
"#;
        let f = run(LintId::PanicFreedom, src);
        let kinds: Vec<&str> = f
            .iter()
            .map(|f| f.message.split_whitespace().next().unwrap())
            .collect();
        assert_eq!(f.len(), 4, "{kinds:?}");
        assert_eq!(f[0].line, 3);
        assert_eq!(f[1].line, 4);
        assert_eq!(f[2].line, 5);
        assert_eq!(f[3].line, 6, "indexing");
    }

    #[test]
    fn panic_freedom_allows_ranges_types_and_tests() {
        let src = r#"
fn ok(v: &[u8], n: usize) -> &[u8] {
    let _arr: [u8; 8] = [0; 8];
    let _d = v.first().unwrap_or(&0);
    debug_assert!(n <= v.len());
    &v[..n]
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let v = vec![1]; assert_eq!(v[0], v.first().unwrap().clone()); }
}
"#;
        let f = run(LintId::PanicFreedom, src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn determinism_sees_fields_lets_and_for_loops() {
        let src = r#"
struct S { entities: HashMap<u32, u64> }
impl S {
    fn report(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.entities.iter() { out.push_str(&format!("{k}={v}")); }
        out
    }
}
fn f() {
    let mut seen = std::collections::HashSet::new();
    seen.insert(1);
    for s in &seen { println!("{s}"); }
}
"#;
        let f = run(LintId::Determinism, src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].line, 6);
        assert_eq!(f[1].line, 13);
    }

    #[test]
    fn determinism_is_quiet_on_btree_and_point_lookups() {
        let src = r#"
struct S { entities: BTreeMap<u32, u64>, index: HashMap<u32, u64> }
impl S {
    fn get(&self, k: u32) -> Option<&u64> { self.index.get(&k) }
    fn report(&self) -> Vec<u64> { self.entities.values().copied().collect() }
}
"#;
        let f = run(LintId::Determinism, src);
        assert!(
            f.is_empty(),
            "point lookups and BTreeMap iteration are fine: {f:?}"
        );
    }

    #[test]
    fn lock_scope_catches_guard_and_chain_blocking() {
        let src = r#"
fn bad(state: &std::sync::Mutex<Vec<u8>>, sock: &mut std::net::TcpStream) {
    let mut st = state.lock().unwrap();
    st.push(1);
    sock.write_all(&st).unwrap();
}
fn bad_chain(inner: &Inner, wire: &[u8]) {
    inner.writer.lock().unwrap().write_all(wire).unwrap();
}
"#;
        let f = run(LintId::LockScope, src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].line, 5);
        assert!(f[0].message.contains("`st`"), "{}", f[0].message);
        assert_eq!(f[1].line, 8);
    }

    #[test]
    fn lock_scope_respects_drop_scope_end_and_temporaries() {
        let src = r#"
fn ok(state: &std::sync::Mutex<Vec<u8>>, sock: &mut std::net::TcpStream) {
    let queued = {
        let mut st = state.lock().unwrap();
        st.push(1);
        st.clone()
    };
    sock.write_all(&queued).unwrap();
}
fn ok_drop(state: &std::sync::Mutex<Vec<u8>>, sock: &mut std::net::TcpStream) {
    let mut st = state.lock().unwrap();
    st.push(1);
    drop(st);
    sock.write_all(&[1]).unwrap();
}
fn ok_temp_value(state: &std::sync::Mutex<Vec<u8>>) {
    let over = state.lock().unwrap().len() > 4;
    std::thread::sleep(std::time::Duration::from_millis(5));
    let _ = over;
}
"#;
        let f = run(LintId::LockScope, src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lock_scope_sees_match_scrutinee_temporaries() {
        let src = r#"
fn bad(q: &std::sync::Mutex<Vec<Vec<u8>>>, sock: &mut std::net::TcpStream) {
    match q.lock() {
        Ok(mut g) => { sock.write_all(&g.pop().unwrap()).unwrap(); }
        Err(_) => {}
    }
    sock.flush().unwrap();
}
"#;
        let f = run(LintId::LockScope, src);
        // write_all under the scrutinee temporary fires; the flush after
        // the match (guard dead) must not.
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn checkpoint_paths_are_in_scope() {
        // The checkpoint layer joined the lint surface in PR 8: the .stck
        // and completed.jsonl codecs must stay panic-free, and the
        // shard/resume drivers must stay wall-clock-free (their outputs
        // are byte-diffed against sequential runs).
        for path in [
            "crates/sim/src/checkpoint.rs",
            "crates/engine/src/resume.rs",
        ] {
            assert!(LintId::PanicFreedom.applies_to(path), "{path}");
        }
        for path in ["crates/engine/src/shard.rs", "crates/engine/src/resume.rs"] {
            assert!(LintId::WallClock.applies_to(path), "{path}");
        }
        assert!(LintId::Determinism.applies_to("crates/sim/src/checkpoint.rs"));
        // The CLI bench layer times on purpose and must stay out.
        assert!(!LintId::WallClock.applies_to("crates/cli/src/bench_cmd.rs"));
    }

    #[test]
    fn checkpoint_decode_bad_twin_fires_and_good_twin_is_clean() {
        // Bad twin: a .stck-style decoder that panics on truncated or
        // corrupt input instead of returning a positioned error.
        let bad = r#"
fn decode(data: &[u8]) -> (u16, u64) {
    let version = u16::from_le_bytes(data[4..6].try_into().unwrap());
    let seed = parse_varint(&data[8..]).expect("varint");
    (version, seed)
}
"#;
        let f = run(LintId::PanicFreedom, bad);
        // Range indexing is out of the lint's scope (reviewed manually),
        // so the unwrap and the expect are the two findings.
        assert_eq!(f.len(), 2, "{f:?}");
        // Good twin: every miss becomes an error value.
        let good = r#"
fn decode(data: &[u8]) -> Result<(u16, u64), CheckpointError> {
    let v = data
        .get(4..6)
        .ok_or_else(|| CheckpointError::truncated(4))?;
    let version = u16::from_le_bytes(v.try_into().map_err(|_| CheckpointError::truncated(4))?);
    let rest = data.get(8..).ok_or_else(|| CheckpointError::truncated(8))?;
    let seed = parse_varint(rest)?;
    Ok((version, seed))
}
"#;
        let f = run(LintId::PanicFreedom, good);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn shard_driver_bad_twin_fires_on_wall_clock_reads() {
        // Bad twin: timing inside the shard driver (timing belongs in the
        // CLI bench layer, outside the byte-parity surface).
        let bad = r#"
fn run_segment(events: u64) -> f64 {
    let start = std::time::Instant::now();
    feed(events);
    start.elapsed().as_secs_f64()
}
"#;
        let f = run(LintId::WallClock, bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
        let good = "fn run_segment(events: u64) -> u64 { feed(events); events }";
        assert!(run(LintId::WallClock, good).is_empty());
    }

    #[test]
    fn phase_paths_are_in_scope() {
        // The phase-clustering layer joined the lint surface in PR 9: the
        // .stbp codec and BBV extractor must stay panic-free (they run
        // inside the CI figure-estimation gate), the whole phases crate
        // must stay deterministic and wall-clock-free (phase selection
        // orders `.stbp` bytes CI diffs), and the engine's phase driver
        // must stay wall-clock-free (its estimates are diffed against
        // ci/simpoint-reference.json).
        for path in ["crates/phases/src/file.rs", "crates/trace/src/bbv.rs"] {
            assert!(LintId::PanicFreedom.applies_to(path), "{path}");
        }
        for path in [
            "crates/phases/src/cluster.rs",
            "crates/phases/src/file.rs",
            "crates/engine/src/phases.rs",
        ] {
            assert!(LintId::WallClock.applies_to(path), "{path}");
        }
        assert!(LintId::Determinism.applies_to("crates/phases/src/cluster.rs"));
        // The bench layer wraps the estimation in timing on purpose.
        assert!(!LintId::WallClock.applies_to("crates/cli/src/bench_cmd.rs"));
        // The clustering internals may unwrap on invariants the builder
        // establishes — only the codec and extractor are panic-scoped.
        assert!(!LintId::PanicFreedom.applies_to("crates/phases/src/cluster.rs"));
    }

    #[test]
    fn kmeans_hash_iteration_bad_twin_fires_and_btree_twin_is_clean() {
        // Bad twin: a centroid update that accumulates members in a
        // HashMap and iterates it — the iteration order decides tie-broken
        // representative picks, which reach `.stbp` bytes CI diffs.
        let bad = r#"
fn update_centroids(assign: &[usize], dims: usize) -> Vec<Vec<f64>> {
    let mut members: HashMap<usize, Vec<usize>> = HashMap::new();
    for (slice, &c) in assign.iter().enumerate() {
        members.entry(c).or_default().push(slice);
    }
    let mut out = Vec::new();
    for (c, slices) in members.iter() {
        let _ = (c, slices, dims);
        out.push(vec![0.0; dims]);
    }
    out
}
"#;
        let f = run(LintId::Determinism, bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`members`"), "{}", f[0].message);
        // Good twin: BTreeMap accumulation — iteration order is the key
        // order, stable across runs and toolchains.
        let good = r#"
fn update_centroids(assign: &[usize], dims: usize) -> Vec<Vec<f64>> {
    let mut members: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (slice, &c) in assign.iter().enumerate() {
        members.entry(c).or_default().push(slice);
    }
    let mut out = Vec::new();
    for (c, slices) in members.iter() {
        let _ = (c, slices, dims);
        out.push(vec![0.0; dims]);
    }
    out
}
"#;
        let f = run(LintId::Determinism, good);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn stbp_decode_bad_twin_fires_and_good_twin_is_clean() {
        // Bad twin: a .stbp-style decoder that panics on short input
        // instead of returning a positioned PhaseError.
        let bad = r#"
fn decode_phase_header(data: &[u8]) -> (u16, u64) {
    let version = u16::from_le_bytes(data[4..6].try_into().unwrap());
    let slice_branches = read_varint(&data[8..]).expect("slice size");
    (version, slice_branches)
}
"#;
        let f = run(LintId::PanicFreedom, bad);
        assert_eq!(f.len(), 2, "{f:?}");
        // Good twin: the shape crates/phases/src/file.rs actually uses —
        // every miss becomes a PhaseError with the failing offset.
        let good = r#"
fn decode_phase_header(data: &[u8]) -> Result<(u16, u64), PhaseError> {
    let v = data.get(4..6).ok_or_else(|| PhaseError::truncated(4))?;
    let version = u16::from_le_bytes(v.try_into().map_err(|_| PhaseError::truncated(4))?);
    let rest = data.get(8..).ok_or_else(|| PhaseError::truncated(8))?;
    let slice_branches = read_varint(rest)?;
    Ok((version, slice_branches))
}
"#;
        let f = run(LintId::PanicFreedom, good);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cbp_and_predictor_paths_are_in_scope() {
        // The real-trace frontend and predictor family joined the lint
        // surface in PR 10: the CBP decoder consumes untrusted
        // championship traces and must stay total (positioned errors,
        // never panics), the ITTAGE snapshot loader consumes `.stck`
        // bytes from disk, and the predictors crate as a whole must stay
        // deterministic and wall-clock-free (its allocation lfsr reaches
        // OAE numbers CI diffs against golden fixtures).
        for path in ["crates/trace/src/cbp.rs", "crates/predictors/src/ittage.rs"] {
            assert!(LintId::PanicFreedom.applies_to(path), "{path}");
        }
        for path in [
            "crates/predictors/src/ittage.rs",
            "crates/predictors/src/tage.rs",
            "crates/predictors/src/target.rs",
        ] {
            assert!(LintId::Determinism.applies_to(path), "{path}");
            assert!(LintId::WallClock.applies_to(path), "{path}");
        }
        // Only the snapshot-consuming ITTAGE file is panic-scoped; the
        // rest of the crate may assert on builder-established invariants.
        assert!(!LintId::PanicFreedom.applies_to("crates/predictors/src/tage.rs"));
    }

    #[test]
    fn cbp_decode_bad_twin_fires_and_good_twin_is_clean() {
        // Bad twin: a CBP-record decoder that panics on truncated or
        // out-of-range input instead of returning a positioned CbpError.
        let bad = r#"
fn decode_record(data: &[u8], off: usize) -> (u64, u8, u64) {
    let pc = u64::from_le_bytes(data[off..off + 8].try_into().unwrap());
    let kind = data[off + 8];
    if kind > 5 {
        panic!("bad branch type {kind}");
    }
    let target = read_le_u64(&data[off + 10..]).expect("target");
    (pc, kind, target)
}
"#;
        let f = run(LintId::PanicFreedom, bad);
        // The unwrap, the single index, the panic!, and the expect.
        assert_eq!(f.len(), 4, "{f:?}");
        // Good twin: the shape crates/trace/src/cbp.rs actually uses —
        // every miss becomes a CbpError carrying the failing offset.
        let good = r#"
fn decode_record(data: &[u8], off: usize) -> Result<(u64, u8, u64), CbpError> {
    let pc_bytes = data.get(off..off + 8).ok_or_else(|| CbpError::truncated(off))?;
    let pc = u64::from_le_bytes(pc_bytes.try_into().map_err(|_| CbpError::truncated(off))?);
    let kind = *data.get(off + 8).ok_or_else(|| CbpError::truncated(off + 8))?;
    if kind > 5 {
        return Err(CbpError::bad_type(off + 8, kind));
    }
    let rest = data.get(off + 10..).ok_or_else(|| CbpError::truncated(off + 10))?;
    let target = read_le_u64(rest)?;
    Ok((pc, kind, target))
}
"#;
        let f = run(LintId::PanicFreedom, good);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn ittage_allocation_bad_twin_fires_on_hash_iteration() {
        // Bad twin: picking an ITTAGE allocation victim by iterating a
        // HashMap — the iteration order decides which table is stolen,
        // which reaches OAE numbers diffed against golden fixtures.
        let bad = r#"
fn pick_victim(candidates: &HashMap<usize, u8>) -> Vec<usize> {
    let mut picks = Vec::new();
    for (table, u) in candidates.iter() {
        if *u == 0 {
            picks.push(*table);
        }
    }
    picks
}
"#;
        let f = run(LintId::Determinism, bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`candidates`"), "{}", f[0].message);
        // Good twin: the shape ittage.rs actually uses — a seeded
        // xorshift lfsr scans tables in index order.
        let good = r#"
fn pick_victim(candidates: &[u8], lfsr: &mut u64) -> Option<usize> {
    *lfsr ^= *lfsr << 13;
    *lfsr ^= *lfsr >> 7;
    *lfsr ^= *lfsr << 17;
    let skip = (*lfsr & 1) == 1;
    let mut seen = 0usize;
    for (table, u) in candidates.iter().enumerate() {
        if *u == 0 {
            if skip && seen == 0 {
                seen = 1;
                continue;
            }
            return Some(table);
        }
    }
    None
}
"#;
        let f = run(LintId::Determinism, good);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn clustering_bad_twin_fires_on_wall_clock_seeding() {
        // Bad twin: seeding k-means restarts from the host clock — the
        // clustering (and with it every estimate) would differ per run.
        let bad = r#"
fn pick_restart_seed(base: u64) -> u64 {
    let t = std::time::SystemTime::now();
    base ^ hash(t)
}
"#;
        let f = run(LintId::WallClock, bad);
        assert_eq!(f.len(), 1, "{f:?}");
        let good =
            "fn pick_restart_seed(base: u64, restart: u64) -> u64 { splitmix(base ^ restart) }";
        assert!(run(LintId::WallClock, good).is_empty());
    }

    #[test]
    fn lint_ids_round_trip() {
        for l in LintId::ALL {
            assert_eq!(LintId::from_name(l.name()), Some(*l));
            assert!(!l.summary().is_empty() && !l.rationale().is_empty());
        }
        assert_eq!(LintId::from_name("nope"), None);
    }
}

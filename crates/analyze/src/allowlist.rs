//! The `ci/analyze-allow.toml` allowlist: the only way to suppress a
//! finding.
//!
//! The format is a TOML subset parsed by hand (the workspace takes no
//! external dependencies): `[[allow]]` tables with exactly four
//! double-quoted string keys —
//!
//! ```toml
//! [[allow]]
//! lint = "lock-scope"
//! path = "crates/serve/src/server.rs"
//! pattern = "s.write_all(&frame)"
//! reason = "why this specific site is safe"
//! ```
//!
//! `lint` must name a known lint, `path` is the repo-relative file, and
//! `pattern` must be a substring of the *source line* the finding points
//! at — so an entry keeps suppressing exactly one idiom and goes stale
//! (reported as unused, and visibly so in CI) the moment the code it
//! excuses changes shape. `reason` is mandatory and must be non-empty:
//! an allowlist entry without a written justification is a parse error,
//! not a style nit. See CONTRIBUTING.md for the review policy.

use crate::lints::{Finding, LintId};

/// One `[[allow]]` entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Which lint the entry suppresses.
    pub lint: LintId,
    /// Repo-relative `/`-separated file path the entry applies to.
    pub path: String,
    /// Substring the finding's source line must contain.
    pub pattern: String,
    /// The written justification (mandatory, non-empty).
    pub reason: String,
    /// 1-based line of the `[[allow]]` header, for diagnostics.
    pub line: u32,
}

impl AllowEntry {
    /// True when this entry suppresses `f`.
    pub fn matches(&self, f: &Finding) -> bool {
        self.lint == f.lint && self.path == f.file && f.source_line.contains(&self.pattern)
    }
}

/// A parsed allowlist.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses allowlist text. Errors carry 1-based line numbers.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        // Fields of the entry currently being assembled:
        // (header line, lint, path, pattern, reason).
        type Partial = (
            u32,
            Option<LintId>,
            Option<String>,
            Option<String>,
            Option<String>,
        );
        let mut cur: Option<Partial> = None;

        fn finish(cur: &mut Option<Partial>, entries: &mut Vec<AllowEntry>) -> Result<(), String> {
            let Some((line, lint, path, pattern, reason)) = cur.take() else {
                return Ok(());
            };
            let missing = |k: &str| format!("allow entry at line {line}: missing `{k}`");
            let entry = AllowEntry {
                lint: lint.ok_or_else(|| missing("lint"))?,
                path: path.ok_or_else(|| missing("path"))?,
                pattern: pattern.ok_or_else(|| missing("pattern"))?,
                reason: reason.ok_or_else(|| missing("reason"))?,
                line,
            };
            if entry.reason.trim().is_empty() {
                return Err(format!(
                    "allow entry at line {line}: `reason` must be a non-empty justification"
                ));
            }
            if entry.pattern.is_empty() {
                return Err(format!(
                    "allow entry at line {line}: `pattern` must be non-empty (it anchors \
                     the entry to one source idiom)"
                ));
            }
            entries.push(entry);
            Ok(())
        }

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                finish(&mut cur, &mut entries)?;
                cur = Some((lineno, None, None, None, None));
                continue;
            }
            if line.starts_with('[') {
                return Err(format!(
                    "line {lineno}: unknown table `{line}` (only `[[allow]]` is supported)"
                ));
            }
            let Some((key, rest)) = line.split_once('=') else {
                return Err(format!(
                    "line {lineno}: expected `key = \"value\"`, got `{line}`"
                ));
            };
            let value = parse_string(rest.trim())
                .ok_or_else(|| format!("line {lineno}: value must be a double-quoted string"))?;
            let Some(entry) = cur.as_mut() else {
                return Err(format!(
                    "line {lineno}: `{}` outside an [[allow]] table",
                    key.trim()
                ));
            };
            match key.trim() {
                "lint" => {
                    let lint = LintId::from_name(&value).ok_or_else(|| {
                        format!(
                            "line {lineno}: unknown lint `{value}` (known: {})",
                            LintId::ALL
                                .iter()
                                .map(|l| l.name())
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    })?;
                    entry.1 = Some(lint);
                }
                "path" => entry.2 = Some(value),
                "pattern" => entry.3 = Some(value),
                "reason" => entry.4 = Some(value),
                other => {
                    return Err(format!("line {lineno}: unknown key `{other}`"));
                }
            }
        }
        finish(&mut cur, &mut entries)?;
        Ok(Allowlist { entries })
    }

    /// Loads and parses `path`. A missing file is an empty allowlist.
    pub fn load(path: &std::path::Path) -> Result<Allowlist, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Allowlist::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }
}

/// Parses a double-quoted TOML basic string with `\"` and `\\` escapes.
/// Trailing inline comments after the closing quote are accepted.
fn parse_string(s: &str) -> Option<String> {
    let rest = s.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                let tail = chars.as_str().trim();
                if tail.is_empty() || tail.starts_with('#') {
                    return Some(out);
                }
                return None;
            }
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                't' => out.push('\t'),
                'n' => out.push('\n'),
                _ => return None,
            },
            other => out.push(other),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_matches_findings() {
        let text = r#"
# suppressions for intentional patterns
[[allow]]
lint = "lock-scope"
path = "crates/serve/src/server.rs"
pattern = "s.write_all(&frame)"
reason = "flush serializes writers; SO_SNDTIMEO bounds the hold time"
"#;
        let al = Allowlist::parse(text).unwrap();
        assert_eq!(al.entries.len(), 1);
        let f = Finding {
            lint: LintId::LockScope,
            file: "crates/serve/src/server.rs".into(),
            line: 10,
            col: 5,
            message: "blocking".into(),
            source_line: "if s.write_all(&frame).is_err() {".into(),
        };
        assert!(al.entries[0].matches(&f));
        let other = Finding {
            file: "crates/serve/src/client.rs".into(),
            ..f.clone()
        };
        assert!(!al.entries[0].matches(&other), "path must match exactly");
        let moved = Finding {
            source_line: "q.push_back(frame);".into(),
            ..f
        };
        assert!(!al.entries[0].matches(&moved), "pattern anchors the idiom");
    }

    #[test]
    fn reason_is_mandatory_and_must_be_non_empty() {
        let missing = "[[allow]]\nlint = \"determinism\"\npath = \"a.rs\"\npattern = \"x\"\n";
        assert!(Allowlist::parse(missing)
            .unwrap_err()
            .contains("missing `reason`"));
        let empty =
            "[[allow]]\nlint = \"determinism\"\npath = \"a.rs\"\npattern = \"x\"\nreason = \"  \"\n";
        assert!(Allowlist::parse(empty).unwrap_err().contains("non-empty"));
    }

    #[test]
    fn rejects_unknown_lints_keys_and_tables() {
        assert!(Allowlist::parse("[[allow]]\nlint = \"nope\"\n")
            .unwrap_err()
            .contains("unknown lint"));
        assert!(Allowlist::parse("[[allow]]\nflavor = \"x\"\n")
            .unwrap_err()
            .contains("unknown key"));
        assert!(Allowlist::parse("[general]\n")
            .unwrap_err()
            .contains("unknown table"));
        assert!(Allowlist::parse("lint = \"determinism\"\n")
            .unwrap_err()
            .contains("outside an [[allow]]"));
    }

    #[test]
    fn empty_and_comment_only_files_parse() {
        assert!(Allowlist::parse("").unwrap().entries.is_empty());
        assert!(Allowlist::parse("# nothing here\n\n")
            .unwrap()
            .entries
            .is_empty());
    }
}

//! A lightweight Rust tokenizer: enough lexical fidelity for source-level
//! lints, nothing more.
//!
//! The lexer understands everything that could make a naive text scan lie
//! about code — line and (nested) block comments, string / raw-string /
//! byte-string / char literals, lifetimes vs. char literals — and reduces
//! the rest to identifiers, numbers and single-character punctuation,
//! each carrying its 1-based line and column. It deliberately does *not*
//! build a syntax tree: the lints in [`crate::lints`] pattern-match token
//! windows and track brace depth themselves, which keeps the whole engine
//! dependency-free and fast enough to run on every file of the workspace
//! in CI.

/// What a token is. Literal payloads are not kept — no lint needs to see
/// inside a string, only to know it is one (so `"unwrap()"` in a message
/// never fires the panic-freedom lint).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`let`, `HashMap`, `unwrap`, …).
    Ident,
    /// One punctuation character (`.`, `{`, `!`, …). Multi-character
    /// operators arrive as consecutive tokens (`::` is two `:`).
    Punct(char),
    /// A string / raw-string / byte-string literal.
    Str,
    /// A character or byte literal.
    Char,
    /// A numeric literal (integers, floats, and their suffixes).
    Num,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

/// One token with its source position.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// The identifier text; empty for every other kind.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

impl Tok {
    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Tokenizes Rust source. Malformed input (unterminated strings or
/// comments) does not error: the lexer consumes to end of input, which is
/// the right degradation for a linter — the compiler owns syntax errors.
pub fn tokenize(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    // Advances over `n` characters, maintaining line/col.
    macro_rules! advance {
        ($n:expr) => {
            for _ in 0..$n {
                if i < chars.len() {
                    if chars[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        let next = chars.get(i + 1).copied();

        if c.is_whitespace() {
            advance!(1);
            continue;
        }

        // Comments (doc comments included — they are comments to a lint).
        if c == '/' && next == Some('/') {
            while i < chars.len() && chars[i] != '\n' {
                advance!(1);
            }
            continue;
        }
        if c == '/' && next == Some('*') {
            advance!(2);
            let mut depth = 1usize;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    advance!(2);
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    advance!(2);
                } else {
                    advance!(1);
                }
            }
            continue;
        }

        // Raw strings: r"…", r#"…"#, br#"…"# — find the matching quote
        // with the same hash count.
        let raw_prefix = match (c, next) {
            ('r', Some('"' | '#')) => Some(1),
            ('b', Some('r')) if matches!(chars.get(i + 2), Some('"' | '#')) => Some(2),
            _ => None,
        };
        if let Some(skip) = raw_prefix {
            advance!(skip);
            let mut hashes = 0usize;
            while chars.get(i) == Some(&'#') {
                hashes += 1;
                advance!(1);
            }
            if chars.get(i) == Some(&'"') {
                advance!(1);
                'raw: while i < chars.len() {
                    if chars[i] == '"' {
                        let mut ok = true;
                        for h in 0..hashes {
                            if chars.get(i + 1 + h) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            advance!(1 + hashes);
                            break 'raw;
                        }
                    }
                    advance!(1);
                }
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: tline,
                    col: tcol,
                });
                continue;
            }
            // `r#ident` (raw identifier) or a lone `r`/`b` — fall through
            // by emitting the consumed prefix as an identifier start.
            let mut text = String::from(if skip == 2 { "br" } else { "r" });
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                text.push(chars[i]);
                advance!(1);
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Plain and byte strings.
        if c == '"' || (c == 'b' && next == Some('"')) {
            advance!(if c == 'b' { 2 } else { 1 });
            while i < chars.len() {
                match chars[i] {
                    '\\' => advance!(2),
                    '"' => {
                        advance!(1);
                        break;
                    }
                    _ => advance!(1),
                }
            }
            toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Lifetime vs. char literal: `'a` / `'static` are lifetimes when
        // not closed by a quote; `'x'`, `'\n'` are chars.
        if c == '\'' {
            let is_char = match next {
                Some('\\') => true,
                Some(n) if n.is_alphanumeric() || n == '_' => chars.get(i + 2) == Some(&'\''),
                Some(_) => true, // e.g. '(' … punctuation chars
                None => true,
            };
            if is_char {
                advance!(1);
                while i < chars.len() {
                    match chars[i] {
                        '\\' => advance!(2),
                        '\'' => {
                            advance!(1);
                            break;
                        }
                        _ => advance!(1),
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line: tline,
                    col: tcol,
                });
            } else {
                advance!(1);
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    advance!(1);
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: String::new(),
                    line: tline,
                    col: tcol,
                });
            }
            continue;
        }

        // Numbers. A `.` is part of the number only when a digit follows
        // (so `0..10` lexes as `0`, `.`, `.`, `10`).
        if c.is_ascii_digit() {
            advance!(1);
            while i < chars.len() {
                let d = chars[i];
                let in_number = d.is_alphanumeric()
                    || d == '_'
                    || (d == '.' && chars.get(i + 1).is_some_and(char::is_ascii_digit));
                if !in_number {
                    break;
                }
                advance!(1);
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: String::new(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Identifiers and keywords.
        if c.is_alphabetic() || c == '_' {
            let mut text = String::new();
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                text.push(chars[i]);
                advance!(1);
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line: tline,
                col: tcol,
            });
            continue;
        }

        toks.push(Tok {
            kind: TokKind::Punct(c),
            text: String::new(),
            line: tline,
            col: tcol,
        });
        advance!(1);
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r####"
            // unwrap in a line comment
            /* unwrap in /* a nested */ block */
            let a = "unwrap() in a string";
            let b = r#"unwrap in a raw "string""#;
            let c = b"unwrap bytes";
            real_ident();
        "####;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unwrap"), "{ids:?}");
        assert!(ids.iter().any(|i| i == "real_ident"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = tokenize("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn ranges_do_not_swallow_dots() {
        let toks = tokenize("&x[0..10]");
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "0..10 must lex the range dots separately");
        let toks = tokenize("let f = 1.5e-9;");
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 0, "float literals keep their dot");
    }

    #[test]
    fn unterminated_input_terminates() {
        // Degenerate inputs must not hang or panic.
        for src in ["\"abc", "/* open", "r#\"open", "'"] {
            let _ = tokenize(src);
        }
    }
}

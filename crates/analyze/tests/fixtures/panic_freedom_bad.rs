//! Panicking constructs in a request/decode path: any of these kills a
//! worker or reader thread on malformed input. The `panic-freedom` lint
//! must fire on the unwrap, the expect, the panic! and the unchecked
//! index.

fn decode(body: &[u8]) -> (u8, u64) {
    let tag = body.first().unwrap();
    let len = body.get(1).expect("length byte");
    if *len == 0 {
        panic!("empty payload");
    }
    let first = body[2];
    (*tag, u64::from(first) + u64::from(*len))
}

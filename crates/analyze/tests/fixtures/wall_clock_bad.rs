//! Host-clock reads inside simulation code: results become a function of
//! the machine, not the event stream. The `wall-clock` lint must fire on
//! both the `Instant::now` and the `SystemTime` use.

use std::time::{Instant, SystemTime};

struct Window {
    started: Instant,
}

fn open_window() -> Window {
    Window {
        started: Instant::now(),
    }
}

fn stamp() -> u64 {
    match SystemTime::now().duration_since(SystemTime::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}

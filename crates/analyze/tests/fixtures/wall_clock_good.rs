//! The fixed twin of `wall_clock_bad.rs`: simulated time is carried by
//! the event stream (branch counts), never read from the host clock.
//! The `wall-clock` lint must stay quiet.

struct Window {
    started_branch: u64,
}

fn open_window(branch: u64) -> Window {
    Window {
        started_branch: branch,
    }
}

fn stamp(branches_retired: u64) -> u64 {
    branches_retired
}

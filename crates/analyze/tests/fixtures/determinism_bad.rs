//! Hash-ordered iteration feeding serialized output: the rendered report
//! changes from run to run. The `determinism` lint must fire on both the
//! method iteration and the `for` loop.

use std::collections::{HashMap, HashSet};

struct Report {
    per_session: HashMap<u64, f64>,
}

impl Report {
    fn render(&self) -> String {
        let mut out = String::new();
        for (id, oae) in self.per_session.iter() {
            out.push_str(&format!("session {id}: oae {oae}\n"));
        }
        out
    }
}

fn seen_lines(ids: &[u64]) -> String {
    let mut seen = HashSet::new();
    for id in ids {
        seen.insert(*id);
    }
    let mut out = String::new();
    for id in &seen {
        out.push_str(&format!("{id}\n"));
    }
    out
}

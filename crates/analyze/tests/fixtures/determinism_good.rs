//! The fixed twin of `determinism_bad.rs`: ordered maps where iteration
//! reaches output, and hash maps kept for point lookups only. The
//! `determinism` lint must stay quiet.

use std::collections::{BTreeMap, BTreeSet, HashMap};

struct Report {
    per_session: BTreeMap<u64, f64>,
    index: HashMap<u64, usize>,
}

impl Report {
    fn render(&self) -> String {
        let mut out = String::new();
        for (id, oae) in self.per_session.iter() {
            out.push_str(&format!("session {id}: oae {oae}\n"));
        }
        out
    }

    fn lookup(&self, id: u64) -> Option<usize> {
        self.index.get(&id).copied()
    }
}

fn seen_lines(ids: &[u64]) -> String {
    let seen: BTreeSet<u64> = ids.iter().copied().collect();
    let mut out = String::new();
    for id in &seen {
        out.push_str(&format!("{id}\n"));
    }
    out
}

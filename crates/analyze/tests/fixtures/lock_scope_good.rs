//! The fixed twin of `lock_scope_bad.rs` — the PR 6 fix pattern: take
//! what you need under the lock, release it, then do the socket I/O.
//! The `lock-scope` lint must stay quiet.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

struct State {
    frames: Vec<Vec<u8>>,
}

fn broadcast(state: &Mutex<State>, sock: &mut TcpStream) {
    let frames: Vec<Vec<u8>> = {
        let mut st = state.lock().unwrap();
        st.frames.drain(..).collect()
    };
    for frame in frames {
        if sock.write_all(&frame).is_err() {
            return;
        }
    }
}

fn explicit_drop(state: &Mutex<State>, sock: &mut TcpStream) {
    let mut st = state.lock().unwrap();
    let frame = st.frames.pop().unwrap_or_default();
    drop(st);
    let _ = sock.write_all(&frame);
}

//! The fixed twin of `panic_freedom_bad.rs`: every malformed shape
//! becomes an `Err` the caller can answer with a positioned Error frame.
//! The `panic-freedom` lint must stay quiet (range slicing on checked
//! bounds and `debug_assert!` are allowed).

fn decode(body: &[u8]) -> Result<(u8, u64), String> {
    let Some(tag) = body.first() else {
        return Err("empty frame".to_string());
    };
    let Some(len) = body.get(1) else {
        return Err("missing length byte".to_string());
    };
    if *len == 0 {
        return Err("empty payload".to_string());
    }
    let Some(first) = body.get(2) else {
        return Err("truncated payload".to_string());
    };
    debug_assert!(body.len() >= 3);
    let _rest = &body[..3];
    Ok((*tag, u64::from(*first) + u64::from(*len)))
}

#[cfg(test)]
mod tests {
    use super::decode;

    #[test]
    fn tests_may_unwrap_freely() {
        assert_eq!(decode(&[7, 2, 5]).unwrap(), (7, 7));
    }
}

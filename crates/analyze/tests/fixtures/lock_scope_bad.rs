//! Minimized reproduction of the PR 6 daemon wedge: frames are written
//! to the socket while the registry lock is held, so one peer that stops
//! reading its socket stalls every thread that needs the registry.
//! The `lock-scope` lint must fire on the `write_all` under the guard.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

struct State {
    frames: Vec<Vec<u8>>,
}

fn broadcast(state: &Mutex<State>, sock: &mut TcpStream) {
    let mut st = state.lock().unwrap();
    for frame in st.frames.drain(..) {
        if sock.write_all(&frame).is_err() {
            return;
        }
    }
}

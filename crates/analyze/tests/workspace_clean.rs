//! The live workspace must analyze clean against the checked-in
//! allowlist — the same check CI's `stbpu analyze` gate runs, as a plain
//! test so `cargo test` alone catches a violation.

use stbpu_analyze::{analyze_workspace, Allowlist};
use std::path::Path;

#[test]
fn live_workspace_analyzes_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze sits two levels under the workspace root");
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let allow = Allowlist::load(&root.join("ci").join("analyze-allow.toml"))
        .expect("checked-in allowlist must parse");
    let report = analyze_workspace(root, &allow).expect("analysis must complete");
    assert!(
        report.files_scanned > 50,
        "walker found too few files — broken?"
    );
    assert!(
        report.is_clean(),
        "the workspace must analyze clean; findings:\n{}",
        report.render_human()
    );
    assert!(
        report.unused_allows.is_empty(),
        "stale allowlist entries — remove or update them:\n{}",
        report
            .unused_allows
            .iter()
            .map(|e| format!(
                "  line {}: {} {} {:?}",
                e.line,
                e.lint.name(),
                e.path,
                e.pattern
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The intentional write-under-lock sites are suppressed, not absent —
    // if this count drifts the allowlist and code have desynchronized.
    assert_eq!(
        report.suppressed.len(),
        2,
        "expected exactly the two documented lock-scope suppressions:\n{:?}",
        report.suppressed
    );
}

//! The fixture corpus: every lint has known-bad snippets that must fire
//! with positioned diagnostics and fixed twins that must stay quiet.
//! The bad lock-scope fixture is a minimized reproduction of the PR 6
//! daemon wedge (socket writes under the registry lock).

use stbpu_analyze::{lint_source, Finding, LintId};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn run(lint: LintId, name: &str) -> Vec<Finding> {
    lint_source(name, &fixture(name), &[lint])
}

/// Every finding must be positioned: non-zero line/col, a non-empty
/// message, and a captured source line for allowlist anchoring.
fn assert_positioned(findings: &[Finding]) {
    for f in findings {
        assert!(f.line > 0 && f.col > 0, "unpositioned finding: {f:?}");
        assert!(!f.message.is_empty(), "empty message: {f:?}");
        assert!(!f.source_line.is_empty(), "no source line: {f:?}");
    }
}

#[test]
fn lock_scope_fires_on_the_pr6_wedge_pattern() {
    let findings = run(LintId::LockScope, "lock_scope_bad.rs");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_positioned(&findings);
    let f = &findings[0];
    assert_eq!(f.lint, LintId::LockScope);
    assert!(
        f.source_line.contains("sock.write_all(&frame)"),
        "must point at the socket write under the guard: {f:?}"
    );
    assert!(
        f.message.contains("`st`"),
        "must name the live guard: {}",
        f.message
    );
}

#[test]
fn lock_scope_passes_the_fixed_twin() {
    let findings = run(LintId::LockScope, "lock_scope_good.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn determinism_fires_on_hash_iteration_reaching_output() {
    let findings = run(LintId::Determinism, "determinism_bad.rs");
    assert_positioned(&findings);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings[0].source_line.contains("per_session.iter()"));
    assert!(findings[1].source_line.contains("for id in &seen"));
}

#[test]
fn determinism_passes_the_fixed_twin() {
    let findings = run(LintId::Determinism, "determinism_good.rs");
    assert!(
        findings.is_empty(),
        "BTreeMap iteration and HashMap point lookups are fine: {findings:?}"
    );
}

#[test]
fn wall_clock_fires_on_host_clock_reads() {
    let findings = run(LintId::WallClock, "wall_clock_bad.rs");
    assert_positioned(&findings);
    assert!(
        findings.iter().any(|f| f.message.contains("Instant::now")),
        "{findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.message.contains("SystemTime")),
        "{findings:?}"
    );
}

#[test]
fn wall_clock_passes_the_fixed_twin() {
    let findings = run(LintId::WallClock, "wall_clock_good.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn panic_freedom_fires_on_every_panicking_construct() {
    let findings = run(LintId::PanicFreedom, "panic_freedom_bad.rs");
    assert_positioned(&findings);
    assert_eq!(findings.len(), 4, "{findings:?}");
    let lines: Vec<&str> = findings.iter().map(|f| f.source_line.as_str()).collect();
    assert!(lines[0].contains(".unwrap()"), "{lines:?}");
    assert!(lines[1].contains(".expect("), "{lines:?}");
    assert!(lines[2].contains("panic!"), "{lines:?}");
    assert!(lines[3].contains("body[2]"), "{lines:?}");
}

#[test]
fn panic_freedom_passes_the_fixed_twin() {
    let findings = run(LintId::PanicFreedom, "panic_freedom_good.rs");
    assert!(
        findings.is_empty(),
        "let-else, .get(), debug_assert! and test-module unwraps are fine: {findings:?}"
    );
}

//! Minimal offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface the STBPU workspace uses:
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), the [`Rng`] and
//! [`SeedableRng`] traits with `gen`, `gen_range` and `gen_bool`, and
//! [`seq::SliceRandom::shuffle`]. See `crates/compat/README.md`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from raw RNG output (the `Standard` distribution of the
/// real crate).
pub trait SampleUniform: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl SampleUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl SampleUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (u128::sample(rng) % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (u128::sample(rng) % span) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods (subset of the real `Rng`).
pub trait Rng: RngCore {
    /// Uniform value of any [`SampleUniform`] type.
    fn gen<T: SampleUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value within a range.
    fn gen_range<T, Sp: SampleRange<T>>(&mut self, range: Sp) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a seed, expanding it via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Workspace-standard generator: xoshiro256++ (Blackman & Vigna),
    /// seeded through SplitMix64. Fast, high-quality and dependency-free;
    /// *not* stream-compatible with the real crate's ChaCha-based `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpoint serialization.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured [`StdRng::state`]
        /// — the restored stream continues exactly where the original left
        /// off.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice utilities (subset of `rand::seq`).
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let v = r.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = r.gen_range(2..=4usize);
            assert!((2..=4).contains(&w));
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle must move something");
    }
}

//! Minimal offline stand-in for the `criterion` crate.
//!
//! Provides the subset the workspace's benches use — [`Criterion`],
//! benchmark groups, [`black_box`], `iter`/`iter_batched`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a simple
//! wall-clock timer (median-free: mean ns/iter over a fixed budget).
//! See `crates/compat/README.md`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-exported opaque value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped (accepted for API compatibility; the
/// shim always re-runs setup per batch).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<D: Display>(name: &str, parameter: D) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

/// Target measurement budget per benchmark.
const BUDGET: Duration = Duration::from_millis(40);

impl Bencher {
    fn new() -> Self {
        Bencher {
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (Duration::from_millis(2).as_nanos() / once.as_nanos()).max(1) as u64;

        let deadline = Instant::now() + BUDGET;
        while Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.total += t.elapsed();
            self.iters += per_batch;
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<S, O, Setup: FnMut() -> S, R: FnMut(S) -> O>(
        &mut self,
        mut setup: Setup,
        mut routine: R,
        _size: BatchSize,
    ) {
        let deadline = Instant::now() + BUDGET;
        while Instant::now() < deadline {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.total += t.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("{label:<40} (no iterations)");
            return;
        }
        let ns = self.total.as_nanos() as f64 / self.iters as f64;
        println!("{label:<40} {ns:>14.1} ns/iter  ({} iters)", self.iters);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim uses a time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("f", |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::from_parameter("p"), &3u32, |b, &x| {
            b.iter_batched(|| x, |v| black_box(v + 1), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn api_surface_works() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}

//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` header, `any::<T>()`, integer/float
//! range strategies, tuple strategies, [`Strategy::prop_map`],
//! [`collection::vec`], and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate: no shrinking (a failing case panics
//! with the generated values via the ordinary `assert!` message), and the
//! per-test RNG seed is derived from the test function's name, so runs are
//! deterministic. See `crates/compat/README.md`.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// FNV-1a over the test name: a stable per-test seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Test-runner types (config and the rejection sentinel).
pub mod test_runner {
    /// Marker returned by `prop_assume!` when a case is rejected.
    #[derive(Clone, Copy, Debug)]
    pub struct Reject;

    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// A value generator. The shim generates independently per case; there is
/// no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy for "any value of `T`" — see [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

/// Generates arbitrary values of `T` (the `any::<T>()` entry point).
pub fn any<T>() -> AnyStrategy<T>
where
    AnyStrategy<T>: Strategy<Value = T>,
{
    AnyStrategy(PhantomData)
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_any!(bool, u8, u16, u32, u64, u128, usize, i32, i64, f64);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// A strategy that always yields clones of one value.
pub struct JustStrategy<T: Clone>(pub T);

/// `Just(v)`: always generates `v`.
#[allow(non_snake_case)]
pub fn Just<T: Clone>(v: T) -> JustStrategy<T> {
    JustStrategy(v)
}

impl<T: Clone> Strategy for JustStrategy<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length falls in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// One-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, ..)`
/// item becomes an ordinary test running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                    $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    // The closure gives `prop_assume!` an early-exit scope;
                    // a rejected case is simply skipped.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::core::result::Result<(), $crate::test_runner::Reject> =
                        (|| {
                            $body
                            Ok(())
                        })();
                    let _ = (__case, __outcome);
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn composite() -> impl Strategy<Value = (u64, bool)> {
        (0u64..100, any::<bool>()).prop_map(|(a, b)| (a * 2, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 5u64..10, y in 1u8..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn mapped_strategy(v in composite()) {
            prop_assert_eq!(v.0 % 2, 0);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }
    }
}

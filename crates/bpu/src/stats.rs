//! Prediction statistics, including the paper's OAE metric.

use crate::branch::BranchKind;
use crate::snap::{SnapError, StateReader, StateWriter};
use std::fmt;

/// Accumulated prediction statistics for one model run.
///
/// The headline metric is **overall accuracy effective (OAE)**: a branch
/// counts as correctly predicted only if *all necessary* predictions
/// (direction and target) were correct (Section VII-B1).
#[derive(Clone, Debug, Default)]
pub struct BpuStats {
    /// Branches processed.
    pub branches: u64,
    /// Branches with every necessary prediction correct.
    pub effective_correct: u64,
    /// Conditional branches seen.
    pub cond: u64,
    /// Conditional branches with correct direction.
    pub cond_correct: u64,
    /// Branches needing a target prediction (taken branches).
    pub target_needed: u64,
    /// Target predictions that were correct.
    pub target_correct: u64,
    /// Total mispredictions (wrong direction or wrong target).
    pub mispredictions: u64,
    /// BTB evictions observed.
    pub btb_evictions: u64,
    /// BTB lookup misses.
    pub btb_misses: u64,
    /// RSB underflows (returns served by the indirect predictor).
    pub rsb_underflows: u64,
    /// Full flushes performed (µcode protections).
    pub flushes: u64,
    /// Per-kind branch counts.
    pub by_kind: [u64; 6],
    /// Per-kind effective-correct counts.
    pub by_kind_correct: [u64; 6],
}

impl BpuStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overall accuracy effective — fraction of branches with all necessary
    /// predictions correct. Returns 1.0 for an empty run.
    pub fn oae(&self) -> f64 {
        if self.branches == 0 {
            1.0
        } else {
            self.effective_correct as f64 / self.branches as f64
        }
    }

    /// Direction prediction rate over conditional branches.
    pub fn direction_rate(&self) -> f64 {
        if self.cond == 0 {
            1.0
        } else {
            self.cond_correct as f64 / self.cond as f64
        }
    }

    /// Target prediction rate over branches that needed a target.
    pub fn target_rate(&self) -> f64 {
        if self.target_needed == 0 {
            1.0
        } else {
            self.target_correct as f64 / self.target_needed as f64
        }
    }

    /// Misprediction rate per branch.
    pub fn misprediction_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branches as f64
        }
    }

    /// Records one processed branch of `kind` with its effective result.
    pub fn record(&mut self, kind: BranchKind, effective_correct: bool) {
        self.branches += 1;
        self.by_kind[kind.index()] += 1;
        if effective_correct {
            self.effective_correct += 1;
            self.by_kind_correct[kind.index()] += 1;
        }
    }

    /// Per-kind OAE, or `None` if the kind never occurred.
    pub fn kind_oae(&self, kind: BranchKind) -> Option<f64> {
        let n = self.by_kind[kind.index()];
        if n == 0 {
            None
        } else {
            Some(self.by_kind_correct[kind.index()] as f64 / n as f64)
        }
    }

    /// Merges another stats block into this one (for aggregating per-thread
    /// or per-shard runs).
    pub fn merge(&mut self, other: &BpuStats) {
        self.branches += other.branches;
        self.effective_correct += other.effective_correct;
        self.cond += other.cond;
        self.cond_correct += other.cond_correct;
        self.target_needed += other.target_needed;
        self.target_correct += other.target_correct;
        self.mispredictions += other.mispredictions;
        self.btb_evictions += other.btb_evictions;
        self.btb_misses += other.btb_misses;
        self.rsb_underflows += other.rsb_underflows;
        self.flushes += other.flushes;
        for i in 0..6 {
            self.by_kind[i] += other.by_kind[i];
            self.by_kind_correct[i] += other.by_kind_correct[i];
        }
    }

    /// Serializes every counter for checkpointing.
    pub fn save_state(&self, w: &mut StateWriter) {
        for v in [
            self.branches,
            self.effective_correct,
            self.cond,
            self.cond_correct,
            self.target_needed,
            self.target_correct,
            self.mispredictions,
            self.btb_evictions,
            self.btb_misses,
            self.rsb_underflows,
            self.flushes,
        ] {
            w.u64(v);
        }
        for v in self.by_kind.iter().chain(self.by_kind_correct.iter()) {
            w.u64(*v);
        }
    }

    /// Restores counters saved by [`BpuStats::save_state`].
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.branches = r.u64()?;
        self.effective_correct = r.u64()?;
        self.cond = r.u64()?;
        self.cond_correct = r.u64()?;
        self.target_needed = r.u64()?;
        self.target_correct = r.u64()?;
        self.mispredictions = r.u64()?;
        self.btb_evictions = r.u64()?;
        self.btb_misses = r.u64()?;
        self.rsb_underflows = r.u64()?;
        self.flushes = r.u64()?;
        for v in self
            .by_kind
            .iter_mut()
            .chain(self.by_kind_correct.iter_mut())
        {
            *v = r.u64()?;
        }
        Ok(())
    }
}

impl fmt::Display for BpuStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "branches={} OAE={:.4} dir={:.4} tgt={:.4} misp={} evict={} flush={}",
            self.branches,
            self.oae(),
            self.direction_rate(),
            self.target_rate(),
            self.mispredictions,
            self.btb_evictions,
            self.flushes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_benign() {
        let s = BpuStats::new();
        assert_eq!(s.oae(), 1.0);
        assert_eq!(s.direction_rate(), 1.0);
        assert_eq!(s.target_rate(), 1.0);
        assert_eq!(s.misprediction_rate(), 0.0);
        assert!(s.kind_oae(BranchKind::Return).is_none());
    }

    #[test]
    fn oae_counts_only_fully_correct() {
        let mut s = BpuStats::new();
        s.record(BranchKind::Conditional, true);
        s.record(BranchKind::Conditional, false);
        s.record(BranchKind::Return, true);
        assert_eq!(s.branches, 3);
        assert!((s.oae() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.kind_oae(BranchKind::Conditional), Some(0.5));
        assert_eq!(s.kind_oae(BranchKind::Return), Some(1.0));
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = BpuStats::new();
        a.record(BranchKind::Conditional, true);
        a.mispredictions = 3;
        let mut b = BpuStats::new();
        b.record(BranchKind::Return, false);
        b.btb_evictions = 5;
        a.merge(&b);
        assert_eq!(a.branches, 2);
        assert_eq!(a.mispredictions, 3);
        assert_eq!(a.btb_evictions, 5);
        assert_eq!(a.by_kind[BranchKind::Return.index()], 1);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", BpuStats::new()).is_empty());
    }
}

//! Return stack buffer (RSB).
//!
//! A fixed-size hardware stack of return addresses (16 entries in the
//! Skylake baseline). Calls push, returns pop. Because capacity is limited,
//! deep call chains overwrite the oldest entries (overflow) and the matching
//! returns then find the stack empty (underflow) — in that case the BPU
//! falls back to the indirect predictor (Section II-A).
//!
//! The RSB stores an opaque `u64` payload. The baseline model stores the
//! truncated 32-bit return target; STBPU stores that value XOR-encrypted
//! with φ — both decisions are made by the surrounding model, keeping this
//! structure mechanism-agnostic.

use crate::snap::{check_len, SnapError, StateReader, StateWriter};

/// A circular hardware return stack.
///
/// ```
/// use stbpu_bpu::Rsb;
/// let mut r = Rsb::new(4);
/// r.push(1);
/// r.push(2);
/// assert_eq!(r.pop(), Some(2));
/// assert_eq!(r.pop(), Some(1));
/// assert_eq!(r.pop(), None); // underflow
/// ```
#[derive(Clone, Debug)]
pub struct Rsb {
    slots: Vec<u64>,
    /// Index of the next free slot (top of stack is `top - 1`).
    top: usize,
    /// Number of live entries (≤ capacity).
    live: usize,
    overflows: u64,
    underflows: u64,
}

impl Rsb {
    /// Creates an RSB with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RSB capacity must be nonzero");
        Rsb {
            slots: vec![0; capacity],
            top: 0,
            live: 0,
            overflows: 0,
            underflows: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of live (poppable) entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live entries remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Pushes a payload; silently overwrites the oldest entry when full
    /// (hardware stacks wrap rather than stall).
    pub fn push(&mut self, payload: u64) {
        if self.live == self.slots.len() {
            self.overflows += 1;
        } else {
            self.live += 1;
        }
        let cap = self.slots.len();
        self.slots[self.top] = payload;
        self.top = (self.top + 1) % cap;
    }

    /// Pops the most recent payload, or `None` on underflow (the caller
    /// then falls back to the indirect predictor).
    pub fn pop(&mut self) -> Option<u64> {
        if self.live == 0 {
            self.underflows += 1;
            return None;
        }
        let cap = self.slots.len();
        self.top = (self.top + cap - 1) % cap;
        self.live -= 1;
        Some(self.slots[self.top])
    }

    /// Peeks at the top of stack without popping.
    pub fn peek(&self) -> Option<u64> {
        if self.live == 0 {
            return None;
        }
        let cap = self.slots.len();
        Some(self.slots[(self.top + cap - 1) % cap])
    }

    /// Re-encodes every live entry through `f` — used when a secret token is
    /// re-randomized and φ-encrypted payloads must be treated as garbage; the
    /// model variant that models hardware exactly instead leaves stale
    /// ciphertext in place (see `stbpu-core`).
    pub fn map_in_place(&mut self, mut f: impl FnMut(u64) -> u64) {
        for s in &mut self.slots {
            *s = f(*s);
        }
    }

    /// Empties the stack.
    pub fn clear(&mut self) {
        self.top = 0;
        self.live = 0;
    }

    /// Number of pushes that overwrote a live entry.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Number of pops from an empty stack.
    pub fn underflows(&self) -> u64 {
        self.underflows
    }

    /// Serializes the complete stack (all slots, including dead ones — they
    /// still hold payload bytes that `map_in_place` may rewrite) for
    /// checkpointing.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.slots.len());
        w.usize(self.top);
        w.usize(self.live);
        w.u64(self.overflows);
        w.u64(self.underflows);
        for s in &self.slots {
            w.u64(*s);
        }
    }

    /// Restores state saved by [`Rsb::save_state`] into a stack of the same
    /// capacity.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let cap = r.usize()?;
        check_len(r, "RSB", cap, self.slots.len())?;
        let top = r.usize()?;
        if top >= cap {
            return Err(r.err(format!("RSB top {top} out of range for capacity {cap}")));
        }
        let live = r.usize()?;
        if live > cap {
            return Err(r.err(format!("RSB live count {live} exceeds capacity {cap}")));
        }
        self.top = top;
        self.live = live;
        self.overflows = r.u64()?;
        self.underflows = r.u64()?;
        for s in &mut self.slots {
            *s = r.u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = Rsb::new(8);
        for i in 0..5 {
            r.push(i);
        }
        for i in (0..5).rev() {
            assert_eq!(r.pop(), Some(i));
        }
    }

    #[test]
    fn overflow_overwrites_oldest() {
        let mut r = Rsb::new(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.overflows(), 2);
        assert_eq!(r.len(), 3);
        // The three most recent survive.
        assert_eq!(r.pop(), Some(4));
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        // The two oldest were destroyed — deep recursion mispredicts on
        // unwind, which the RSB eviction-based attack of Table I exploits.
        assert_eq!(r.pop(), None);
        assert_eq!(r.underflows(), 1);
    }

    #[test]
    fn peek_does_not_pop() {
        let mut r = Rsb::new(2);
        r.push(7);
        assert_eq!(r.peek(), Some(7));
        assert_eq!(r.len(), 1);
        assert_eq!(r.pop(), Some(7));
        assert_eq!(r.peek(), None);
    }

    #[test]
    fn clear_empties() {
        let mut r = Rsb::new(4);
        r.push(1);
        r.push(2);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn map_in_place_rewrites_payloads() {
        let mut r = Rsb::new(4);
        r.push(0x10);
        r.push(0x20);
        r.map_in_place(|v| v ^ 0xff);
        assert_eq!(r.pop(), Some(0x20 ^ 0xff));
        assert_eq!(r.pop(), Some(0x10 ^ 0xff));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Rsb::new(0);
    }
}

//! The full-predictor trait consumed by the trace simulator and the
//! pipeline model.

use crate::addr::EntityId;
use crate::branch::BranchRecord;
use crate::snap::{SnapError, StateReader, StateWriter};
use crate::stats::BpuStats;

/// Maximum number of SMT hardware threads a model must support.
pub const MAX_THREADS: usize = 2;

/// Outcome of processing one branch through a predictor model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchOutcome {
    /// Direction prediction result (`None` for unconditional branches).
    pub direction_correct: Option<bool>,
    /// Target prediction result (`None` when no target prediction was
    /// needed, i.e. a correctly-predicted not-taken branch).
    pub target_correct: Option<bool>,
    /// True when every necessary prediction was correct (the OAE criterion).
    pub effective_correct: bool,
    /// True when the front end would have been redirected (any
    /// misprediction).
    pub mispredicted: bool,
    /// True when the BTB lookup missed for a taken branch (front-end bubble
    /// even when the ultimate prediction was counted correct).
    pub btb_miss: bool,
}

impl BranchOutcome {
    /// A fully-correct outcome for an unconditional branch.
    pub fn correct_unconditional() -> Self {
        BranchOutcome {
            direction_correct: None,
            target_correct: Some(true),
            effective_correct: true,
            mispredicted: false,
            btb_miss: false,
        }
    }
}

/// A complete branch prediction unit: direction + target prediction with
/// SMT awareness and the control hooks protection policies need.
///
/// Implementations live in `stbpu-predictors` (baseline models) and are
/// re-keyed via the [`crate::Mapper`] they are constructed with
/// (`stbpu-core` provides the secret-token mapper).
pub trait Bpu {
    /// Human-readable model name (used in reports and figures). Borrowed
    /// from the model so the hot simulation/report plumbing never
    /// allocates a `String` per call.
    fn name(&self) -> &str;

    /// Processes one retired branch on hardware thread `tid`: predicts,
    /// compares with the architected outcome, updates all structures and
    /// statistics, and reports monitoring events to the mapper.
    fn process(&mut self, tid: usize, rec: &BranchRecord) -> BranchOutcome;

    /// Informs the model that `entity` is now running on `tid` (context or
    /// mode switch). STBPU-mapped models switch secret tokens; baseline
    /// models ignore it.
    fn context_switch(&mut self, tid: usize, entity: EntityId);

    /// Invalidates all prediction state (IBPB-style flush).
    fn flush(&mut self);

    /// Invalidates target-prediction state only — BTB and RSB — while
    /// conditional-direction history survives. Models IBRS, which
    /// restricts *indirect branch* speculation on privilege transitions.
    /// Defaults to a full flush for models without that granularity.
    fn flush_targets(&mut self) {
        self.flush();
    }

    /// Enables or disables STIBP-style static partitioning of shared
    /// structures between hardware threads.
    fn set_partitioned(&mut self, on: bool);

    /// Accumulated statistics.
    fn stats(&self) -> &BpuStats;

    /// Resets statistics (e.g. after warm-up) without touching predictor
    /// state.
    fn reset_stats(&mut self);

    /// Number of secret-token re-randomizations (0 for unprotected models).
    fn rerandomizations(&self) -> u64;

    /// Serializes the model's complete microarchitectural state (predictor
    /// tables, mapper tokens, per-thread history, BTB, statistics) into
    /// `w`. Together with [`Bpu::load_state`] this is the contract behind
    /// `.stck` checkpoints: `save_state` on one model followed by
    /// `load_state` on a freshly-constructed model of the *same spec and
    /// seed* must yield bit-identical future behaviour. Models that cannot
    /// snapshot themselves (e.g. externally-injected custom models) keep
    /// the default, which fails with [`SnapError::unsupported`].
    fn save_state(&self, _w: &mut StateWriter) -> Result<(), SnapError> {
        Err(SnapError::unsupported(self.name()))
    }

    /// Restores state previously written by [`Bpu::save_state`] on a model
    /// with identical construction parameters. Geometry mismatches and
    /// truncated/corrupt blobs return positioned errors; implementations
    /// must never panic on arbitrary input bytes.
    fn load_state(&mut self, _r: &mut StateReader<'_>) -> Result<(), SnapError> {
        Err(SnapError::unsupported(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_unconditional_shape() {
        let o = BranchOutcome::correct_unconditional();
        assert!(o.effective_correct);
        assert!(!o.mispredicted);
        assert_eq!(o.direction_correct, None);
        assert_eq!(o.target_correct, Some(true));
    }
}

//! Pattern history table (PHT).
//!
//! A large direct-mapped table of two-bit saturating counters used as the
//! base predictor for conditional branch directions (Section II-A). PHT
//! entries carry no tags, so entries are never *evicted* — different
//! branches mapping to the same index simply share (and fight over) one
//! counter. That tag-less sharing is exactly what reuse-based PHT attacks
//! such as BranchScope exploit.

use crate::counter::SaturatingCounter;
use crate::snap::{check_len, SnapError, StateReader, StateWriter};

/// A direct-mapped table of two-bit saturating counters.
///
/// ```
/// use stbpu_bpu::Pht;
/// let mut p = Pht::new(1 << 14);
/// let idx = 42;
/// p.train(idx, true);
/// p.train(idx, true);
/// assert!(p.predict(idx));
/// ```
#[derive(Clone, Debug)]
pub struct Pht {
    table: Vec<SaturatingCounter>,
}

impl Pht {
    /// Creates a PHT with `entries` counters, all weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two (hardware tables
    /// are indexed by bit slices).
    pub fn new(entries: usize) -> Self {
        assert!(
            entries > 0 && entries.is_power_of_two(),
            "PHT size must be a power of two"
        );
        Pht {
            table: vec![SaturatingCounter::weakly_not_taken(); entries],
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Always false — the table has fixed nonzero size.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Predicted direction for the counter at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds; mapping functions guarantee
    /// in-range indexes.
    pub fn predict(&self, index: usize) -> bool {
        self.table[index].is_set()
    }

    /// True when the counter at `index` is in a strong (saturated) state.
    pub fn is_strong(&self, index: usize) -> bool {
        self.table[index].is_strong()
    }

    /// Raw counter value (0..=3) — exposed for attack observability studies.
    pub fn counter(&self, index: usize) -> u8 {
        self.table[index].value()
    }

    /// Trains the counter at `index` toward the resolved direction.
    pub fn train(&mut self, index: usize, taken: bool) {
        self.table[index].train(taken);
    }

    /// Resets every counter to weakly not-taken (flush-based protections).
    pub fn flush(&mut self) {
        for c in &mut self.table {
            *c = SaturatingCounter::weakly_not_taken();
        }
    }

    /// Serializes every counter value for checkpointing (width is fixed at
    /// construction and therefore not stored).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.table.len());
        for c in &self.table {
            w.u8(c.value());
        }
    }

    /// Restores counters saved by [`Pht::save_state`] into a table of the
    /// same size.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        check_len(r, "PHT", n, self.table.len())?;
        for c in &mut self.table {
            let v = r.u8()?;
            if v > c.max() {
                return Err(r.err(format!("PHT counter value {v} exceeds width")));
            }
            c.set(v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_table_predicts_not_taken() {
        let p = Pht::new(16);
        for i in 0..16 {
            assert!(!p.predict(i));
        }
    }

    #[test]
    fn training_flips_prediction_with_hysteresis() {
        let mut p = Pht::new(16);
        p.train(3, true);
        assert!(p.predict(3), "weak -> taken after one taken");
        p.train(3, true);
        assert!(p.is_strong(3));
        p.train(3, false);
        assert!(p.predict(3), "strong taken survives one not-taken");
        p.train(3, false);
        assert!(!p.predict(3));
    }

    #[test]
    fn aliased_branches_share_a_counter() {
        // Two "branches" mapping to the same index interfere — the
        // collision channel of reuse-based PHT attacks.
        let mut p = Pht::new(8);
        p.train(5, true);
        p.train(5, true);
        // The attacker probing index 5 sees the victim's training.
        assert!(p.predict(5));
    }

    #[test]
    fn flush_resets() {
        let mut p = Pht::new(8);
        for i in 0..8 {
            p.train(i, true);
            p.train(i, true);
        }
        p.flush();
        for i in 0..8 {
            assert!(!p.predict(i));
            assert!(!p.is_strong(i));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Pht::new(12);
    }
}

//! Mapping functions: how branch addresses and history reach BPU indexes.
//!
//! The baseline functions ①–④ of Figure 1 compress *truncated* virtual
//! addresses (only ~30 of 48 bits are consumed) into indexes/tags/offsets
//! with simple XOR folds; function ⑤ re-extends stored 32-bit targets. The
//! determinism and truncation of these functions is precisely what enables
//! controlled branch collisions (Section II-B).
//!
//! [`Mapper`] abstracts the whole family so predictor models can be
//! instantiated with either the [`BaselineMapper`], the "conservative"
//! full-tag mapper, or the secret-token mapper from `stbpu-core` (keyed
//! remappings R1..4,t,p of Table II plus φ target encryption).

use crate::addr::EntityId;
use crate::snap::{SnapError, StateReader, StateWriter};

/// XOR-folds `value` down to `bits` bits.
///
/// The canonical compression primitive of the baseline BPU: repeatedly XORs
/// `bits`-wide chunks of the input together.
///
/// ```
/// use stbpu_bpu::fold_u64;
/// assert_eq!(fold_u64(0xff00_00ff, 8), 0x00);
/// assert!(fold_u64(u64::MAX, 14) < (1 << 14));
/// ```
pub fn fold_u64(mut value: u64, bits: u32) -> u64 {
    assert!((1..=63).contains(&bits), "fold width out of range");
    let mask = (1u64 << bits) - 1;
    let mut out = 0u64;
    while value != 0 {
        out ^= value & mask;
        value >>= bits;
    }
    out
}

/// Coordinates of a BTB entry produced by mapping function ①/R1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BtbCoord {
    /// Set index.
    pub index: usize,
    /// Entry tag (8 compressed bits in the baseline, up to 48 in the
    /// conservative model).
    pub tag: u64,
    /// Entry offset bits (5 in the baseline).
    pub offset: u8,
}

/// Address-to-structure mapping policy plus STBPU control-plane hooks.
///
/// Pure mapping methods take the hardware-thread id because STBPU keys every
/// mapping with the secret token of the entity *currently running on that
/// thread*; the baseline ignores it.
///
/// Control-plane hooks have no-op defaults so the baseline mapper stays
/// trivial; the STBPU mapper uses them to maintain per-entity tokens and the
/// misprediction/eviction monitoring MSRs of Section IV-B.
pub trait Mapper {
    /// Function ①/R1: BTB mode-one coordinates from a branch address.
    fn btb1(&self, tid: usize, pc: u64) -> BtbCoord;

    /// Function ②/R2: BTB mode-two tag from the BHB (indirect branches).
    fn btb2_tag(&self, tid: usize, bhb: u64) -> u64;

    /// Function ③/R3: PHT one-level index from a branch address.
    fn pht1(&self, tid: usize, pc: u64) -> usize;

    /// Function ④/R4: PHT two-level index from address and GHR.
    fn pht2(&self, tid: usize, pc: u64, ghr: u64) -> usize;

    /// Function t/Rt: TAGE tagged-table (index, tag) from address and the
    /// folded global history of that table.
    #[allow(clippy::too_many_arguments)]
    fn tage(
        &self,
        tid: usize,
        pc: u64,
        folded_idx: u64,
        folded_tag: u64,
        table: usize,
        idx_bits: u32,
        tag_bits: u32,
    ) -> (usize, u64);

    /// Function p/Rp: perceptron table index from a branch address.
    fn perceptron(&self, tid: usize, pc: u64, idx_bits: u32) -> usize;

    /// Encrypts a 32-bit target before it is stored (identity in the
    /// baseline; XOR with φ under STBPU — function ⑤ is modified to
    /// decrypt on the way out).
    fn encrypt_target(&self, _tid: usize, stored: u32) -> u32 {
        stored
    }

    /// Decrypts a stored 32-bit target during prediction.
    fn decrypt_target(&self, _tid: usize, stored: u32) -> u32 {
        stored
    }

    /// Informs the mapper that `entity` is now running on thread `tid`
    /// (context or mode switch). STBPU loads that entity's secret token.
    fn set_entity(&mut self, _tid: usize, _entity: EntityId) {}

    /// Reports a branch misprediction (wrong direction of a conditional or
    /// wrong target of any branch) — decrements the MISP monitoring MSR.
    fn note_misprediction(&mut self, _tid: usize) {}

    /// Reports a misprediction whose provider was a TAGE tagged table.
    /// TAGE-based STBPU models maintain a *separate* threshold register for
    /// these (Section VII-B2); the default forwards to
    /// [`Mapper::note_misprediction`].
    fn note_tage_misprediction(&mut self, tid: usize) {
        self.note_misprediction(tid);
    }

    /// Reports a BTB eviction — decrements the eviction monitoring MSR.
    fn note_eviction(&mut self, _tid: usize) {}

    /// Number of secret-token re-randomizations performed so far (0 for
    /// mappers without tokens).
    fn rerandomizations(&self) -> u64 {
        0
    }

    /// A generation stamp for the mapping of thread `tid`; changes whenever
    /// the effective mapping changes (token switch or re-randomization).
    /// Models may use it to cheaply detect stale metadata.
    fn generation(&self, _tid: usize) -> u64 {
        0
    }

    /// Serializes the mapper's mutable state (secret tokens, RNG state,
    /// monitoring counters) for `.stck` checkpoints. Stateless mappers —
    /// the baseline and conservative functions are pure — keep the default
    /// no-op, which writes nothing.
    fn save_state(&self, _w: &mut StateWriter) -> Result<(), SnapError> {
        Ok(())
    }

    /// Restores mapper state written by [`Mapper::save_state`] on a mapper
    /// constructed with the same configuration and seed.
    fn load_state(&mut self, _r: &mut StateReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// The reverse-engineered Skylake-style baseline mapping functions.
///
/// Only the low 30 bits of the 48-bit virtual address influence any mapping
/// — the truncation that enables same-address-space collisions \[78\] — and
/// all functions are deterministic and key-less.
#[derive(Clone, Copy, Debug, Default)]
pub struct BaselineMapper;

impl BaselineMapper {
    /// Creates the baseline mapper.
    pub fn new() -> Self {
        BaselineMapper
    }
}

/// Bits of the virtual address consumed by the baseline functions.
pub(crate) const BASELINE_ADDR_BITS: u32 = 30;

impl Mapper for BaselineMapper {
    fn btb1(&self, _tid: usize, pc: u64) -> BtbCoord {
        let a = pc & ((1 << BASELINE_ADDR_BITS) - 1);
        BtbCoord {
            // offset: bits 0..5, index: bits 5..14, tag: fold of bits 14..30.
            index: ((a >> 5) & 0x1ff) as usize,
            tag: fold_u64(a >> 14, 8),
            offset: (a & 0x1f) as u8,
        }
    }

    fn btb2_tag(&self, _tid: usize, bhb: u64) -> u64 {
        fold_u64(bhb, 8)
    }

    fn pht1(&self, _tid: usize, pc: u64) -> usize {
        let a = pc & ((1 << BASELINE_ADDR_BITS) - 1);
        // Shifted-copy XOR compression (single-cycle, like the real index
        // hash): plain block folds alias structured code layouts badly.
        (((a >> 2) ^ (a >> 9) ^ (a >> 17) ^ (a >> 25)) & 0x3fff) as usize
    }

    fn pht2(&self, _tid: usize, pc: u64, ghr: u64) -> usize {
        let a = pc & ((1 << BASELINE_ADDR_BITS) - 1);
        let g = ghr & 0x3ffff; // 18 GHR bits (Table II)
        let addr = (a >> 2) ^ (a >> 9) ^ (a >> 17) ^ (a >> 25);
        ((addr ^ g ^ (g << 3)) & 0x3fff) as usize
    }

    fn tage(
        &self,
        _tid: usize,
        pc: u64,
        folded_idx: u64,
        folded_tag: u64,
        table: usize,
        idx_bits: u32,
        tag_bits: u32,
    ) -> (usize, u64) {
        // Standard TAGE hash (Seznec): pc ^ (pc >> shift) ^ folded history.
        let shift = (idx_bits - ((table as u32) % idx_bits)).max(1);
        let idx = fold_u64(
            (pc >> 2) ^ (pc >> (2 + shift as u64 as u32)) ^ folded_idx,
            idx_bits,
        );
        let tag = fold_u64((pc >> 2) ^ folded_tag ^ (folded_tag << 1), tag_bits);
        (idx as usize, tag)
    }

    fn perceptron(&self, _tid: usize, pc: u64, idx_bits: u32) -> usize {
        fold_u64(pc >> 2, idx_bits) as usize
    }
}

/// The "conservative" mapper of Section VII-B1: full 48-bit addresses as
/// tags (no truncation, no compression), eliminating all address aliasing
/// at the cost of much larger entries — which halves BTB capacity.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConservativeMapper;

impl ConservativeMapper {
    /// Creates the conservative mapper.
    pub fn new() -> Self {
        ConservativeMapper
    }
}

impl Mapper for ConservativeMapper {
    fn btb1(&self, _tid: usize, pc: u64) -> BtbCoord {
        BtbCoord {
            // 256 sets (halved capacity), full-address tag, no offset field.
            index: ((pc >> 5) & 0xff) as usize,
            tag: pc,
            offset: 0,
        }
    }

    fn btb2_tag(&self, _tid: usize, bhb: u64) -> u64 {
        // Full-width BHB tag: no aliasing between contexts.
        bhb
    }

    fn pht1(&self, _tid: usize, pc: u64) -> usize {
        fold_u64(pc >> 2, 14) as usize
    }

    fn pht2(&self, _tid: usize, pc: u64, ghr: u64) -> usize {
        let g = ghr & 0x3ffff;
        (fold_u64(pc >> 2, 14) ^ fold_u64(g ^ (g << 7), 14)) as usize
    }

    fn tage(
        &self,
        tid: usize,
        pc: u64,
        folded_idx: u64,
        folded_tag: u64,
        table: usize,
        idx_bits: u32,
        tag_bits: u32,
    ) -> (usize, u64) {
        BaselineMapper.tage(tid, pc, folded_idx, folded_tag, table, idx_bits, tag_bits)
    }

    fn perceptron(&self, _tid: usize, pc: u64, idx_bits: u32) -> usize {
        fold_u64(pc >> 2, idx_bits) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_is_in_range_and_nontrivial() {
        for bits in [5u32, 8, 9, 14] {
            for v in [0u64, 1, 0xdead_beef, u64::MAX, 0x1234_5678_9abc] {
                assert!(fold_u64(v, bits) < (1 << bits));
            }
        }
        assert_ne!(fold_u64(0xabcd, 8), fold_u64(0xabce, 8));
    }

    #[test]
    fn baseline_btb_fields_within_geometry() {
        let m = BaselineMapper::new();
        for pc in (0..10_000u64).map(|i| i * 97 + 0x40_0000) {
            let c = m.btb1(0, pc);
            assert!(c.index < 512);
            assert!(c.tag < 256);
            assert!(c.offset < 32);
        }
    }

    #[test]
    fn baseline_truncation_aliases_high_bits() {
        // Bits ≥ 30 are ignored: two branches in different "segments" of the
        // same address space collide fully — the ASPLOS'20 transient-trojan
        // primitive the paper cites.
        let m = BaselineMapper::new();
        let pc = 0x1234_5678u64;
        let aliased = pc | (0xabc << 30);
        assert_eq!(m.btb1(0, pc), m.btb1(0, aliased));
        assert_eq!(m.pht1(0, pc), m.pht1(0, aliased));
        assert_eq!(m.pht2(0, pc, 0x5a5a), m.pht2(0, aliased, 0x5a5a));
    }

    #[test]
    fn conservative_does_not_alias_high_bits() {
        let m = ConservativeMapper::new();
        let pc = 0x1234_5678u64;
        let aliased = pc | (0xabc << 30);
        assert_ne!(m.btb1(0, pc).tag, m.btb1(0, aliased).tag);
    }

    #[test]
    fn pht2_depends_on_history() {
        let m = BaselineMapper::new();
        let pc = 0x77_7777u64;
        let a = m.pht2(0, pc, 0b1010);
        let b = m.pht2(0, pc, 0b1011);
        assert_ne!(a, b);
        assert!(a < 1 << 14 && b < 1 << 14);
    }

    #[test]
    fn tage_mapping_in_range_and_table_dependent() {
        let m = BaselineMapper::new();
        let (i1, t1) = m.tage(0, 0xabcd_1234, 0x5a, 0xc3, 1, 10, 8);
        let (i2, _t2) = m.tage(0, 0xabcd_1234, 0x5a, 0xc3, 2, 10, 8);
        assert!(i1 < 1024 && t1 < 256);
        // Different tables hash differently (not guaranteed distinct for all
        // inputs, but must differ somewhere).
        let differs = (0..64u64).any(|k| {
            let a = m.tage(0, 0x1000 + k * 4, 0x5a, 0xc3, 1, 10, 8);
            let b = m.tage(0, 0x1000 + k * 4, 0x5a, 0xc3, 2, 10, 8);
            a != b
        });
        assert!(differs || i1 != i2);
    }

    #[test]
    fn default_hooks_are_noops() {
        let mut m = BaselineMapper::new();
        m.set_entity(0, EntityId::user(1));
        m.note_misprediction(0);
        m.note_tage_misprediction(0);
        m.note_eviction(0);
        assert_eq!(m.rerandomizations(), 0);
        assert_eq!(m.generation(0), 0);
        assert_eq!(m.encrypt_target(0, 0x1234), 0x1234);
        assert_eq!(m.decrypt_target(0, 0x1234), 0x1234);
    }

    #[test]
    #[should_panic(expected = "fold width")]
    fn fold_rejects_zero_width() {
        let _ = fold_u64(1, 0);
    }
}

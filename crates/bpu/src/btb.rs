//! Branch target buffer (BTB).
//!
//! An 8-way, 4096-entry set-associative cache of branch targets in the
//! Skylake baseline. Each entry stores a compressed tag, an offset
//! disambiguator and an opaque target payload (the truncated 32-bit target
//! in the baseline; a φ-encrypted value under STBPU; the full 48-bit target
//! in the "conservative" model). Replacement is true-LRU within a set.
//!
//! Evictions are reported to the caller because STBPU's monitoring MSRs
//! count them (Section IV-B) and eviction-based attacks are measured by
//! them (Table I, Section VI).

use crate::snap::{check_len, SnapError, StateReader, StateWriter};

/// Geometry of a [`Btb`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BtbConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl BtbConfig {
    /// The Skylake-like baseline geometry: 512 sets × 8 ways = 4096 entries.
    pub fn skylake() -> Self {
        BtbConfig { sets: 512, ways: 8 }
    }

    /// The "conservative" model of Section VII-B1: storing full 48-bit tags
    /// and targets roughly doubles the entry size, halving capacity under an
    /// unchanged hardware budget — 256 sets × 8 ways.
    pub fn conservative() -> Self {
        BtbConfig { sets: 256, ways: 8 }
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }
}

/// Information about an entry displaced by an insertion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eviction {
    /// Set index the eviction happened in.
    pub set: usize,
    /// Tag of the displaced entry.
    pub tag: u64,
    /// Payload of the displaced entry.
    pub payload: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    valid: bool,
    tag: u64,
    offset: u8,
    payload: u64,
    lru: u64,
}

/// A set-associative branch target buffer with true-LRU replacement.
///
/// ```
/// use stbpu_bpu::{Btb, BtbConfig};
/// let mut b = Btb::new(BtbConfig { sets: 4, ways: 2 });
/// assert!(b.insert(1, 0xaa, 3, 0x1234).is_none());
/// assert_eq!(b.lookup(1, 0xaa, 3), Some(0x1234));
/// assert_eq!(b.lookup(1, 0xab, 3), None);
/// ```
#[derive(Clone, Debug)]
pub struct Btb {
    cfg: BtbConfig,
    entries: Vec<Entry>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Btb {
    /// Creates an empty BTB with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(cfg: BtbConfig) -> Self {
        assert!(
            cfg.sets.is_power_of_two(),
            "BTB sets must be a power of two"
        );
        assert!(cfg.ways > 0, "BTB must have at least one way");
        Btb {
            cfg,
            entries: vec![Entry::default(); cfg.entries()],
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Geometry.
    pub fn config(&self) -> BtbConfig {
        self.cfg
    }

    fn set_slice(&mut self, set: usize) -> &mut [Entry] {
        let w = self.cfg.ways;
        &mut self.entries[set * w..(set + 1) * w]
    }

    /// Looks up `(set, tag, offset)`; returns the stored payload on a hit
    /// and refreshes LRU state.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn lookup(&mut self, set: usize, tag: u64, offset: u8) -> Option<u64> {
        assert!(set < self.cfg.sets, "BTB set index out of range");
        self.clock += 1;
        let clock = self.clock;
        for e in self.set_slice(set) {
            if e.valid && e.tag == tag && e.offset == offset {
                e.lru = clock;
                let p = e.payload;
                self.hits += 1;
                return Some(p);
            }
        }
        self.misses += 1;
        None
    }

    /// Checks for presence without perturbing LRU or hit/miss statistics —
    /// used by attack harnesses that model an attacker timing a *separate*
    /// probe branch.
    pub fn probe(&self, set: usize, tag: u64, offset: u8) -> Option<u64> {
        let w = self.cfg.ways;
        self.entries[set * w..(set + 1) * w]
            .iter()
            .find(|e| e.valid && e.tag == tag && e.offset == offset)
            .map(|e| e.payload)
    }

    /// Inserts or updates `(set, tag, offset) -> payload`.
    ///
    /// Returns the eviction displaced by the insertion, if any. Updating an
    /// existing entry or filling an invalid way reports no eviction.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn insert(&mut self, set: usize, tag: u64, offset: u8, payload: u64) -> Option<Eviction> {
        assert!(set < self.cfg.sets, "BTB set index out of range");
        self.clock += 1;
        let clock = self.clock;
        // Update in place on tag+offset match.
        for e in self.set_slice(set) {
            if e.valid && e.tag == tag && e.offset == offset {
                e.payload = payload;
                e.lru = clock;
                return None;
            }
        }
        // Fill an invalid way if one exists.
        for e in self.set_slice(set) {
            if !e.valid {
                *e = Entry {
                    valid: true,
                    tag,
                    offset,
                    payload,
                    lru: clock,
                };
                return None;
            }
        }
        // Evict the LRU way.
        let victim = self
            .set_slice(set)
            .iter_mut()
            .min_by_key(|e| e.lru)
            .expect("ways > 0");
        let ev = Eviction {
            set,
            tag: victim.tag,
            payload: victim.payload,
        };
        *victim = Entry {
            valid: true,
            tag,
            offset,
            payload,
            lru: clock,
        };
        self.evictions += 1;
        Some(ev)
    }

    /// Invalidates every entry (IBPB-style flush).
    pub fn flush(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
    }

    /// Invalidates the half of the index space *not* owned by `tid` — the
    /// STIBP partitioning model restricts each logical thread to half of the
    /// sets; flipping the partition on a thread switch is modelled by the
    /// caller remapping set indexes (see `partition_set`).
    pub fn flush_partition(&mut self, sets: std::ops::Range<usize>) {
        let w = self.cfg.ways;
        for set in sets {
            for e in &mut self.entries[set * w..(set + 1) * w] {
                e.valid = false;
            }
        }
    }

    /// Number of live entries (test/diagnostic helper).
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions of valid entries so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Serializes the complete BTB state (geometry guard, LRU clock,
    /// statistics and every entry) for checkpointing.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.cfg.sets);
        w.usize(self.cfg.ways);
        w.u64(self.clock);
        w.u64(self.hits);
        w.u64(self.misses);
        w.u64(self.evictions);
        for e in &self.entries {
            w.bool(e.valid);
            w.u64(e.tag);
            w.u8(e.offset);
            w.u64(e.payload);
            w.u64(e.lru);
        }
    }

    /// Restores state saved by [`Btb::save_state`] into a BTB of identical
    /// geometry.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let sets = r.usize()?;
        check_len(r, "BTB sets", sets, self.cfg.sets)?;
        let ways = r.usize()?;
        check_len(r, "BTB ways", ways, self.cfg.ways)?;
        self.clock = r.u64()?;
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        self.evictions = r.u64()?;
        for e in &mut self.entries {
            e.valid = r.bool()?;
            e.tag = r.u64()?;
            e.offset = r.u8()?;
            e.payload = r.u64()?;
            e.lru = r.u64()?;
        }
        Ok(())
    }
}

/// Restricts `set` to the partition owned by hardware thread `tid` when
/// STIBP-style partitioning is enabled: each of the two logical threads gets
/// half of the index space.
pub fn partition_set(set: usize, sets: usize, tid: usize, partitioned: bool) -> usize {
    if !partitioned {
        return set;
    }
    let half = sets / 2;
    (set % half) + tid * half
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Btb {
        Btb::new(BtbConfig { sets: 4, ways: 2 })
    }

    #[test]
    fn miss_then_hit() {
        let mut b = small();
        assert_eq!(b.lookup(0, 1, 0), None);
        b.insert(0, 1, 0, 99);
        assert_eq!(b.lookup(0, 1, 0), Some(99));
        assert_eq!(b.hits(), 1);
        assert_eq!(b.misses(), 1);
    }

    #[test]
    fn offset_disambiguates() {
        let mut b = small();
        b.insert(0, 1, 0, 10);
        b.insert(0, 1, 1, 20);
        assert_eq!(b.lookup(0, 1, 0), Some(10));
        assert_eq!(b.lookup(0, 1, 1), Some(20));
    }

    #[test]
    fn update_in_place_no_eviction() {
        let mut b = small();
        assert!(b.insert(2, 5, 0, 1).is_none());
        assert!(b.insert(2, 5, 0, 2).is_none());
        assert_eq!(b.lookup(2, 5, 0), Some(2));
        assert_eq!(b.evictions(), 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut b = small();
        b.insert(1, 10, 0, 100);
        b.insert(1, 11, 0, 110);
        // Touch tag 10 so tag 11 becomes LRU.
        assert!(b.lookup(1, 10, 0).is_some());
        let ev = b.insert(1, 12, 0, 120).expect("full set must evict");
        assert_eq!(ev.tag, 11);
        assert_eq!(b.lookup(1, 10, 0), Some(100));
        assert_eq!(b.lookup(1, 11, 0), None);
        assert_eq!(b.lookup(1, 12, 0), Some(120));
        assert_eq!(b.evictions(), 1);
    }

    #[test]
    fn ways_plus_one_conflicting_branches_guarantee_eviction() {
        // The eviction-set primitive: W+1 same-index inserts must displace
        // something (Section VI-A4).
        let mut b = Btb::new(BtbConfig { sets: 8, ways: 4 });
        let mut evicted = false;
        for t in 0..5 {
            evicted |= b.insert(3, t, 0, t).is_some();
        }
        assert!(evicted);
    }

    #[test]
    fn flush_invalidates_all() {
        let mut b = small();
        b.insert(0, 1, 0, 1);
        b.insert(3, 2, 0, 2);
        assert_eq!(b.occupancy(), 2);
        b.flush();
        assert_eq!(b.occupancy(), 0);
        assert_eq!(b.lookup(0, 1, 0), None);
    }

    #[test]
    fn probe_does_not_change_stats() {
        let mut b = small();
        b.insert(0, 1, 0, 7);
        let (h, m) = (b.hits(), b.misses());
        assert_eq!(b.probe(0, 1, 0), Some(7));
        assert_eq!(b.probe(0, 9, 0), None);
        assert_eq!((b.hits(), b.misses()), (h, m));
    }

    #[test]
    fn partitioning_maps_to_disjoint_halves() {
        for s in 0..512 {
            let a = partition_set(s, 512, 0, true);
            let b = partition_set(s, 512, 1, true);
            assert!(a < 256);
            assert!((256..512).contains(&b));
            assert_eq!(partition_set(s, 512, 1, false), s);
        }
    }

    #[test]
    fn flush_partition_only_clears_range() {
        let mut b = Btb::new(BtbConfig { sets: 4, ways: 1 });
        for s in 0..4 {
            b.insert(s, 1, 0, s as u64);
        }
        b.flush_partition(0..2);
        assert_eq!(b.lookup(0, 1, 0), None);
        assert_eq!(b.lookup(1, 1, 0), None);
        assert_eq!(b.lookup(2, 1, 0), Some(2));
        assert_eq!(b.lookup(3, 1, 0), Some(3));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = Btb::new(BtbConfig { sets: 3, ways: 2 });
    }
}

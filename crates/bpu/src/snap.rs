//! Binary state-snapshot primitives for checkpointable BPU state.
//!
//! Every stateful microarchitectural component (PHT, BTB, RSB, history
//! contexts, predictor tables, token managers) serializes itself through
//! [`StateWriter`] and restores through [`StateReader`]. The encoding is
//! deliberately tiny and self-contained: LEB128 varints for unsigned
//! integers, zigzag varints for signed ones, fixed 8-byte little-endian
//! for `f64` bit patterns, and length-prefixed byte strings. The `.stck`
//! checkpoint container in `stbpu-sim` wraps these component blobs in a
//! versioned envelope; this module is only the per-component payload
//! encoding.
//!
//! Two invariants matter for checkpoint correctness:
//!
//! 1. **Determinism** — the same logical state always serializes to the
//!    same bytes (all collections are ordered; no addresses, no clocks),
//!    so shard-handoff verification can compare snapshots with `==`.
//! 2. **No panics** — [`StateReader`] is bounds-checked everywhere and
//!    reports failures as positioned [`SnapError`]s, because checkpoint
//!    bytes come from disk and may be truncated or corrupt.

use std::fmt;

/// A positioned snapshot encode/decode failure.
///
/// `offset` is the byte position in the component blob where decoding
/// stopped making sense — sufficient to pinpoint truncation or
/// corruption when combined with the envelope's own offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError {
    /// Byte offset within the state blob at which the error was detected.
    pub offset: usize,
    /// Human-readable description of what went wrong.
    pub msg: String,
}

impl SnapError {
    /// A new positioned error.
    pub fn new(offset: usize, msg: impl Into<String>) -> Self {
        SnapError {
            offset,
            msg: msg.into(),
        }
    }

    /// The error a model that cannot snapshot itself returns from the
    /// default `save_state`/`load_state` implementations.
    pub fn unsupported(what: &str) -> Self {
        SnapError::new(0, format!("'{what}' does not support state snapshots"))
    }
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for SnapError {}

/// Append-only encoder for component state blobs.
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// An empty writer.
    pub fn new() -> Self {
        StateWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the encoded blob.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes an unsigned integer as a LEB128 varint.
    pub fn u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a signed integer as a zigzag LEB128 varint.
    pub fn i64(&mut self, v: i64) {
        self.u64(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Writes a `u32` (as a varint).
    pub fn u32(&mut self, v: u32) {
        self.u64(u64::from(v));
    }

    /// Writes a `usize` (as a varint).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes an `f64` as its 8-byte little-endian bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Bounds-checked decoder over a component state blob.
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        StateReader { buf, pos: 0 }
    }

    /// Current byte offset into the blob.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// A positioned error at the current offset.
    pub fn err(&self, msg: impl Into<String>) -> SnapError {
        SnapError::new(self.pos, msg)
    }

    /// Fails unless every byte of the blob has been consumed — catches
    /// blobs from a component with different geometry than the decoder.
    pub fn expect_end(&self) -> Result<(), SnapError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(self.err(format!(
                "{} trailing bytes after component state",
                self.buf.len() - self.pos
            )))
        }
    }

    /// Reads one raw byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        match self.buf.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => Err(self.err("unexpected end of state blob")),
        }
    }

    /// Reads a LEB128 varint into a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let start = self.pos;
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = match self.buf.get(self.pos) {
                Some(&b) => b,
                None => {
                    return Err(SnapError::new(start, "truncated varint in state blob"));
                }
            };
            self.pos += 1;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(SnapError::new(start, "varint overflows u64 in state blob"));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Reads a zigzag varint into an `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        let z = self.u64()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Reads a varint expected to fit a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let start = self.pos;
        let v = self.u64()?;
        u32::try_from(v).map_err(|_| SnapError::new(start, "varint overflows u32 in state blob"))
    }

    /// Reads a varint expected to fit a `usize`.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let start = self.pos;
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::new(start, "varint overflows usize"))
    }

    /// Reads a one-byte bool, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        let start = self.pos;
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapError::new(
                start,
                format!("invalid bool byte 0x{other:02x} in state blob"),
            )),
        }
    }

    /// Reads an 8-byte little-endian `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        let raw = self.take(8)?;
        let mut bits = [0u8; 8];
        bits.copy_from_slice(raw);
        Ok(f64::from_bits(u64::from_le_bytes(bits)))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.usize()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let start = self.pos;
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| SnapError::new(start, "invalid UTF-8 string in state blob"))
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(self.err(format!(
                "state blob truncated: need {len} bytes, have {}",
                self.remaining()
            ))),
        }
    }
}

/// Checks that a restored collection length matches the construction-time
/// geometry of the receiving component.
pub fn check_len(
    r: &StateReader<'_>,
    what: &str,
    got: usize,
    expected: usize,
) -> Result<(), SnapError> {
    if got == expected {
        Ok(())
    } else {
        Err(SnapError::new(
            r.offset(),
            format!("{what} length mismatch: snapshot has {got}, component expects {expected}"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = StateWriter::new();
        w.u64(0);
        w.u64(127);
        w.u64(128);
        w.u64(u64::MAX);
        w.i64(-1);
        w.i64(i64::MIN);
        w.i64(i64::MAX);
        w.u32(u32::MAX);
        w.u8(0xab);
        w.bool(true);
        w.bool(false);
        w.f64(-0.0);
        w.f64(f64::from_bits(0x7ff8_0000_0000_0001));
        w.str("stbpu");
        w.bytes(&[1, 2, 3]);
        let blob = w.into_bytes();
        let mut r = StateReader::new(&blob);
        assert_eq!(r.u64().unwrap(), 0);
        assert_eq!(r.u64().unwrap(), 127);
        assert_eq!(r.u64().unwrap(), 128);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -1);
        assert_eq!(r.i64().unwrap(), i64::MIN);
        assert_eq!(r.i64().unwrap(), i64::MAX);
        assert_eq!(r.u32().unwrap(), u32::MAX);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), 0x7ff8_0000_0000_0001);
        assert_eq!(r.str().unwrap(), "stbpu");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn truncated_reads_are_positioned_errors() {
        let mut w = StateWriter::new();
        w.u64(300);
        let mut blob = w.into_bytes();
        blob.truncate(1);
        let mut r = StateReader::new(&blob);
        let e = r.u64().unwrap_err();
        assert_eq!(e.offset, 0);
        assert!(e.msg.contains("truncated"));

        let mut r = StateReader::new(&[0x05, b'a']);
        let e = r.bytes().unwrap_err();
        assert_eq!(e.offset, 1);

        let mut r = StateReader::new(&[2]);
        let e = r.bool().unwrap_err();
        assert!(e.msg.contains("invalid bool"));

        let mut r = StateReader::new(&[0xff; 11]);
        assert!(r.u64().unwrap_err().msg.contains("overflows"));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut r = StateReader::new(&[1, 2]);
        assert_eq!(r.u8().unwrap(), 1);
        let e = r.expect_end().unwrap_err();
        assert_eq!(e.offset, 1);
        assert!(e.msg.contains("trailing"));
    }
}

//! Virtual addresses and software-entity identities.

use std::fmt;

/// Number of implemented virtual-address bits (x86-64 canonical form).
pub const VA_BITS: u32 = 48;
/// Mask selecting the implemented virtual-address bits.
pub const VA_MASK: u64 = (1u64 << VA_BITS) - 1;

/// A 48-bit virtual address.
///
/// The newtype guarantees the value is already truncated to [`VA_BITS`], so
/// mapping functions can consume the raw `u64` without re-masking.
///
/// ```
/// use stbpu_bpu::VirtAddr;
/// let a = VirtAddr::new(0xffff_dead_beef_f00d);
/// assert_eq!(a.raw(), 0xdead_beef_f00d & ((1 << 48) - 1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address, truncating to the implemented 48 bits.
    pub fn new(raw: u64) -> Self {
        VirtAddr(raw & VA_MASK)
    }

    /// Returns the raw 48-bit value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Returns the 32 least-significant bits — what the baseline BPU stores
    /// for branch targets (function ⑤ re-extends them on prediction).
    pub fn low32(self) -> u32 {
        self.0 as u32
    }

    /// Returns the 16 most-significant implemented bits (bits 32..48).
    pub fn high16(self) -> u16 {
        (self.0 >> 32) as u16
    }

    /// Reconstructs a 48-bit address from a stored 32-bit target and the
    /// high bits of a reference address (baseline function ⑤ of Figure 1).
    pub fn extend(reference: VirtAddr, low32: u32) -> VirtAddr {
        VirtAddr(((reference.high16() as u64) << 32) | low32 as u64)
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VirtAddr({:#014x})", self.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#014x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr::new(raw)
    }
}

impl From<VirtAddr> for u64 {
    fn from(a: VirtAddr) -> u64 {
        a.0
    }
}

/// Identifies a software entity requiring isolation (a process, the kernel,
/// a VMM, a sandbox, ...). STBPU assigns one secret token per entity.
///
/// ```
/// use stbpu_bpu::EntityId;
/// assert_ne!(EntityId::KERNEL, EntityId::user(1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct EntityId(pub u32);

impl EntityId {
    /// The kernel / supervisor entity. Mode switches into the kernel load
    /// the kernel's secret token under STBPU.
    pub const KERNEL: EntityId = EntityId(0);

    /// Creates a user entity id; `n` must be nonzero-based process number.
    pub fn user(n: u32) -> Self {
        EntityId(n + 1)
    }

    /// True if this is the kernel entity.
    pub fn is_kernel(self) -> bool {
        self == Self::KERNEL
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_kernel() {
            write!(f, "kernel")
        } else {
            write!(f, "entity#{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virt_addr_truncates_to_48_bits() {
        let a = VirtAddr::new(u64::MAX);
        assert_eq!(a.raw(), VA_MASK);
        assert_eq!(a.high16(), 0xffff);
        assert_eq!(a.low32(), 0xffff_ffff);
    }

    #[test]
    fn extend_rebuilds_target_within_same_4gib_window() {
        let branch = VirtAddr::new(0x1234_5678_9abc);
        let target = VirtAddr::new(0x1234_0000_1111);
        let rebuilt = VirtAddr::extend(branch, target.low32());
        assert_eq!(rebuilt, target);
    }

    #[test]
    fn extend_aliases_across_4gib_windows() {
        // The 32-bit truncation of stored targets means two targets that
        // agree in their low 32 bits are indistinguishable — the aliasing
        // the paper's conservative model removes by storing full addresses.
        let branch = VirtAddr::new(0x7777_0000_0000);
        let t1 = VirtAddr::new(0x1111_4444_4444);
        let rebuilt = VirtAddr::extend(branch, t1.low32());
        assert_ne!(rebuilt, t1);
        assert_eq!(rebuilt.low32(), t1.low32());
    }

    #[test]
    fn entity_ids() {
        assert!(EntityId::KERNEL.is_kernel());
        assert!(!EntityId::user(0).is_kernel());
        assert_eq!(EntityId::user(3), EntityId(4));
        assert_eq!(format!("{}", EntityId::KERNEL), "kernel");
        assert_eq!(format!("{}", EntityId::user(1)), "entity#2");
    }

    #[test]
    fn display_and_hex() {
        let a = VirtAddr::new(0xabc);
        assert_eq!(format!("{a}"), "0x000000000abc");
        assert_eq!(format!("{a:x}"), "abc");
        assert!(!format!("{a:?}").is_empty());
    }
}

//! Branch instruction records — the unit of work for every predictor model.

use crate::addr::VirtAddr;
use std::fmt;

/// The branch instruction types permitted by a typical ISA (Section II-A).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchKind {
    /// `jmp +n` — target encoded as an immediate offset.
    DirectJump,
    /// `call +n` — direct call; pushes a return address.
    DirectCall,
    /// `jcc +n` — conditional branch, taken only if a flag is set.
    Conditional,
    /// `jmp (addr)` — target held in a register or memory.
    IndirectJump,
    /// `call (addr)` — indirect call; pushes a return address.
    IndirectCall,
    /// `ret` — special indirect jump whose target is on the call stack.
    Return,
}

impl BranchKind {
    /// All branch kinds, in a stable order (useful for per-kind stats).
    pub const ALL: [BranchKind; 6] = [
        BranchKind::DirectJump,
        BranchKind::DirectCall,
        BranchKind::Conditional,
        BranchKind::IndirectJump,
        BranchKind::IndirectCall,
        BranchKind::Return,
    ];

    /// True for conditional branches — the only kind needing a direction
    /// prediction.
    pub fn is_conditional(self) -> bool {
        matches!(self, BranchKind::Conditional)
    }

    /// True for calls (direct or indirect) — they push onto the RSB.
    pub fn is_call(self) -> bool {
        matches!(self, BranchKind::DirectCall | BranchKind::IndirectCall)
    }

    /// True for returns — they pop the RSB.
    pub fn is_return(self) -> bool {
        matches!(self, BranchKind::Return)
    }

    /// True for indirect control transfers (including returns), which use
    /// the BTB's BHB-based addressing mode two.
    pub fn is_indirect(self) -> bool {
        matches!(
            self,
            BranchKind::IndirectJump | BranchKind::IndirectCall | BranchKind::Return
        )
    }

    /// A stable small index for table lookups.
    pub fn index(self) -> usize {
        match self {
            BranchKind::DirectJump => 0,
            BranchKind::DirectCall => 1,
            BranchKind::Conditional => 2,
            BranchKind::IndirectJump => 3,
            BranchKind::IndirectCall => 4,
            BranchKind::Return => 5,
        }
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::DirectJump => "jmp",
            BranchKind::DirectCall => "call",
            BranchKind::Conditional => "jcc",
            BranchKind::IndirectJump => "jmp*",
            BranchKind::IndirectCall => "call*",
            BranchKind::Return => "ret",
        };
        f.write_str(s)
    }
}

/// One retired branch instruction, as delivered by a trace.
///
/// `gap` carries the number of non-branch instructions executed since the
/// previous branch — the pipeline model uses it for timing, the trace
/// simulator ignores it.
///
/// ```
/// use stbpu_bpu::{BranchKind, BranchRecord};
/// let r = BranchRecord::taken(0x1000, BranchKind::DirectCall, 0x4000);
/// assert_eq!(r.fallthrough().raw(), 0x1004);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BranchRecord {
    /// Virtual address of the branch instruction.
    pub pc: VirtAddr,
    /// Branch type.
    pub kind: BranchKind,
    /// Architected outcome (always `true` for unconditional branches).
    pub taken: bool,
    /// Architected target (fall-through address when not taken).
    pub target: VirtAddr,
    /// Instruction length in bytes (used to compute the fall-through /
    /// return address). Synthetic traces use 4.
    pub ilen: u8,
    /// Non-branch instructions since the previous branch.
    pub gap: u16,
}

impl BranchRecord {
    /// Creates a taken branch with default instruction length and gap.
    pub fn taken(pc: u64, kind: BranchKind, target: u64) -> Self {
        BranchRecord {
            pc: VirtAddr::new(pc),
            kind,
            taken: true,
            target: VirtAddr::new(target),
            ilen: 4,
            gap: 0,
        }
    }

    /// Creates a not-taken conditional branch.
    pub fn not_taken(pc: u64) -> Self {
        BranchRecord {
            pc: VirtAddr::new(pc),
            kind: BranchKind::Conditional,
            taken: false,
            target: VirtAddr::new(pc + 4),
            ilen: 4,
            gap: 0,
        }
    }

    /// Creates a conditional branch with an explicit outcome.
    pub fn conditional(pc: u64, taken: bool, target: u64) -> Self {
        BranchRecord {
            pc: VirtAddr::new(pc),
            kind: BranchKind::Conditional,
            taken,
            target: VirtAddr::new(if taken { target } else { pc + 4 }),
            ilen: 4,
            gap: 0,
        }
    }

    /// Sets the non-branch instruction gap (builder style).
    pub fn with_gap(mut self, gap: u16) -> Self {
        self.gap = gap;
        self
    }

    /// The address of the instruction following this branch — what a call
    /// pushes onto the RSB and a not-taken branch falls through to.
    pub fn fallthrough(&self) -> VirtAddr {
        VirtAddr::new(self.pc.raw() + self.ilen as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification() {
        assert!(BranchKind::Conditional.is_conditional());
        assert!(BranchKind::DirectCall.is_call());
        assert!(BranchKind::IndirectCall.is_call());
        assert!(BranchKind::Return.is_return());
        assert!(BranchKind::Return.is_indirect());
        assert!(BranchKind::IndirectJump.is_indirect());
        assert!(!BranchKind::DirectJump.is_indirect());
    }

    #[test]
    fn kind_indexes_are_unique() {
        let mut seen = [false; 6];
        for k in BranchKind::ALL {
            assert!(!seen[k.index()], "duplicate index for {k}");
            seen[k.index()] = true;
        }
    }

    #[test]
    fn not_taken_falls_through() {
        let r = BranchRecord::not_taken(0x100);
        assert!(!r.taken);
        assert_eq!(r.target, r.fallthrough());
    }

    #[test]
    fn conditional_constructor_honours_outcome() {
        let t = BranchRecord::conditional(0x100, true, 0x900);
        assert_eq!(t.target.raw(), 0x900);
        let nt = BranchRecord::conditional(0x100, false, 0x900);
        assert_eq!(nt.target.raw(), 0x104);
    }

    #[test]
    fn gap_builder() {
        let r = BranchRecord::taken(0, BranchKind::DirectJump, 8).with_gap(17);
        assert_eq!(r.gap, 17);
    }
}

//! Baseline branch-prediction-unit (BPU) substrate for the STBPU reproduction.
//!
//! This crate implements the hardware structures described in Section II-A of
//! *"STBPU: A Reasonably Secure Branch Prediction Unit"* (DSN 2022): the
//! branch target buffer ([`Btb`]), pattern history table ([`Pht`]), return
//! stack buffer ([`Rsb`]), the global history register and branch history
//! buffer ([`HistoryCtx`]), and the baseline mapping functions ①–⑤ of
//! Figure 1 / Table II ([`BaselineMapper`]).
//!
//! The crate also defines the two composition traits the rest of the
//! workspace is built on:
//!
//! * [`Mapper`] — how branch virtual addresses (and history state) are turned
//!   into indexes/tags/offsets of BPU structures, plus the control-plane
//!   hooks STBPU needs (secret-token switching, event counting). The
//!   [`BaselineMapper`] implements the reverse-engineered Skylake behaviour
//!   with *truncated* addresses; the STBPU mapper in `stbpu-core` implements
//!   keyed remapping over the full 48-bit address.
//! * [`Bpu`] — a complete predictor model (direction + target prediction)
//!   consumable by the trace simulator and the pipeline model.
//!
//! # Example
//!
//! ```
//! use stbpu_bpu::{BaselineMapper, Mapper};
//!
//! let m = BaselineMapper::new();
//! let c = m.btb1(0, 0x5555_dead_beef);
//! assert!(c.index < 512);
//! // Addresses that differ only above bit 30 collide in the baseline BTB —
//! // this is the aliasing that collision attacks exploit.
//! let c2 = m.btb1(0, 0x5555_dead_beef ^ (1 << 40));
//! assert_eq!(c, c2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod branch;
mod btb;
mod counter;
mod history;
mod map;
mod model;
mod pht;
mod rsb;
mod snap;
mod stats;

pub use addr::{EntityId, VirtAddr, VA_BITS, VA_MASK};
pub use branch::{BranchKind, BranchRecord};
pub use btb::{partition_set, Btb, BtbConfig, Eviction};
pub use counter::SaturatingCounter;
pub use history::{HistoryCtx, BHB_BITS, GHR_BITS_BASELINE, GHR_BITS_STBPU};
pub use map::{fold_u64, BaselineMapper, BtbCoord, ConservativeMapper, Mapper};
pub use model::{Bpu, BranchOutcome, MAX_THREADS};
pub use pht::Pht;
pub use rsb::Rsb;
pub use snap::{check_len, SnapError, StateReader, StateWriter};
pub use stats::BpuStats;

/// Number of BTB sets in the Skylake-like baseline (4096 entries, 8 ways).
pub const BTB_SETS: usize = 512;
/// BTB associativity in the baseline model.
pub const BTB_WAYS: usize = 8;
/// Compressed tag width stored per baseline BTB entry.
pub const BTB_TAG_BITS: u32 = 8;
/// Offset bits stored per baseline BTB entry.
pub const BTB_OFFSET_BITS: u32 = 5;
/// Number of PHT entries (16k two-bit saturating counters).
pub const PHT_ENTRIES: usize = 1 << 14;
/// Number of RSB entries in the baseline model.
pub const RSB_ENTRIES: usize = 16;

//! Saturating counters — the finite-state machines backing the PHT and
//! most predictor bookkeeping.

/// An `n`-bit saturating up/down counter.
///
/// The PHT of the baseline model is 16k two-bit counters whose states range
/// from strongly not-taken (0) to strongly taken (3); TAGE uses three-bit
/// signed variants; `useful` bits are two-bit counters.
///
/// ```
/// use stbpu_bpu::SaturatingCounter;
/// let mut c = SaturatingCounter::new(2, 1); // weakly not-taken
/// assert!(!c.is_set());
/// c.increment();
/// assert!(c.is_set()); // weakly taken
/// c.increment();
/// c.increment(); // saturates at 3
/// assert_eq!(c.value(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Creates an `bits`-bit counter with the given initial value.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 7, or if `initial` exceeds the
    /// maximum representable value.
    pub fn new(bits: u32, initial: u8) -> Self {
        assert!((1..=7).contains(&bits), "counter width out of range");
        let max = ((1u16 << bits) - 1) as u8;
        assert!(initial <= max, "initial value exceeds counter range");
        SaturatingCounter {
            value: initial,
            max,
        }
    }

    /// A two-bit counter initialised to weakly not-taken — the PHT reset
    /// state used throughout the paper's baseline.
    pub fn weakly_not_taken() -> Self {
        SaturatingCounter::new(2, 1)
    }

    /// Current counter value.
    pub fn value(self) -> u8 {
        self.value
    }

    /// Maximum representable value.
    pub fn max(self) -> u8 {
        self.max
    }

    /// True when the counter is in the taken half of its range.
    pub fn is_set(self) -> bool {
        self.value > self.max / 2
    }

    /// True at either saturation point (a "strong"/high-confidence state).
    pub fn is_strong(self) -> bool {
        self.value == 0 || self.value == self.max
    }

    /// Saturating increment.
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    pub fn decrement(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Trains toward `taken`.
    pub fn train(&mut self, taken: bool) {
        if taken {
            self.increment();
        } else {
            self.decrement();
        }
    }

    /// Resets to the given value, saturating at the maximum.
    pub fn set(&mut self, value: u8) {
        self.value = value.min(self.max);
    }
}

impl Default for SaturatingCounter {
    fn default() -> Self {
        SaturatingCounter::weakly_not_taken()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_state_machine() {
        let mut c = SaturatingCounter::new(2, 0);
        assert!(!c.is_set());
        assert!(c.is_strong());
        c.increment();
        assert_eq!(c.value(), 1);
        assert!(!c.is_set());
        assert!(!c.is_strong());
        c.increment();
        assert!(c.is_set());
        c.increment();
        assert_eq!(c.value(), 3);
        assert!(c.is_strong());
        c.increment();
        assert_eq!(c.value(), 3, "saturates high");
        for _ in 0..10 {
            c.decrement();
        }
        assert_eq!(c.value(), 0, "saturates low");
    }

    #[test]
    fn train_moves_toward_outcome() {
        let mut c = SaturatingCounter::weakly_not_taken();
        c.train(true);
        assert!(c.is_set());
        c.train(false);
        c.train(false);
        assert!(!c.is_set());
    }

    #[test]
    fn hysteresis_requires_two_flips() {
        // From strongly taken, one not-taken outcome must not flip the
        // prediction — the property BranchScope-style attacks rely on.
        let mut c = SaturatingCounter::new(2, 3);
        c.train(false);
        assert!(c.is_set(), "still predicts taken after one not-taken");
        c.train(false);
        assert!(!c.is_set());
    }

    #[test]
    fn set_saturates() {
        let mut c = SaturatingCounter::new(3, 0);
        c.set(250);
        assert_eq!(c.value(), 7);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn zero_width_rejected() {
        let _ = SaturatingCounter::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "initial value")]
    fn oversized_initial_rejected() {
        let _ = SaturatingCounter::new(2, 4);
    }
}

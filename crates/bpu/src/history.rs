//! Shift-register history state: the global history register (GHR) and the
//! branch history buffer (BHB).
//!
//! Both are cheap ways of retaining complex branch history (Section II-A).
//! The GHR records taken/not-taken outcomes of conditional branches and
//! feeds the PHT's two-level addressing mode; the BHB accumulates folded
//! source/target bits of taken branches and feeds the BTB's indirect
//! addressing mode (mode two).
//!
//! In SMT cores the history state (and the RSB) is private per logical
//! thread, while the BTB/PHT arrays are shared; [`HistoryCtx`] bundles the
//! per-thread state.

use crate::addr::VirtAddr;
use crate::rsb::Rsb;
use crate::snap::{SnapError, StateReader, StateWriter};
use crate::RSB_ENTRIES;

/// GHR length used by the baseline two-level PHT mode (Table II, fn ④).
pub const GHR_BITS_BASELINE: u32 = 18;
/// GHR length consumed by the STBPU remapping R4 (Table II).
pub const GHR_BITS_STBPU: u32 = 16;
/// BHB length (Table II, fn ②).
pub const BHB_BITS: u32 = 58;

/// Per-logical-thread BPU history state: GHR, BHB and the RSB.
///
/// ```
/// use stbpu_bpu::HistoryCtx;
/// let mut h = HistoryCtx::new();
/// h.push_outcome(true);
/// h.push_outcome(false);
/// assert_eq!(h.ghr() & 0b11, 0b10);
/// ```
#[derive(Clone, Debug)]
pub struct HistoryCtx {
    ghr: u64,
    bhb: u64,
    /// The per-thread return stack buffer.
    pub rsb: Rsb,
}

impl HistoryCtx {
    /// Creates empty history state with a 16-entry RSB.
    pub fn new() -> Self {
        HistoryCtx {
            ghr: 0,
            bhb: 0,
            rsb: Rsb::new(RSB_ENTRIES),
        }
    }

    /// Current GHR contents (up to 64 retained bits; mapping functions mask
    /// to the number of bits they consume). Bit 0 is the most recent
    /// outcome.
    pub fn ghr(&self) -> u64 {
        self.ghr
    }

    /// Current BHB contents, masked to [`BHB_BITS`].
    pub fn bhb(&self) -> u64 {
        self.bhb & ((1u64 << BHB_BITS) - 1)
    }

    /// Shifts one conditional-branch outcome into the GHR.
    pub fn push_outcome(&mut self, taken: bool) {
        self.ghr = (self.ghr << 1) | taken as u64;
    }

    /// Mixes a taken branch into the BHB.
    ///
    /// Following the Spectre reverse engineering the paper builds on, the
    /// source address is folded by XOR and combined with low target bits,
    /// then shifted into the register: each taken branch displaces two bits
    /// of the oldest context.
    pub fn push_edge(&mut self, src: VirtAddr, dst: VirtAddr) {
        let fold = ((src.raw() >> 4) ^ (src.raw() >> 18) ^ (dst.raw() << 6)) & 0xffff;
        self.bhb = ((self.bhb << 2) ^ fold) & ((1u64 << BHB_BITS) - 1);
    }

    /// Clears all history (used by flushing protections and SMT partition
    /// resets).
    pub fn clear(&mut self) {
        self.ghr = 0;
        self.bhb = 0;
        self.rsb.clear();
    }

    /// Serializes GHR, BHB and the RSB for checkpointing.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.u64(self.ghr);
        w.u64(self.bhb);
        self.rsb.save_state(w);
    }

    /// Restores state saved by [`HistoryCtx::save_state`].
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.ghr = r.u64()?;
        self.bhb = r.u64()?;
        self.rsb.load_state(r)
    }
}

impl Default for HistoryCtx {
    fn default() -> Self {
        HistoryCtx::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghr_shifts_most_recent_into_bit0() {
        let mut h = HistoryCtx::new();
        for &b in &[true, true, false, true] {
            h.push_outcome(b);
        }
        assert_eq!(h.ghr() & 0xf, 0b1101);
    }

    #[test]
    fn bhb_is_masked_to_58_bits() {
        let mut h = HistoryCtx::new();
        for i in 0..100 {
            h.push_edge(VirtAddr::new(0x4000 + i * 16), VirtAddr::new(0x9000 + i));
        }
        assert!(h.bhb() < (1u64 << BHB_BITS));
        assert_ne!(h.bhb(), 0);
    }

    #[test]
    fn bhb_depends_on_both_endpoints() {
        let mut a = HistoryCtx::new();
        let mut b = HistoryCtx::new();
        a.push_edge(VirtAddr::new(0x4000), VirtAddr::new(0x9000));
        b.push_edge(VirtAddr::new(0x4010), VirtAddr::new(0x9000));
        assert_ne!(a.bhb(), b.bhb(), "source address must influence the BHB");

        let mut c = HistoryCtx::new();
        c.push_edge(VirtAddr::new(0x4000), VirtAddr::new(0x9040));
        assert_ne!(a.bhb(), c.bhb(), "target address must influence the BHB");
    }

    #[test]
    fn old_context_ages_out() {
        // After 29 two-bit shifts the first edge must be fully displaced.
        let mut a = HistoryCtx::new();
        let mut b = HistoryCtx::new();
        a.push_edge(VirtAddr::new(0x1111_0000), VirtAddr::new(0x1));
        b.push_edge(VirtAddr::new(0x2222_0000), VirtAddr::new(0x2));
        for i in 0..29 {
            let s = VirtAddr::new(0x8000 + i * 32);
            let d = VirtAddr::new(0xf000 + i);
            a.push_edge(s, d);
            b.push_edge(s, d);
        }
        assert_eq!(a.bhb(), b.bhb());
    }

    #[test]
    fn clear_resets_everything() {
        let mut h = HistoryCtx::new();
        h.push_outcome(true);
        h.push_edge(VirtAddr::new(0x40), VirtAddr::new(0x80));
        h.rsb.push(0x1234);
        h.clear();
        assert_eq!(h.ghr(), 0);
        assert_eq!(h.bhb(), 0);
        assert!(h.rsb.pop().is_none());
    }
}

//! Property tests for the baseline BPU structures.

use proptest::prelude::*;
use stbpu_bpu::{
    fold_u64, BaselineMapper, Btb, BtbConfig, HistoryCtx, Mapper, Rsb, SaturatingCounter, VirtAddr,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Folds always stay within their output range, for any input.
    #[test]
    fn fold_in_range(v in any::<u64>(), bits in 1u32..=63) {
        prop_assert!(fold_u64(v, bits) < (1u64 << bits));
    }

    /// Folding is linear over XOR — the structural property attackers use
    /// to build colliding addresses on the baseline.
    #[test]
    fn fold_xor_linear(a in any::<u64>(), b in any::<u64>(), bits in 1u32..=32) {
        prop_assert_eq!(fold_u64(a ^ b, bits), fold_u64(a, bits) ^ fold_u64(b, bits));
    }

    /// Saturating counters never leave their range under arbitrary
    /// training sequences.
    #[test]
    fn counter_bounded(bits in 1u32..=7, ops in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut c = SaturatingCounter::new(bits, 0);
        for taken in ops {
            c.train(taken);
            prop_assert!(c.value() <= c.max());
        }
    }

    /// The RSB behaves as a LIFO for any push/pop pattern that does not
    /// exceed capacity.
    #[test]
    fn rsb_lifo_within_capacity(vals in proptest::collection::vec(any::<u64>(), 1..16)) {
        let mut r = Rsb::new(16);
        for &v in &vals {
            r.push(v);
        }
        for &v in vals.iter().rev() {
            prop_assert_eq!(r.pop(), Some(v));
        }
        prop_assert_eq!(r.pop(), None);
    }

    /// RSB occupancy is always ≤ capacity, pushes beyond capacity count as
    /// overflows, and the overflow + live counts balance.
    #[test]
    fn rsb_overflow_accounting(n in 0usize..64) {
        let mut r = Rsb::new(16);
        for i in 0..n {
            r.push(i as u64);
        }
        prop_assert!(r.len() <= 16);
        prop_assert_eq!(r.len() as u64 + r.overflows(), n as u64);
    }

    /// BTB lookups never fabricate payloads: a hit returns exactly what an
    /// insert stored for that (set, tag, offset).
    #[test]
    fn btb_returns_only_stored_payloads(
        entries in proptest::collection::vec((0usize..64, any::<u8>(), 0u8..32, any::<u64>()), 1..64)
    ) {
        let mut btb = Btb::new(BtbConfig { sets: 64, ways: 4 });
        let mut last = std::collections::HashMap::new();
        for (set, tag, off, payload) in &entries {
            btb.insert(*set, *tag as u64, *off, *payload);
            last.insert((*set, *tag, *off), *payload);
        }
        for ((set, tag, off), payload) in &last {
            if let Some(p) = btb.lookup(*set, *tag as u64, *off) {
                prop_assert_eq!(p, *payload, "stale or fabricated payload");
            }
        }
    }

    /// BTB occupancy never exceeds the configured capacity.
    #[test]
    fn btb_occupancy_bounded(ops in proptest::collection::vec((0usize..8, any::<u8>()), 0..256)) {
        let mut btb = Btb::new(BtbConfig { sets: 8, ways: 2 });
        for (set, tag) in ops {
            btb.insert(set, tag as u64, 0, 1);
            prop_assert!(btb.occupancy() <= 16);
        }
    }

    /// The baseline BTB mapping is invariant under any bits above 30 — the
    /// truncation property, universally quantified.
    #[test]
    fn baseline_mapper_truncation(pc in 0u64..(1 << 30), hi in 0u64..(1 << 18)) {
        let m = BaselineMapper::new();
        prop_assert_eq!(m.btb1(0, pc), m.btb1(0, pc | (hi << 30)));
    }

    /// BHB state is always within its 58-bit window.
    #[test]
    fn bhb_bounded(edges in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..128)) {
        let mut h = HistoryCtx::new();
        for (s, d) in edges {
            h.push_edge(VirtAddr::new(s), VirtAddr::new(d));
            prop_assert!(h.bhb() < (1u64 << 58));
        }
    }

    /// VirtAddr never exceeds 48 bits.
    #[test]
    fn virt_addr_canonical(raw in any::<u64>()) {
        prop_assert!(VirtAddr::new(raw).raw() < (1u64 << 48));
    }
}

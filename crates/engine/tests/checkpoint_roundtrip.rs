//! Checkpoint round-trip properties: for every registry model, a
//! checkpoint cut at an arbitrary branch index and pushed through the
//! full `.stck` byte format must resume to a run bit-identical to the
//! uninterrupted sequential reference — and no truncation or single-byte
//! corruption of the encoded form may ever panic the decoder; it must
//! come back as a positioned [`CheckpointError`].

use proptest::prelude::*;
use stbpu_engine::{cut_checkpoints, run_sequential, ModelRegistry, ShardConfig, Workload};
use stbpu_sim::{Checkpoint, Protection, Warmup};

const BRANCHES: usize = 3_000;

fn cfg() -> ShardConfig {
    ShardConfig {
        shards: 1, // unused by cut_checkpoints
        warmup: Warmup::Branches(0),
        interval: None,
        threads: None,
        checkpoint_dir: None,
    }
}

/// A protection policy each model actually runs under in the paper grid.
fn policy_for(spec: &str) -> Protection {
    if spec.starts_with("st_") {
        Protection::Stbpu
    } else if spec == "conservative" {
        Protection::Conservative
    } else {
        Protection::Unprotected
    }
}

/// One checkpoint cut at `at`, serialized through the `.stck` byte format
/// and resumed to the end of the stream.
fn roundtrip_resume(
    registry: &ModelRegistry,
    spec: &str,
    seed: u64,
    workload: &Workload,
    at: u64,
) -> Result<(stbpu_sim::SimReport, Vec<stbpu_sim::IntervalWindow>), String> {
    let cps = cut_checkpoints(
        registry,
        spec,
        policy_for(spec),
        seed,
        workload,
        BRANCHES,
        &cfg(),
        &[at],
    )
    .map_err(|e| e.to_string())?;
    let cp = cps.into_iter().next().ok_or("no checkpoint")?;
    // Through the real byte format, not just the in-memory struct.
    let back = Checkpoint::from_bytes(&cp.to_bytes()).map_err(|e| e.to_string())?;
    assert_eq!(back, cp, "{spec}: .stck round trip changed the checkpoint");
    let mut source = workload.open(seed, BRANCHES).map_err(|e| e.to_string())?;
    stbpu_engine::resume_to_end(registry, &back, source.as_mut()).map_err(|e| e.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// save → to_bytes → from_bytes → resume at an arbitrary branch index
    /// is bit-identical to the uninterrupted run, for every registered
    /// (non-alias) model.
    #[test]
    fn resume_is_bit_identical_for_every_registry_model(
        seed in any::<u64>(),
        frac in 0u64..100,
    ) {
        let registry = ModelRegistry::standard();
        let workload = Workload::Named("541.leela".to_string());
        let seed = seed % 10_000;
        // Anywhere from the second branch to the second-to-last.
        let at = 1 + frac * (BRANCHES as u64 - 2) / 100;
        let mut resumed_models = 0usize;
        for (spec, _, alias) in registry.catalog() {
            if alias {
                continue;
            }
            let (seq, seq_iv) = run_sequential(
                &registry,
                spec,
                policy_for(spec),
                seed,
                &workload,
                BRANCHES,
                Warmup::Branches(0),
                None,
                None,
            )
            .unwrap_or_else(|e| panic!("{spec}: sequential reference failed: {e}"));
            let (resumed, resumed_iv) = roundtrip_resume(&registry, spec, seed, &workload, at)
                .unwrap_or_else(|e| panic!("{spec}: roundtrip resume failed: {e}"));
            prop_assert_eq!(&resumed, &seq, "{}@{}: report drift", spec, at);
            prop_assert_eq!(&resumed_iv, &seq_iv, "{}@{}: interval drift", spec, at);
            resumed_models += 1;
        }
        // If the registry shrinks or capture support silently regresses,
        // fail loudly instead of vacuously passing.
        prop_assert!(resumed_models >= 15, "only {} models round-tripped", resumed_models);
    }

    /// Any truncation of a valid `.stck` image decodes to a positioned
    /// error — never a panic, never a checkpoint.
    #[test]
    fn truncated_stck_is_a_positioned_error(
        seed in any::<u64>(),
        cut_frac in 0u64..1000,
    ) {
        let registry = ModelRegistry::standard();
        let workload = Workload::Named("541.leela".to_string());
        let cps = cut_checkpoints(
            &registry,
            "st_skl",
            Protection::Stbpu,
            seed % 100,
            &workload,
            BRANCHES,
            &cfg(),
            &[1_500],
        )
        .expect("cutting the reference checkpoint");
        let bytes = cps[0].to_bytes();
        let cut = (cut_frac as usize * (bytes.len() - 1)) / 1000;
        let err = Checkpoint::from_bytes(&bytes[..cut])
            .expect_err("truncated image must not decode");
        // Positioned within what remains of the image.
        prop_assert!(err.offset <= cut, "error offset {} past cut {}", err.offset, cut);
    }

    /// Any single-byte corruption of a valid `.stck` image decodes to an
    /// error — the checksum tail covers every byte before it, and the
    /// tail itself is checked against the recomputed sum.
    #[test]
    fn corrupt_stck_is_an_error_never_a_panic(
        pos_frac in 0u64..1000,
        flip in 1u8..=255,
    ) {
        let registry = ModelRegistry::standard();
        let workload = Workload::Named("541.leela".to_string());
        let cps = cut_checkpoints(
            &registry,
            "st_skl",
            Protection::Stbpu,
            7,
            &workload,
            BRANCHES,
            &cfg(),
            &[1_500],
        )
        .expect("cutting the reference checkpoint");
        let mut bytes = cps[0].to_bytes();
        let pos = (pos_frac as usize * (bytes.len() - 1)) / 1000;
        bytes[pos] ^= flip; // flip != 0, so the byte really changes
        prop_assert!(
            Checkpoint::from_bytes(&bytes).is_err(),
            "corrupting byte {} must not decode cleanly",
            pos
        );
    }
}

/// The cut index is exact: the checkpoint records precisely the requested
/// number of retired branches, at every boundary flavor (first possible,
/// mid-stream, last).
#[test]
fn cut_lands_exactly_on_the_requested_branch() {
    let registry = ModelRegistry::standard();
    let workload = Workload::Named("505.mcf".to_string());
    for at in [1u64, 2, 1_499, 1_500, 2_999] {
        let cps = cut_checkpoints(
            &registry,
            "st_skl@r=0.05",
            Protection::Stbpu,
            3,
            &workload,
            BRANCHES,
            &cfg(),
            &[at],
        )
        .unwrap();
        assert_eq!(cps[0].branches_seen, at, "cut at {at}");
        assert!(cps[0].events_consumed >= at, "events cover the branches");
    }
}

//! Registry coverage: every registered model name must build and survive a
//! short trace with sane statistics — a new predictor cannot be registered
//! without being exercised.

use stbpu_bpu::Bpu;
use stbpu_engine::{ModelRegistry, Scenario};
use stbpu_sim::{simulate, Protection};
use stbpu_trace::{TraceGenerator, WorkloadProfile};

#[test]
fn every_registered_model_builds_runs_and_predicts() {
    let registry = ModelRegistry::standard();
    let trace = TraceGenerator::new(&WorkloadProfile::test_profile(), 9).generate(4_000);
    let names = registry.names();
    assert!(names.len() >= 15, "standard registry shrank: {names:?}");

    for name in names {
        let mut model = registry
            .build(name, 7)
            .unwrap_or_else(|e| panic!("'{name}' failed to build: {e}"));
        assert!(
            !model.name().is_empty(),
            "'{name}' has an empty model label"
        );
        assert!(
            registry.summary(name).is_some(),
            "'{name}' registered without a summary"
        );

        let report = simulate(&mut model, Protection::Unprotected, &trace, 0.1);
        assert!(
            report.oae > 0.4 && report.oae <= 1.0,
            "'{name}' ({}) produced implausible OAE {} on the test workload",
            report.model,
            report.oae
        );
        assert_eq!(
            report.branches, 3_600,
            "'{name}' lost branches (warm-up accounting broke)"
        );
        assert!(
            report.mispredictions < report.branches,
            "'{name}' mispredicted everything"
        );
    }
}

#[test]
fn every_fig3_scheme_resolves_through_the_registry() {
    let registry = ModelRegistry::standard();
    let schemes = Scenario::fig3();
    assert_eq!(schemes.len(), 5);
    for sc in &schemes {
        registry
            .build(&sc.model, 1)
            .unwrap_or_else(|e| panic!("fig3 scheme '{}' failed: {e}", sc.model));
    }
    // Legend order: baseline first, STBPU second.
    assert_eq!(schemes[0].protection, Protection::Unprotected);
    assert_eq!(schemes[1].protection, Protection::Stbpu);
}

#[test]
fn st_variants_rerandomize_under_pressure_and_baselines_do_not() {
    let registry = ModelRegistry::standard();
    let trace = TraceGenerator::new(&WorkloadProfile::test_profile(), 5).generate(4_000);
    for name in ["skl", "tage8", "perceptron", "gshare", "conservative"] {
        let mut model = registry.build(name, 3).unwrap();
        let report = simulate(&mut model, Protection::Unprotected, &trace, 0.0);
        assert_eq!(
            report.rerandomizations, 0,
            "keyless '{name}' cannot re-randomize"
        );
    }
    // A tiny difficulty factor forces visible token churn on an ST model.
    let mut model = registry.build("st_skl@r=0.00001", 3).unwrap();
    let report = simulate(&mut model, Protection::Stbpu, &trace, 0.0);
    assert!(
        report.rerandomizations > 0,
        "st_skl with aggressive r must re-randomize (got {})",
        report.rerandomizations
    );
}

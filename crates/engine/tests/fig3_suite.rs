//! Figure 3 scheme behavior, exercised through the engine API.
//!
//! These tests were migrated from `stbpu-sim` when its deprecated
//! `ModelKind` / `build_model` / `fig3_schemes` / `run_fig3_suite` shims
//! were removed: the accuracy/ordering claims they check are properties of
//! the five protection schemes, and the engine registry + `run_scenarios`
//! is the supported way to run them.

use stbpu_engine::{run_scenarios, ModelRegistry, Scenario};
use stbpu_sim::SimReport;
use stbpu_trace::{profiles, Trace, TraceGenerator};

fn trace_for_seeded(name: &str, branches: usize, seed: u64) -> Trace {
    TraceGenerator::new(profiles::by_name(name).unwrap(), seed).generate(branches)
}

fn trace_for(name: &str, branches: usize) -> Trace {
    trace_for_seeded(name, branches, 42)
}

fn fig3_suite(trace: &Trace, seed: u64, warmup: f64) -> Vec<SimReport> {
    run_scenarios(
        &ModelRegistry::standard(),
        trace,
        &Scenario::fig3(),
        seed,
        warmup,
    )
    .expect("fig3 scenarios are valid")
}

#[test]
fn baseline_accuracy_in_published_range_for_spec() {
    let registry = ModelRegistry::standard();
    let baseline = [Scenario::new("skl", stbpu_sim::Protection::Unprotected)];

    // Predictable FP workload: baseline OAE must be high.
    let t = trace_for_seeded("519.lbm", 30_000, 1);
    let r = &run_scenarios(&registry, &t, &baseline, 1, 0.2).unwrap()[0];
    assert!(r.oae > 0.93, "lbm baseline OAE {}", r.oae);

    // Hard integer workload: noticeably lower but still decent.
    let t = trace_for_seeded("541.leela", 30_000, 1);
    let r2 = &run_scenarios(&registry, &t, &baseline, 1, 0.2).unwrap()[0];
    assert!(
        r2.oae > 0.75 && r2.oae < 0.99,
        "leela baseline OAE {}",
        r2.oae
    );
    assert!(r.oae > r2.oae, "lbm must beat leela");
}

#[test]
fn stbpu_close_to_baseline_on_spec() {
    let t = trace_for("525.x264", 25_000);
    let suite = fig3_suite(&t, 1, 0.2);
    let (rb, rs) = (&suite[0], &suite[1]);
    assert!(
        rs.oae > rb.oae - 0.05,
        "STBPU ({}) must track baseline ({})",
        rs.oae,
        rb.oae
    );
}

#[test]
fn ucode_flushing_hurts_switch_heavy_workloads() {
    let t = trace_for("apache2_prefork_c256", 30_000);
    let suite = fig3_suite(&t, 7, 0.1);
    let base = suite[0].oae;
    let stbpu = suite[1].oae;
    let ucode1 = suite[2].oae;
    assert!(
        ucode1 < base - 0.03,
        "flushing must cost accuracy on apache: base {base}, ucode {ucode1}"
    );
    assert!(
        stbpu > ucode1,
        "STBPU ({stbpu}) must beat microcode flushing ({ucode1})"
    );
    assert!(suite[2].flushes > 100, "apache must trigger many flushes");
}

#[test]
fn stbpu_does_not_flush() {
    let t = trace_for("mysql_64con_50s", 15_000);
    let suite = fig3_suite(&t, 3, 0.1);
    assert_eq!(suite[1].flushes, 0, "STBPU never flushes");
    assert_eq!(suite[0].flushes, 0, "baseline never flushes");
    assert!(suite[2].flushes > 0);
}

#[test]
fn partitioning_makes_ucode2_at_most_ucode1() {
    let t = trace_for("chrome-1jetstream", 25_000);
    let suite = fig3_suite(&t, 3, 0.1);
    let (u1, u2) = (suite[2].oae, suite[3].oae);
    assert!(
        u2 <= u1 + 0.02,
        "STIBP partitioning should not help: u1 {u1}, u2 {u2}"
    );
}

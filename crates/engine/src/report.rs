//! Structured serialization of simulation reports (CSV and JSON) and
//! protection-name parsing.

use crate::error::EngineError;
use stbpu_sim::{Protection, SimReport};

/// Parses a protection policy name (`"unprotected"`, `"stbpu"`,
/// `"ucode1"`, `"ucode2"`, `"conservative"`, plus the Figure 3 legend
/// labels).
pub fn protection_from_str(s: &str) -> Result<Protection, EngineError> {
    match s.trim().to_ascii_lowercase().as_str() {
        "unprotected" | "baseline" | "none" => Ok(Protection::Unprotected),
        "stbpu" | "st" => Ok(Protection::Stbpu),
        "ucode1" | "ucode protection" | "ucode" => Ok(Protection::Ucode1),
        "ucode2" | "ucode protection2" => Ok(Protection::Ucode2),
        "conservative" => Ok(Protection::Conservative),
        other => Err(EngineError::UnknownProtection(other.to_string())),
    }
}

/// Infers the protection policy a model spec is naturally evaluated
/// under: ST models run under the STBPU policy, the conservative model
/// under the conservative policy, everything else unprotected. The one
/// resolution rule behind every `--protection auto` surface (CLI
/// simulate/attack, the serve `Hello` handshake), so "auto" means the
/// same thing on every path.
pub fn auto_protection(model_spec: &str) -> Protection {
    let name = model_spec.split('@').next().unwrap_or("").trim();
    if name.starts_with("st_") || name == "stbpu" {
        Protection::Stbpu
    } else if name == "conservative" {
        Protection::Conservative
    } else {
        Protection::Unprotected
    }
}

/// Column header matching [`report_to_csv_row`].
pub fn csv_header() -> &'static str {
    "workload,model,protection,seed,oae,direction_rate,target_rate,branches,\
     mispredictions,evictions,flushes,rerandomizations"
}

/// One CSV row for a report (with the seed that produced it).
pub fn report_to_csv_row(r: &SimReport, seed: u64) -> String {
    format!(
        "{},{},{},{seed},{:.6},{:.6},{:.6},{},{},{},{},{}",
        csv_escape(&r.workload),
        csv_escape(&r.model),
        r.protection,
        r.oae,
        r.direction_rate,
        r.target_rate,
        r.branches,
        r.mispredictions,
        r.evictions,
        r.flushes,
        r.rerandomizations,
    )
}

/// One JSON object for a report (with the seed that produced it).
pub fn report_to_json(r: &SimReport, seed: u64) -> String {
    format!(
        "{{\"workload\":{},\"model\":{},\"protection\":{},\"seed\":{seed},\
         \"oae\":{:.6},\"direction_rate\":{:.6},\"target_rate\":{:.6},\
         \"branches\":{},\"mispredictions\":{},\"evictions\":{},\
         \"flushes\":{},\"rerandomizations\":{}}}",
        json_string(&r.workload),
        json_string(&r.model),
        json_string(r.protection),
        r.oae,
        r.direction_rate,
        r.target_rate,
        r.branches,
        r.mispredictions,
        r.evictions,
        r.flushes,
        r.rerandomizations,
    )
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimReport {
        SimReport {
            model: "SKLCond".to_string(),
            protection: Protection::Unprotected.label(),
            workload: "test,comma".to_string(),
            oae: 0.912345,
            direction_rate: 0.95,
            target_rate: 0.97,
            branches: 1000,
            mispredictions: 88,
            evictions: 12,
            flushes: 0,
            rerandomizations: 0,
        }
    }

    #[test]
    fn protection_names_round_trip() {
        for p in [
            Protection::Unprotected,
            Protection::Stbpu,
            Protection::Ucode1,
            Protection::Ucode2,
            Protection::Conservative,
        ] {
            assert_eq!(
                protection_from_str(p.label()).unwrap(),
                p,
                "label {}",
                p.label()
            );
        }
        assert!(protection_from_str("ibpb").is_err());
    }

    #[test]
    fn csv_escapes_commas() {
        let row = report_to_csv_row(&sample(), 7);
        assert!(row.starts_with("\"test,comma\",SKLCond,baseline,7,0.912345"));
        assert_eq!(row.split(',').count(), csv_header().split(',').count() + 1);
        // +1: escaped comma
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = report_to_json(&sample(), 7);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"workload\":\"test,comma\""));
        assert!(j.contains("\"seed\":7"));
        assert!(j.contains("\"oae\":0.912345"));
    }
}

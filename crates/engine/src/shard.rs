//! Two-pass sharded simulation with checkpointed warm-start handoff.
//!
//! A branch-predictor simulation is a strict left fold: the model state
//! after branch *i* depends on every event before it, so the stream cannot
//! simply be split across cores. The driver here gets parallelism (and
//! kill/resume) anyway by separating *state transport* from *measurement*:
//!
//! 1. **Pass 1 (sequential, cheap per event):** fast-forward the stream
//!    once, capturing a [`Checkpoint`] at each shard boundary
//!    `T_k = k·B/N` (branch counts, integer math). The cut lands
//!    immediately *after* the branch event that reaches `T_k`; trailing
//!    non-branch events belong to the next shard. Pass 1 stops after the
//!    last cut `T_{N-1}` — the final shard is never fast-forwarded.
//! 2. **Pass 2 (parallel):** simulate the `N` shards concurrently, shard
//!    `k > 0` warm-started from checkpoint `k-1` (session bookkeeping and
//!    full model state restored bit-exactly, stream repositioned via
//!    [`EventSource::skip_events`]). Shard `k < N-1` re-derives the state
//!    at its right boundary and the driver byte-compares it against
//!    checkpoint `k` — a *handoff verification* that turns any
//!    serialization gap into a hard error instead of silent drift.
//!
//! The final report comes from shard `N-1` (model statistics are part of
//! the transported state, so its `finish` sees exactly what a sequential
//! run would), and interval windows are the concatenation of the per-shard
//! series. The whole construction is gated bit-identical to the
//! sequential run by tests and by the CI shard-parity leg.
//!
//! With [`ShardConfig::checkpoint_dir`] set, pass-1 checkpoints persist as
//! `shard-<key>-<k>.stck` files keyed by a hash of the full run
//! configuration; a later run with the same configuration skips pass 1
//! entirely and goes straight to the parallel pass — the warm-resume
//! speedup measured by `stbpu bench --suite shard`.
//!
//! Determinism note: nothing here reads clocks or host parallelism into
//! results — timing lives in the CLI, and [`parallel_map`] preserves
//! order regardless of worker count.

use crate::error::EngineError;
use crate::parallel::parallel_map;
use crate::registry::ModelRegistry;
use crate::workload::Workload;
use stbpu_sim::{
    fnv1a64, Checkpoint, IntervalWindow, OwnedSession, Protection, SessionOptions, SimReport,
    Warmup,
};
use stbpu_trace::{EventSource, TraceEvent};
use std::path::{Path, PathBuf};

/// Batch size for shard feeding (matches the session's own pull size).
const SHARD_BATCH: usize = 4_096;

/// Most shards a single run may request. Generous — the point is to catch
/// garbage input (`--shards 0`, `--shards 1e9`), not to size clusters.
pub const MAX_SHARDS: usize = 256;

/// How a sharded run should execute.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Number of shards (1 = plain sequential run, no checkpoints).
    pub shards: usize,
    /// Warm-up policy for the run as a whole (resolved once, at stream
    /// start; shard workers inherit the resolved target via checkpoint).
    pub warmup: Warmup,
    /// Interval window length in branches, if windows are wanted.
    pub interval: Option<u64>,
    /// Explicit thread provision (`None`: the source's declared count,
    /// falling back to the model maximum — the CLI's resolution rule).
    pub threads: Option<usize>,
    /// Persist pass-1 checkpoints here and reuse them on identical reruns.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            warmup: Warmup::Fraction(0.1),
            interval: None,
            threads: None,
            checkpoint_dir: None,
        }
    }
}

/// Result of a sharded run.
#[derive(Clone, Debug)]
pub struct ShardRun {
    /// The stitched report — bit-identical to the sequential run's.
    pub report: SimReport,
    /// Concatenated interval windows (empty unless an interval was set).
    pub intervals: Vec<IntervalWindow>,
    /// Event index of each shard boundary (`events_consumed` of each
    /// pass-1 checkpoint); empty for a 1-shard run.
    pub cuts: Vec<u64>,
    /// How many boundary checkpoints were loaded from the cache directory
    /// instead of regenerated (0 or `shards - 1`).
    pub cache_hits: usize,
}

/// What one pass-2 worker hands back to the driver.
struct SegmentOut {
    intervals: Vec<IntervalWindow>,
    /// `(session_state, model_state, branches_seen)` at the shard's right
    /// boundary — `Some` for every shard but the last.
    end_state: Option<(Vec<u8>, Vec<u8>, u64)>,
    /// The final report — `Some` only for the last shard.
    report: Option<SimReport>,
}

fn source_err(e: stbpu_trace::SourceError) -> EngineError {
    EngineError::WorkloadSource(e.to_string())
}

fn ckpt_err(e: stbpu_sim::CheckpointError) -> EngineError {
    EngineError::Checkpoint(e.to_string())
}

/// Feeds exactly `left` events from `source` into `session`, erroring if
/// the stream ends first.
fn feed_exact<B: stbpu_bpu::Bpu>(
    session: &mut OwnedSession<B>,
    source: &mut dyn EventSource,
    mut left: u64,
) -> Result<(), EngineError> {
    let mut buf = Vec::new();
    while left > 0 {
        let max = left.min(SHARD_BATCH as u64) as usize;
        let n = source.next_batch(&mut buf, max).map_err(source_err)?;
        if n == 0 {
            return Err(EngineError::Shard(format!(
                "stream ended {left} events before its shard boundary"
            )));
        }
        session.feed_batch(&buf)?;
        left -= n as u64;
    }
    Ok(())
}

/// Feeds `source` to exhaustion.
fn feed_to_end<B: stbpu_bpu::Bpu>(
    session: &mut OwnedSession<B>,
    source: &mut dyn EventSource,
) -> Result<(), EngineError> {
    let mut buf = Vec::new();
    loop {
        if source
            .next_batch(&mut buf, SHARD_BATCH)
            .map_err(source_err)?
            == 0
        {
            return Ok(());
        }
        session.feed_batch(&buf)?;
    }
}

/// Resolves the effective thread provision the way the CLI does: explicit
/// request, else the source's declared count (0 = unknown → `None`, the
/// model maximum).
pub(crate) fn resolve_threads(explicit: Option<usize>, declared: usize) -> Option<usize> {
    explicit.or(match declared {
        0 => None,
        t => Some(t),
    })
}

/// Plain sequential run through the same session machinery the shard
/// workers use — the reference the sharded result is gated against.
///
/// # Errors
///
/// Registry, workload or simulation errors.
#[allow(clippy::too_many_arguments)]
pub fn run_sequential(
    registry: &ModelRegistry,
    model_spec: &str,
    protection: Protection,
    seed: u64,
    workload: &Workload,
    branches: usize,
    warmup: Warmup,
    interval: Option<u64>,
    threads: Option<usize>,
) -> Result<(SimReport, Vec<IntervalWindow>), EngineError> {
    let model = registry.build(model_spec, seed)?;
    let mut source = workload.open(seed, branches)?;
    let threads = resolve_threads(threads, source.thread_count());
    let mut session = OwnedSession::new(
        model,
        protection,
        SessionOptions {
            warmup,
            threads,
            interval,
            workload: None,
        },
    )?;
    session.run(source.as_mut())?;
    Ok(session.finish_with_intervals())
}

/// Pass 1: one sequential fast-forward over the stream, capturing a
/// checkpoint the instant `branches_seen` reaches each of `targets`
/// (ascending branch counts). Interval windows closed along the way are
/// discarded — pass 2 re-derives them — so every captured session blob
/// carries an empty retained-window list, which is what makes the
/// handoff byte-comparison meaningful.
///
/// A stream that ends before the last target yields the remaining
/// checkpoints at end-of-stream (degenerate but well-defined: the
/// trailing shards are empty).
///
/// # Errors
///
/// Registry, workload, simulation or snapshot errors.
#[allow(clippy::too_many_arguments)]
pub fn cut_checkpoints(
    registry: &ModelRegistry,
    model_spec: &str,
    protection: Protection,
    seed: u64,
    workload: &Workload,
    branches: usize,
    cfg: &ShardConfig,
    targets: &[u64],
) -> Result<Vec<Checkpoint>, EngineError> {
    let model = registry.build(model_spec, seed)?;
    let mut source = workload.open(seed, branches)?;
    let threads = resolve_threads(cfg.threads, source.thread_count());
    let mut session = OwnedSession::new(
        model,
        protection,
        SessionOptions {
            warmup: cfg.warmup,
            threads,
            interval: cfg.interval,
            workload: None,
        },
    )?;
    session.begin(source.name(), source.branch_hint())?;

    let mut cps = Vec::with_capacity(targets.len());
    let mut buf: Vec<TraceEvent> = Vec::new();
    let mut lo = 0usize;
    let mut events_fed = 0u64;
    for &target in targets {
        'reach: while session.branches_seen() < target {
            if lo >= buf.len() {
                lo = 0;
                if source
                    .next_batch(&mut buf, SHARD_BATCH)
                    .map_err(source_err)?
                    == 0
                {
                    break 'reach; // stream shorter than its hint
                }
            }
            // Split the buffered batch at the branch that reaches the
            // target; anything after it belongs to the next shard.
            let need = target - session.branches_seen();
            let mut hi = lo;
            let mut got = 0u64;
            while hi < buf.len() && got < need {
                if matches!(buf[hi], TraceEvent::Branch { .. }) {
                    got += 1;
                }
                hi += 1;
            }
            session.feed_batch(&buf[lo..hi])?;
            events_fed += (hi - lo) as u64;
            lo = hi;
        }
        let _ = session.take_intervals();
        cps.push(Checkpoint::capture(&session, model_spec, seed, events_fed).map_err(ckpt_err)?);
    }
    Ok(cps)
}

/// The canonical configuration key a checkpoint cache entry is filed
/// under — every knob that changes simulation state is encoded, so a hit
/// is only possible for a bit-identical rerun.
fn cache_key(
    model_spec: &str,
    protection: Protection,
    seed: u64,
    workload_label: &str,
    branches: usize,
    cfg: &ShardConfig,
    threads: Option<usize>,
) -> u64 {
    let warm = match cfg.warmup {
        Warmup::Fraction(f) => format!("f{:016x}", f.to_bits()),
        Warmup::Branches(n) => format!("b{n}"),
    };
    let iv = cfg
        .interval
        .map(|n| n.to_string())
        .unwrap_or_else(|| "none".to_string());
    let th = threads
        .map(|n| n.to_string())
        .unwrap_or_else(|| "auto".to_string());
    let key = format!(
        "{model_spec}|{}|{seed}|{workload_label}|{branches}|{warm}|{iv}|{th}|{}",
        protection.code(),
        cfg.shards,
    );
    fnv1a64(key.as_bytes())
}

/// Cache file path for boundary checkpoint `k` under `key`.
fn cache_path(dir: &Path, key: u64, k: usize) -> PathBuf {
    dir.join(format!("shard-{key:016x}-{k}.stck"))
}

/// Loads a full set of cached boundary checkpoints, or `None` when any
/// file is missing, undecodable, or inconsistent with the run
/// configuration (the caller then regenerates the whole set).
fn load_cached(
    dir: &Path,
    key: u64,
    count: usize,
    model_spec: &str,
    protection: Protection,
    seed: u64,
) -> Option<Vec<Checkpoint>> {
    let mut cps = Vec::with_capacity(count);
    let mut prev_events = 0u64;
    for k in 0..count {
        let cp = Checkpoint::load(&cache_path(dir, key, k)).ok()?;
        let consistent = cp.model_spec == model_spec
            && cp.seed == seed
            && cp.protection == protection
            && cp.events_consumed >= prev_events;
        if !consistent {
            return None;
        }
        prev_events = cp.events_consumed;
        cps.push(cp);
    }
    Some(cps)
}

/// Runs one pass-2 segment: warm-start (or fresh-start for shard 0),
/// feed exactly the shard's event span, and hand back the windows plus
/// either the boundary state (inner shards) or the final report (last
/// shard).
#[allow(clippy::too_many_arguments)]
fn run_segment(
    k: usize,
    registry: &ModelRegistry,
    model_spec: &str,
    protection: Protection,
    seed: u64,
    workload: &Workload,
    branches: usize,
    cfg: &ShardConfig,
    checkpoints: &[Checkpoint],
    cuts: &[u64],
) -> Result<SegmentOut, EngineError> {
    let last = cfg.shards - 1;
    let model = registry.build(model_spec, seed)?;
    let mut source = workload.open(seed, branches)?;
    let threads = resolve_threads(cfg.threads, source.thread_count());
    let mut session = OwnedSession::new(
        model,
        protection,
        SessionOptions {
            warmup: if k == 0 {
                cfg.warmup
            } else {
                Warmup::Branches(0)
            },
            threads,
            interval: cfg.interval,
            workload: None,
        },
    )?;

    if k == 0 {
        session.begin(source.name(), source.branch_hint())?;
    } else {
        let cp = &checkpoints[k - 1];
        cp.apply(&mut session).map_err(ckpt_err)?;
        // The checkpoint's retained-window list is empty by construction
        // (pass 1 drains before capture); drain defensively anyway so the
        // end-state comparison below can never be polluted by it.
        let _ = session.take_intervals();
        let skipped = source.skip_events(cp.events_consumed).map_err(source_err)?;
        if skipped != cp.events_consumed {
            return Err(EngineError::Shard(format!(
                "shard {k}: stream has only {skipped} of the {} events its checkpoint consumed",
                cp.events_consumed
            )));
        }
    }

    if k == last {
        feed_to_end(&mut session, source.as_mut())?;
        let (report, intervals) = session.finish_with_intervals();
        Ok(SegmentOut {
            intervals,
            end_state: None,
            report: Some(report),
        })
    } else {
        let lo = if k == 0 { 0 } else { cuts[k - 1] };
        feed_exact(&mut session, source.as_mut(), cuts[k] - lo)?;
        let intervals = session.take_intervals();
        let seen = session.branches_seen();
        let end = Checkpoint::capture(&session, model_spec, seed, cuts[k]).map_err(ckpt_err)?;
        Ok(SegmentOut {
            intervals,
            end_state: Some((end.session_state, end.model_state, seen)),
            report: None,
        })
    }
}

/// Runs `model_spec` under `protection` over `workload` split into
/// [`ShardConfig::shards`] shards, returning a result gated bit-identical
/// to [`run_sequential`] with the same arguments.
///
/// # Errors
///
/// Everything the sequential path can raise, plus
/// [`EngineError::Shard`] for a bad shard count, a hint-less stream, or a
/// failed handoff verification, and [`EngineError::Checkpoint`] for cache
/// I/O and state-snapshot failures.
#[allow(clippy::too_many_arguments)]
pub fn run_sharded(
    registry: &ModelRegistry,
    model_spec: &str,
    protection: Protection,
    seed: u64,
    workload: &Workload,
    branches: usize,
    cfg: &ShardConfig,
) -> Result<ShardRun, EngineError> {
    if cfg.shards == 0 || cfg.shards > MAX_SHARDS {
        return Err(EngineError::Shard(format!(
            "shard count must be 1..={MAX_SHARDS}, got {}",
            cfg.shards
        )));
    }
    workload.validate()?;
    if cfg.shards == 1 {
        let (report, intervals) = run_sequential(
            registry,
            model_spec,
            protection,
            seed,
            workload,
            branches,
            cfg.warmup,
            cfg.interval,
            cfg.threads,
        )?;
        return Ok(ShardRun {
            report,
            intervals,
            cuts: Vec::new(),
            cache_hits: 0,
        });
    }

    // Size the cuts off the declared branch count.
    let (hint, threads, label) = {
        let source = workload.open(seed, branches)?;
        let hint = source.branch_hint().ok_or_else(|| {
            EngineError::Shard(
                "sharding needs a source with a branch-count hint (in-memory traces, \
                 generators and headered trace files all have one)"
                    .to_string(),
            )
        })?;
        (
            hint,
            resolve_threads(cfg.threads, source.thread_count()),
            workload.label(),
        )
    };
    let n = cfg.shards as u64;
    let targets: Vec<u64> = (1..n).map(|k| k * hint / n).collect();

    // Pass 1 — or a cache hit that skips it.
    let key = cache_key(model_spec, protection, seed, &label, branches, cfg, threads);
    let cached = cfg
        .checkpoint_dir
        .as_deref()
        .and_then(|dir| load_cached(dir, key, targets.len(), model_spec, protection, seed));
    let mut cache_hits = 0usize;
    let checkpoints = match cached {
        Some(cps) => {
            cache_hits = cps.len();
            cps
        }
        None => {
            let cps = cut_checkpoints(
                registry, model_spec, protection, seed, workload, branches, cfg, &targets,
            )?;
            if let Some(dir) = cfg.checkpoint_dir.as_deref() {
                std::fs::create_dir_all(dir).map_err(|e| EngineError::Checkpoint(e.to_string()))?;
                for (k, cp) in cps.iter().enumerate() {
                    cp.save(&cache_path(dir, key, k)).map_err(ckpt_err)?;
                }
            }
            cps
        }
    };
    let cuts: Vec<u64> = checkpoints.iter().map(|c| c.events_consumed).collect();
    if cuts.windows(2).any(|w| w[0] > w[1]) {
        return Err(EngineError::Shard(
            "boundary checkpoints are not in stream order".to_string(),
        ));
    }

    // Pass 2 — simulate every shard, warm-started from its checkpoint.
    let idx: Vec<usize> = (0..cfg.shards).collect();
    let results = parallel_map(idx, |&k| {
        run_segment(
            k,
            registry,
            model_spec,
            protection,
            seed,
            workload,
            branches,
            cfg,
            &checkpoints,
            &cuts,
        )
    });

    let mut intervals = Vec::new();
    let mut report = None;
    for (k, res) in results.into_iter().enumerate() {
        let out = res?;
        if let Some((session_state, model_state, seen)) = out.end_state {
            // Handoff verification: the re-derived boundary state must be
            // byte-for-byte the state pass 1 handed to shard k + 1.
            let cp = &checkpoints[k];
            if seen != cp.branches_seen
                || session_state != cp.session_state
                || model_state != cp.model_state
            {
                return Err(EngineError::Shard(format!(
                    "shard {k} handoff diverged from its boundary checkpoint \
                     (re-derived state at branch {seen} != checkpointed state at branch {})",
                    cp.branches_seen
                )));
            }
        }
        intervals.extend(out.intervals);
        if out.report.is_some() {
            report = out.report;
        }
    }
    let report = report
        .ok_or_else(|| EngineError::Shard("no shard produced the final report".to_string()))?;
    Ok(ShardRun {
        report,
        intervals,
        cuts,
        cache_hits,
    })
}

/// Rebuilds a live session from a checkpoint: model from the registry
/// (per the checkpoint's spec and seed), session opened under the
/// checkpoint's protection with the blob's thread provision, then both
/// state blobs applied. The caller repositions its stream with
/// [`EventSource::skip_events`]`(cp.events_consumed)` and feeds on.
///
/// # Errors
///
/// Registry errors for an unknown spec; [`EngineError::Checkpoint`] for a
/// corrupt or mismatched blob.
pub fn resume_session(
    registry: &ModelRegistry,
    cp: &Checkpoint,
) -> Result<OwnedSession<crate::ModelCore>, EngineError> {
    // The session blob leads with its thread provision; peek it so the
    // fresh session is opened with matching geometry.
    let mut peek = stbpu_bpu::StateReader::new(&cp.session_state);
    let threads = peek
        .usize()
        .map_err(|e| EngineError::Checkpoint(format!("state snapshot: {e}")))?;
    let model = registry.build(&cp.model_spec, cp.seed)?;
    let mut session = OwnedSession::new(
        model,
        cp.protection,
        SessionOptions {
            warmup: Warmup::Branches(0),
            threads: Some(threads),
            interval: None,
            workload: None,
        },
    )?;
    cp.apply(&mut session).map_err(ckpt_err)?;
    Ok(session)
}

/// Resumes from `cp` and runs `source` (a fresh stream of the same
/// workload, from its beginning) to exhaustion, returning the final
/// report and interval backlog — bit-identical to never having stopped.
///
/// # Errors
///
/// [`resume_session`]'s errors, plus source and simulation failures and
/// [`EngineError::Shard`] when the stream is shorter than the
/// checkpoint's consumed-event count.
pub fn resume_to_end(
    registry: &ModelRegistry,
    cp: &Checkpoint,
    source: &mut dyn EventSource,
) -> Result<(SimReport, Vec<IntervalWindow>), EngineError> {
    let mut session = resume_session(registry, cp)?;
    let skipped = source.skip_events(cp.events_consumed).map_err(source_err)?;
    if skipped != cp.events_consumed {
        return Err(EngineError::Shard(format!(
            "stream has only {skipped} of the {} events the checkpoint consumed",
            cp.events_consumed
        )));
    }
    feed_to_end(&mut session, source)?;
    Ok(session.finish_with_intervals())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> ModelRegistry {
        ModelRegistry::standard()
    }

    fn cfg(shards: usize, interval: Option<u64>) -> ShardConfig {
        ShardConfig {
            shards,
            warmup: Warmup::Fraction(0.1),
            interval,
            threads: None,
            checkpoint_dir: None,
        }
    }

    #[test]
    fn sharded_run_is_bit_identical_to_sequential() {
        let reg = registry();
        let wl = Workload::Named("541.leela".to_string());
        let (seq, seq_iv) = run_sequential(
            &reg,
            "st_skl@r=0.05",
            Protection::Stbpu,
            7,
            &wl,
            30_000,
            Warmup::Fraction(0.1),
            None,
            None,
        )
        .unwrap();
        for shards in [2usize, 3, 4, 7] {
            let run = run_sharded(
                &reg,
                "st_skl@r=0.05",
                Protection::Stbpu,
                7,
                &wl,
                30_000,
                &cfg(shards, None),
            )
            .unwrap();
            assert_eq!(run.report, seq, "shards={shards}");
            assert_eq!(run.intervals, seq_iv, "shards={shards}");
            assert_eq!(run.cuts.len(), shards - 1);
            assert_eq!(run.cache_hits, 0);
        }
    }

    #[test]
    fn sharded_intervals_stitch_to_the_sequential_series() {
        let reg = registry();
        let wl = Workload::Named("557.xz".to_string());
        let (seq, seq_iv) = run_sequential(
            &reg,
            "skl",
            Protection::Unprotected,
            11,
            &wl,
            24_000,
            Warmup::Branches(0),
            Some(4_000),
            None,
        )
        .unwrap();
        assert!(!seq_iv.is_empty());
        let run = run_sharded(
            &reg,
            "skl",
            Protection::Unprotected,
            11,
            &wl,
            24_000,
            &ShardConfig {
                shards: 4,
                warmup: Warmup::Branches(0),
                interval: Some(4_000),
                threads: None,
                checkpoint_dir: None,
            },
        )
        .unwrap();
        assert_eq!(run.report, seq);
        assert_eq!(run.intervals, seq_iv);
    }

    #[test]
    fn one_shard_degenerates_to_sequential() {
        let reg = registry();
        let wl = Workload::Named("541.leela".to_string());
        let (seq, _) = run_sequential(
            &reg,
            "st_skl",
            Protection::Stbpu,
            3,
            &wl,
            10_000,
            Warmup::Fraction(0.1),
            None,
            None,
        )
        .unwrap();
        let run = run_sharded(
            &reg,
            "st_skl",
            Protection::Stbpu,
            3,
            &wl,
            10_000,
            &cfg(1, None),
        )
        .unwrap();
        assert_eq!(run.report, seq);
        assert!(run.cuts.is_empty());
    }

    #[test]
    fn checkpoint_dir_caches_and_reuses_boundaries() {
        let reg = registry();
        let wl = Workload::Named("541.leela".to_string());
        let dir = std::env::temp_dir().join(format!("stbpu-shard-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = cfg(4, None);
        c.checkpoint_dir = Some(dir.clone());
        let cold = run_sharded(&reg, "st_skl", Protection::Stbpu, 5, &wl, 20_000, &c).unwrap();
        assert_eq!(cold.cache_hits, 0);
        let warm = run_sharded(&reg, "st_skl", Protection::Stbpu, 5, &wl, 20_000, &c).unwrap();
        assert_eq!(warm.cache_hits, 3);
        assert_eq!(warm.report, cold.report);
        // A different seed must not hit the same cache slots.
        let other = run_sharded(&reg, "st_skl", Protection::Stbpu, 6, &wl, 20_000, &c).unwrap();
        assert_eq!(other.cache_hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_shard_counts_are_rejected() {
        let reg = registry();
        let wl = Workload::Named("541.leela".to_string());
        for shards in [0usize, MAX_SHARDS + 1] {
            let err = run_sharded(
                &reg,
                "skl",
                Protection::Unprotected,
                1,
                &wl,
                5_000,
                &cfg(shards, None),
            )
            .unwrap_err();
            assert!(matches!(err, EngineError::Shard(_)), "shards={shards}");
        }
    }

    #[test]
    fn resume_to_end_matches_uninterrupted() {
        let reg = registry();
        let wl = Workload::Named("541.leela".to_string());
        let (seq, _) = run_sequential(
            &reg,
            "st_skl@r=0.05",
            Protection::Stbpu,
            9,
            &wl,
            16_000,
            Warmup::Fraction(0.1),
            None,
            None,
        )
        .unwrap();
        let cps = cut_checkpoints(
            &reg,
            "st_skl@r=0.05",
            Protection::Stbpu,
            9,
            &wl,
            16_000,
            &cfg(2, None),
            &[8_000],
        )
        .unwrap();
        let mut source = wl.open(9, 16_000).unwrap();
        let (resumed, _) = resume_to_end(&reg, &cps[0], source.as_mut()).unwrap();
        assert_eq!(resumed, seq);
    }
}

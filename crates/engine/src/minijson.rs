//! A minimal JSON reader for spec and baseline files.
//!
//! The build environment has no registry access, so serde is not
//! available; this module implements exactly the subset the workspace
//! needs — parsing a UTF-8 JSON document into a [`Json`] value tree with
//! position-carrying errors. Writing stays with the hand-formatted
//! emitters in the report module ([`crate::report_to_json`]) and the CLI
//! (bench records).

use std::fmt;

/// A parsed JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

/// Parse error with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the document.
    pub offset: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an integer (rejects fractional numbers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object fields in document order (`None` for non-objects).
    pub fn fields(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(f) => Some(f),
            _ => None,
        }
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not paired — spec/baseline files
                            // never contain astral characters.
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("bad \\u codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let s = &self.bytes[self.pos..];
                    let ch_len = match s[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    out.push_str(
                        std::str::from_utf8(&s[..ch_len]).map_err(|_| self.err("bad UTF-8"))?,
                    );
                    self.pos += ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = Json::parse(
            r#"{"name": "x", "n": 3, "frac": 0.5, "neg": -2e3,
                "ok": true, "off": false, "nil": null,
                "list": [1, "two", [3]], "empty": {}, "elist": []}"#,
        )
        .unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("frac").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("neg").unwrap().as_f64(), Some(-2000.0));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("off").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("nil"), Some(&Json::Null));
        let list = v.get("list").unwrap().as_array().unwrap();
        assert_eq!(list.len(), 3);
        assert_eq!(list[1].as_str(), Some("two"));
        assert_eq!(v.get("empty").unwrap().fields(), Some(&[][..]));
        assert_eq!(v.get("elist").unwrap().as_array(), Some(&[][..]));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn decodes_escapes() {
        let v = Json::parse(r#""a\"b\\c\ndA€""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA€"));
        assert_eq!(
            Json::parse(&escape("a\"b\\c\nd")).unwrap().as_str(),
            Some("a\"b\\c\nd")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\":1,}",
            "tru",
            "1 2",
            "\"open",
            "[1 2]",
            "nul",
        ] {
            let e = Json::parse(bad).unwrap_err();
            assert!(!e.to_string().is_empty(), "{bad:?}");
        }
    }

    #[test]
    fn integer_accessor_rejects_fractions() {
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("12").unwrap().as_u64(), Some(12));
    }

    #[test]
    fn round_trips_engine_report_json() {
        use crate::report::report_to_json;
        use stbpu_sim::{Protection, SimReport};
        let r = SimReport {
            model: "SKLCond".to_string(),
            protection: Protection::Unprotected.label(),
            workload: "w,\"x\"".to_string(),
            oae: 0.9,
            direction_rate: 0.95,
            target_rate: 0.97,
            branches: 10,
            mispredictions: 1,
            evictions: 0,
            flushes: 0,
            rerandomizations: 0,
        };
        let v = Json::parse(&report_to_json(&r, 3)).unwrap();
        assert_eq!(v.get("workload").unwrap().as_str(), Some("w,\"x\""));
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("oae").unwrap().as_f64(), Some(0.9));
    }
}

//! Named workload suites: curated `workloads × scenarios` bundles.
//!
//! The paper's evaluation is not one workload but a battery — SPEC CPU
//! 2017 plus user/server applications, each run under every protection
//! scheme. A [`WorkloadSuite`] names such a battery once so `stbpu grid
//! --suite paper` (or an [`crate::Experiment`] built from
//! [`WorkloadSuite::to_experiment`]) reproduces it without spelling out
//! dozens of workload and scenario names. Suites only bundle *names*;
//! overriding branches, seeds or scenarios at the call site still works.
//!
//! Five suites are registered:
//!
//! | suite | workloads | scenarios | intent |
//! |---|---|---|---|
//! | `paper` | all 37 Figure 3 profiles | the five Figure 3 schemes | the headline accuracy grid |
//! | `spec-like` | the 23 SPEC CPU 2017 profiles | baseline vs ST (SKL + TAGE64) | predictor-focused sweeps |
//! | `adversarial` | high-pressure server/desktop profiles | aggressive re-randomization + ucode defenses | attack-surface conditions |
//! | `stress` | the heaviest footprint profiles | the five Figure 3 schemes | throughput and capacity stress |
//! | `realtrace` | indirect-heavy profiles | CBP-class family (TAGE-SC-L + ITTAGE) ± ST | championship-predictor comparison |
//!
//! ```
//! use stbpu_engine::WorkloadSuite;
//!
//! let s = WorkloadSuite::by_name("spec-like").unwrap();
//! assert_eq!(s.workload_names().len(), 23);
//! let exp = s.to_experiment().unwrap().branches(2_000);
//! assert!(exp.run().unwrap().records().len() >= 23);
//! ```

use crate::error::EngineError;
use crate::experiment::{Experiment, Scenario};
use crate::workload::Workload;
use stbpu_trace::profiles;

/// The five Figure 3 protection-scheme scenarios.
const FIG3_SCENARIOS: &[&str] = &[
    "skl:unprotected",
    "st_skl@r=0.05:stbpu",
    "skl:ucode1",
    "skl:ucode2",
    "conservative:conservative",
];

/// Which workload set a suite draws from.
#[derive(Debug)]
enum SuiteWorkloads {
    /// Every Figure 3 profile (SPEC + applications).
    Fig3All,
    /// The 23 SPEC CPU 2017 profiles.
    SpecAll,
    /// An explicit profile-name list.
    Explicit(&'static [&'static str]),
}

/// One registered suite: named workloads × scenarios with default
/// branches and seeds.
#[derive(Debug)]
pub struct WorkloadSuite {
    /// Registry name (`"paper"`, `"spec-like"`, …).
    pub name: &'static str,
    /// One-line description for catalogs and help output.
    pub summary: &'static str,
    workloads: SuiteWorkloads,
    scenarios: &'static [&'static str],
    /// Default branches per generated stream (overridable downstream).
    pub branches: usize,
    /// Default seeds (overridable downstream).
    pub seeds: &'static [u64],
}

/// The suite registry, in catalog order.
static SUITES: &[WorkloadSuite] = &[
    WorkloadSuite {
        name: "paper",
        summary: "all 37 Figure 3 workloads under the five paper schemes",
        workloads: SuiteWorkloads::Fig3All,
        scenarios: FIG3_SCENARIOS,
        branches: 50_000,
        seeds: &[42],
    },
    WorkloadSuite {
        name: "spec-like",
        summary: "the 23 SPEC CPU 2017 profiles, baseline vs ST models",
        workloads: SuiteWorkloads::SpecAll,
        scenarios: &["skl:unprotected", "st_skl@r=0.05:stbpu", "st_tage64:stbpu"],
        branches: 50_000,
        seeds: &[42],
    },
    WorkloadSuite {
        name: "adversarial",
        summary: "high-pressure server/desktop workloads under aggressive \
                  re-randomization and ucode defenses",
        workloads: SuiteWorkloads::Explicit(&[
            "apache2_prefork_c128",
            "apache2_prefork_c256",
            "apache2_prefork_c512",
            "mysql_128con_50s",
            "mysql_256con_50s",
            "chrome-1je_1mo_1sp",
        ]),
        scenarios: &[
            "skl:unprotected",
            "st_skl@r=0.001:stbpu",
            "st_tage64@r=0.001:stbpu",
            "skl:ucode1",
            "skl:ucode2",
        ],
        branches: 100_000,
        seeds: &[42, 43, 44],
    },
    WorkloadSuite {
        name: "stress",
        summary: "the heaviest-footprint profiles at long stream lengths",
        workloads: SuiteWorkloads::Explicit(&[
            "apache2_prefork_c512",
            "mysql_256con_50s",
            "chrome-1je_1mo_1sp",
            "502.gcc",
            "523.xalancbmk",
            "520.omnetpp",
        ]),
        scenarios: FIG3_SCENARIOS,
        branches: 200_000,
        seeds: &[42],
    },
    WorkloadSuite {
        name: "realtrace",
        summary: "indirect-heavy profiles under the CBP-class predictor \
                  family (TAGE-SC-L + ITTAGE) and its ST variants",
        workloads: SuiteWorkloads::Explicit(&[
            "500.perlbench",
            "502.gcc",
            "523.xalancbmk",
            "520.omnetpp",
            "510.parest",
            "chrome-1je_1mo_1sp",
        ]),
        scenarios: &[
            "tagescl:unprotected",
            "st_tagescl@r=0.05:stbpu",
            "ittage:unprotected",
            "st_ittage@r=0.05:stbpu",
            "skl:unprotected",
        ],
        branches: 100_000,
        seeds: &[42],
    },
];

impl WorkloadSuite {
    /// Every registered suite, in catalog order.
    pub fn all() -> &'static [WorkloadSuite] {
        SUITES
    }

    /// Looks a suite up by name.
    pub fn by_name(name: &str) -> Option<&'static WorkloadSuite> {
        SUITES.iter().find(|s| s.name == name)
    }

    /// Looks a suite up by name, failing with
    /// [`EngineError::UnknownSuite`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownSuite`] for unregistered names.
    pub fn resolve(name: &str) -> Result<&'static WorkloadSuite, EngineError> {
        Self::by_name(name).ok_or_else(|| EngineError::UnknownSuite(name.to_string()))
    }

    /// The registered suite names, in catalog order.
    pub fn names() -> Vec<&'static str> {
        SUITES.iter().map(|s| s.name).collect()
    }

    /// The suite's workload-profile names.
    pub fn workload_names(&self) -> Vec<&'static str> {
        match self.workloads {
            SuiteWorkloads::Fig3All => profiles::fig3_workloads().iter().map(|p| p.name).collect(),
            SuiteWorkloads::SpecAll => profiles::SPEC.iter().map(|p| p.name).collect(),
            SuiteWorkloads::Explicit(names) => names.to_vec(),
        }
    }

    /// The suite's workloads as engine [`Workload`]s.
    pub fn workloads(&self) -> Vec<Workload> {
        self.workload_names()
            .into_iter()
            .map(|n| Workload::Named(n.to_string()))
            .collect()
    }

    /// The suite's `model:protection` scenario strings.
    pub fn scenario_specs(&self) -> &'static [&'static str] {
        self.scenarios
    }

    /// The suite's scenarios, parsed.
    ///
    /// # Errors
    ///
    /// Propagates scenario-parse errors (cannot happen for the registered
    /// suites — covered by tests — but the signature stays honest).
    pub fn scenarios(&self) -> Result<Vec<Scenario>, EngineError> {
        self.scenarios.iter().map(|s| Scenario::parse(s)).collect()
    }

    /// Materializes the suite as an [`Experiment`] builder carrying its
    /// default branches and seeds; chain builder calls to override.
    ///
    /// # Errors
    ///
    /// Propagates scenario-parse errors.
    pub fn to_experiment(&self) -> Result<Experiment, EngineError> {
        let mut exp = Experiment::new(self.name)
            .branches(self.branches)
            .seeds(self.seeds.iter().copied());
        for w in self.workloads() {
            exp = exp.add_workload(w);
        }
        for s in self.scenarios()? {
            exp = exp.scenario(s);
        }
        Ok(exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_suite_is_well_formed() {
        assert_eq!(
            WorkloadSuite::names(),
            ["paper", "spec-like", "adversarial", "stress", "realtrace"]
        );
        for suite in WorkloadSuite::all() {
            // All workload names resolve against the profile tables.
            for name in suite.workload_names() {
                assert!(
                    profiles::by_name(name).is_some(),
                    "suite '{}' names unknown workload '{name}'",
                    suite.name
                );
            }
            // All scenario strings parse against the live registry.
            let scenarios = suite.scenarios().expect("scenarios parse");
            assert_eq!(scenarios.len(), suite.scenario_specs().len());
            assert!(!suite.workload_names().is_empty());
            assert!(suite.branches > 0);
            assert!(!suite.seeds.is_empty());
            // The experiment builder accepts the whole bundle.
            suite.to_experiment().expect("experiment builds");
        }
    }

    #[test]
    fn paper_suite_covers_all_fig3_workloads_and_schemes() {
        let s = WorkloadSuite::by_name("paper").unwrap();
        assert_eq!(s.workload_names().len(), 37);
        assert_eq!(s.scenario_specs().len(), 5);
    }

    #[test]
    fn unknown_suite_lists_are_reported() {
        let e = WorkloadSuite::resolve("warp").unwrap_err();
        assert_eq!(e, EngineError::UnknownSuite("warp".to_string()));
        assert!(e.to_string().contains("warp"), "{e}");
    }

    #[test]
    fn suite_experiment_runs_scaled_down() {
        let set = WorkloadSuite::resolve("stress")
            .unwrap()
            .to_experiment()
            .unwrap()
            .branches(1_500)
            .run()
            .unwrap();
        // 6 workloads x 5 scenarios x 1 seed.
        assert_eq!(set.records().len(), 30);
    }
}
